//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so this vendored stub
//! provides the benchmarking surface the workspace's benches use:
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is intentionally simple — mean wall-clock time over
//! `sample_size` iterations after one warm-up run, printed to stdout —
//! with none of real criterion's statistics, HTML reports, or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id naming only the parameter (single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iterations: usize,
    /// Mean nanoseconds per iteration of the last [`Bencher::iter`] call.
    pub mean_ns: f64,
}

impl Bencher {
    /// Runs `f` once to warm up, then `iterations` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / self.iterations.max(1) as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark taking an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    fn report(&self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{}/{id}: {:.1} ns/iter{rate}", self.name, mean_ns);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a benchmark with no input, outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("sum"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
