//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this vendored stub
//! implements the surface the workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`prelude::Just`], `prop_oneof!`, `any::<T>()`, and the
//! `prop_assert*` macros. Unlike real proptest there is **no shrinking**:
//! a failing case panics with the offending inputs printed via `Debug`.

pub mod test_runner {
    /// Deterministic generator driving all strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed rng so failures are reproducible run to run.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_BEEF,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Failure raised by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration; only `cases` is honoured by this stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A boxed, type-erased strategy (what `prop_oneof!` stores).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxes a strategy (helper for `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Weighted choice between strategies with a common value type.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds the union; weights must not all be zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed mid-generation")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Types with a canonical "any value" strategy (see [`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> AnyStrategy<T> {
        /// Builds the strategy.
        pub fn new() -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{AnyStrategy, Arbitrary};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` random cases (no shrinking in this stub).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                // Render the generated inputs before the body can move them,
                // so a failure always shows the reproducing values.
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    __inputs.push_str(&format!(
                        concat!("  ", stringify!($arg), " = {:?}\n"),
                        __value
                    ));
                    let $arg = __value;
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}\ninputs:\n{__inputs}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec(any::<u8>(), 3..7);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_honours_zero_weightless_options() {
        let mut rng = TestRng::deterministic();
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[s.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0u32..5, 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(v.clone(), v);
        }
    }
}
