//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so this vendored stub
//! provides exactly the surface the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], and [`Rng::gen_range`]
//! over integer and float ranges. The generator is splitmix64 — fast,
//! deterministic, and statistically adequate for the synthetic dataset
//! generators (which only need well-mixed uniform draws).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (the high half of a `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (blanket-implemented for all rngs).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates nearby seeds.
            let mut rng = SmallRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(2usize..=9);
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
