//! Offline, API-compatible subset of the `rayon` crate: a **persistent
//! scoped thread pool**.
//!
//! The build environment has no network access, so this vendored stand-in
//! provides the part of rayon's surface the workspace needs — a global
//! pool plus explicit [`ThreadPool`]s with [`scope`]/[`Scope::spawn`] —
//! with none of rayon's work stealing, parallel iterators, or join
//! primitives. Swap it for the real crate if registry access ever
//! appears: every API here (except the two introspection helpers noted
//! below) is a drop-in subset of rayon's.
//!
//! Why it exists at all: the multiplication hot paths used to
//! `std::thread::scope`-spawn fresh OS threads on *every* multiply, which
//! is exactly the per-call overhead a serving loop cannot afford. Workers
//! here are spawned once (lazily, on first use for the global pool) and
//! blocked on a condvar between multiplications.
//!
//! Extensions over real rayon:
//!
//! * [`threads_ever_spawned`] — a process-wide counter of OS threads ever
//!   started by any pool, which lets tests assert that repeated
//!   multiplications do **not** spawn per-call threads;
//! * [`global_pool`] — direct access to the lazily-built global pool;
//! * [`broadcast_indexed`] / [`ThreadPool::broadcast_indexed`] — an
//!   **allocation-free** parallel for-each. [`Scope::spawn`] must box
//!   every closure, so a serving loop that dispatches per-shard work
//!   through a scope pays one heap allocation per task per call;
//!   `broadcast_indexed` instead publishes a single POD descriptor in
//!   the pool's state and lets workers claim indices from an atomic
//!   counter, so the steady-state zero-allocation guarantee of the
//!   execution layer extends across threads.
//!
//! # Panics
//!
//! A panic inside a spawned closure is caught on the worker (so the
//! worker survives for the next job) and re-raised from the enclosing
//! [`scope`] call on the caller's thread, mirroring rayon's behaviour.
//! If several closures panic, one payload is propagated and the rest are
//! dropped.
//!
//! # Deadlock caveat
//!
//! Like rayon, waiting on a scope from *inside* a pool job of the same
//! pool can deadlock if every worker is blocked the same way. The caller
//! thread helps drain the queue while it waits, so the common pattern —
//! scopes opened from non-pool threads — cannot deadlock even on a pool
//! with a single worker.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-wide count of OS threads ever spawned by any [`ThreadPool`].
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total OS threads ever spawned by pools in this process (extension over
/// real rayon; lets tests verify that multiplications reuse workers).
pub fn threads_ever_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// A published [`broadcast_indexed`] call: type-erased pointers into the
/// caller's stack frame. Plain-old-data, so copying it to a worker
/// allocates nothing.
///
/// Lifetime discipline: a worker may only copy this descriptor (and
/// increment `active`) while it sits in [`PoolState::bcast`] *under the
/// state lock*; the publishing caller clears the slot and then waits,
/// still under the same lock, for `active` to drain back to zero before
/// its stack frame (which owns everything these pointers reference) is
/// allowed to die.
#[derive(Clone, Copy)]
struct BcastJob {
    /// Type-erased `&F` where `F: Fn(usize) + Sync`.
    data: *const (),
    /// Monomorphised shim calling `data`'s closure with an index.
    call: unsafe fn(*const (), usize),
    /// Next index to claim (caller's stack).
    next: *const AtomicUsize,
    /// Exclusive upper bound of the index range.
    n: usize,
    /// Completed-call count (caller's stack).
    finished: *const AtomicUsize,
    /// Workers currently holding a copy of this descriptor (caller's
    /// stack; mutated only under the pool state lock).
    active: *const AtomicUsize,
    /// First panic payload, if any call panicked (caller's stack).
    panic: *const Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: the pointers reference state that outlives every dereference
// (see the lifetime discipline above); all mutation goes through atomics
// or a mutex.
unsafe impl Send for BcastJob {}

/// Claims and runs indices of `job` until the range is exhausted.
/// Allocation-free on the non-panicking path.
fn run_bcast(job: &BcastJob) {
    loop {
        // SAFETY: the caller of `run_bcast` holds the job either as the
        // publisher (own stack) or counted in `active` (see `BcastJob`).
        let i = unsafe { (*job.next).fetch_add(1, Ordering::AcqRel) };
        if i >= job.n {
            break;
        }
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, i) }));
        if let Err(payload) = result {
            // SAFETY: as above.
            let slot = unsafe { &*job.panic };
            slot.lock()
                .expect("broadcast panic slot poisoned")
                .get_or_insert(payload);
        }
        // SAFETY: as above. Release pairs with the caller's Acquire load,
        // making the call's writes visible before it observes completion.
        unsafe { (*job.finished).fetch_add(1, Ordering::AcqRel) };
    }
}

struct PoolState {
    queue: VecDeque<Job>,
    /// The at-most-one in-flight [`broadcast_indexed`] descriptor.
    bcast: Option<BcastJob>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    job_ready: Condvar,
    /// Signalled when a broadcast participant finishes or the broadcast
    /// slot clears; publishers and completion-waiters sleep here.
    bcast_done: Condvar,
}

impl PoolShared {
    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("pool mutex poisoned");
        st.queue.push_back(job);
        drop(st);
        self.job_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.state
            .lock()
            .expect("pool mutex poisoned")
            .queue
            .pop_front()
    }
}

enum Work {
    Queued(Job),
    Bcast(BcastJob),
}

thread_local! {
    /// Whether the current thread is a pool worker (any pool). Lets
    /// blocking full-pool operations like [`ThreadPool::prewarm_workers`]
    /// refuse to run where they would deadlock.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker_loop(shared: Arc<PoolShared>) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let work = {
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = st.bcast {
                    // Register as a participant while still holding the
                    // lock — the publisher waits for `active` to drain
                    // before letting the pointed-to state die.
                    // SAFETY: slot is occupied, so the caller's frame is
                    // alive and blocked.
                    unsafe { (*job.active).fetch_add(1, Ordering::AcqRel) };
                    break Work::Bcast(job);
                }
                if let Some(job) = st.queue.pop_front() {
                    break Work::Queued(job);
                }
                if st.shutdown {
                    return;
                }
                st = shared.job_ready.wait(st).expect("pool mutex poisoned");
            }
        };
        match work {
            // Scope jobs catch their own panics; a raw panic would only
            // kill this worker, never poison the queue.
            Work::Queued(job) => job(),
            Work::Bcast(job) => {
                run_bcast(&job);
                let mut st = shared.state.lock().expect("pool mutex poisoned");
                // The claim range is exhausted (run_bcast only returns
                // then): retire the descriptor so late-waking workers
                // don't spin re-claiming it, then deregister.
                if let Some(cur) = st.bcast {
                    if std::ptr::eq(cur.next, job.next) {
                        st.bcast = None;
                    }
                }
                // SAFETY: registered above; publisher still waits on us.
                unsafe { (*job.active).fetch_sub(1, Ordering::AcqRel) };
                drop(st);
                shared.bcast_done.notify_all();
            }
        }
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (for rayon API
/// compatibility; building this pool cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default thread count (`RAYON_NUM_THREADS` if set
    /// and positive, otherwise the machine's available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers immediately.
    ///
    /// # Errors
    /// Never fails; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads > 0 {
            self.num_threads
        } else {
            default_num_threads()
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                bcast: None,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            bcast_done: Condvar::new(),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                thread::Builder::new()
                    .name(format!("gcm-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Ok(ThreadPool {
            shared,
            workers,
            num_threads: n,
            prewarm_gate: Mutex::new(()),
        })
    }
}

fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A persistent pool of worker threads. Workers are spawned once at
/// construction and parked between jobs; dropping the pool joins them.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
    num_threads: usize,
    /// Serialises [`prewarm_workers`](Self::prewarm_workers) calls: two
    /// interleaved prewarm barriers would split the workers between
    /// them and neither could ever fill.
    prewarm_gate: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .finish()
    }
}

impl ThreadPool {
    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with a [`Scope`] on which borrowing closures can be
    /// spawned; returns once `op` *and* every spawned closure finished.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let sync = Arc::new(ScopeSync {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: Arc::clone(&self.shared),
            sync: Arc::clone(&sync),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        self.wait_scope(&sync);
        let job_panic = sync.panic.lock().expect("scope mutex poisoned").take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                r
            }
        }
    }

    /// Runs `f(i)` for every `i in 0..n`, distributing indices across the
    /// pool workers, **without heap allocation** (extension over real
    /// rayon; the zero-alloc counterpart of a scope with `n` spawns).
    ///
    /// The calling thread participates in the claim loop, so the call
    /// makes progress even when every worker is busy — including when it
    /// is issued from inside a pool job. Broadcasts on one pool are
    /// serialised: a second publisher waits for the slot to clear.
    ///
    /// # Panics
    /// If any `f(i)` panics, one payload is re-raised here after all
    /// indices have completed.
    pub fn broadcast_indexed<F: Fn(usize) + Sync>(&self, n: usize, f: &F) {
        if n == 0 {
            return;
        }
        let next = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        let active = AtomicUsize::new(0);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        unsafe fn shim<F: Fn(usize)>(data: *const (), i: usize) {
            // SAFETY: `data` is the `&F` erased in `broadcast_indexed`,
            // alive until the publisher returns.
            unsafe { (*(data as *const F))(i) }
        }
        let job = BcastJob {
            data: f as *const F as *const (),
            call: shim::<F>,
            next: &next,
            n,
            finished: &finished,
            active: &active,
            panic: &panic_slot,
        };
        loop {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            let Some(other) = st.bcast else {
                st.bcast = Some(job);
                break;
            };
            // The slot is occupied. Help drain that broadcast instead of
            // sleeping: a broadcast published from inside another
            // broadcast's closure would otherwise deadlock (its indices
            // can never finish while their closures block here).
            // SAFETY: registered under the lock while the slot holds
            // `other`, exactly like a worker.
            unsafe { (*other.active).fetch_add(1, Ordering::AcqRel) };
            drop(st);
            run_bcast(&other);
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            if let Some(cur) = st.bcast {
                if std::ptr::eq(cur.next, other.next) {
                    st.bcast = None;
                }
            }
            // SAFETY: deregistering the registration made above.
            unsafe { (*other.active).fetch_sub(1, Ordering::AcqRel) };
            drop(st);
            self.shared.bcast_done.notify_all();
        }
        self.shared.job_ready.notify_all();
        // Help with the claim loop from the calling thread.
        run_bcast(&job);
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            // Retire our descriptor if no worker beat us to it, so a
            // worker that never woke cannot pick it up later.
            if let Some(cur) = st.bcast {
                if std::ptr::eq(cur.next, job.next) {
                    st.bcast = None;
                }
            }
            drop(st);
            self.shared.bcast_done.notify_all();
        }
        // Wait until every call completed AND every registered worker
        // dropped its copy of the descriptor; only then may `next` &co
        // (this stack frame) die.
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            while finished.load(Ordering::Acquire) != n || active.load(Ordering::Acquire) != 0 {
                st = self
                    .shared
                    .bcast_done
                    .wait(st)
                    .expect("pool mutex poisoned");
            }
            drop(st);
        }
        let payload = panic_slot
            .lock()
            .expect("broadcast panic slot poisoned")
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs one trivial job on **every** worker and returns once all
    /// have executed it (extension over real rayon). A barrier keeps
    /// each worker parked inside its job until the last one arrives, so
    /// no worker can claim two jobs and none stays cold.
    ///
    /// Why it exists: a freshly spawned OS thread pays one-time lazy
    /// runtime allocations (TLS, panic machinery) the first time it
    /// actually runs a job. A serving loop that promises zero
    /// steady-state allocation must flush those during *its* prewarm,
    /// not on whichever later request happens to wake a cold worker —
    /// `ShardedModel::prewarm` calls this for exactly that reason.
    ///
    /// Calling from inside a pool job is a **no-op** rather than a
    /// deadlock: the calling worker occupies one of the slots the
    /// barrier would wait for, so the barrier could never fill — and a
    /// job already running on a worker means that worker (at least) is
    /// warm. Concurrent callers are safe: a gate serialises them, so
    /// only one barrier's jobs are ever in the queue at a time (two
    /// interleaved barriers would park the workers split between them,
    /// and with both callers blocked inside their scope closures
    /// neither barrier could fill).
    pub fn prewarm_workers(&self) {
        if IS_POOL_WORKER.with(|flag| flag.get()) {
            return;
        }
        let _gate = self.prewarm_gate.lock().expect("prewarm gate poisoned");
        let barrier = std::sync::Barrier::new(self.num_threads + 1);
        let barrier = &barrier;
        self.scope(|s| {
            for _ in 0..self.num_threads {
                s.spawn(move |_| {
                    barrier.wait();
                });
            }
            barrier.wait();
        });
    }

    /// Blocks until `sync.pending` drops to zero, helping to drain the
    /// queue so a scope completes even when every worker is busy.
    fn wait_scope(&self, sync: &ScopeSync) {
        loop {
            if *sync.pending.lock().expect("scope mutex poisoned") == 0 {
                return;
            }
            match self.shared.try_pop() {
                Some(job) => job(),
                None => {
                    // Remaining jobs are running on workers. Sleep until
                    // any job of this scope completes, then loop back to
                    // helping: a running job may have nest-spawned new
                    // work that would otherwise be stranded in the queue
                    // (job_done signals every decrement, not just the
                    // last, precisely so this wakes up).
                    let pending = sync.pending.lock().expect("scope mutex poisoned");
                    if *pending != 0 {
                        drop(sync.all_done.wait(pending).expect("scope mutex poisoned"));
                    }
                }
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

struct ScopeSync {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeSync {
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("scope mutex poisoned");
        slot.get_or_insert(payload);
    }

    fn job_done(&self) {
        let mut pending = self.pending.lock().expect("scope mutex poisoned");
        *pending -= 1;
        // Notify on *every* completion, not only the last: a scope waiter
        // parked in `wait_scope` must wake to pick up jobs that were
        // nest-spawned after it went to sleep.
        self.all_done.notify_all();
    }
}

/// Handle for spawning borrowing closures inside a [`ThreadPool::scope`]
/// (or the global [`scope`]) call.
pub struct Scope<'scope> {
    pool: Arc<PoolShared>,
    sync: Arc<ScopeSync>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. The closure may borrow from the
    /// enclosing scope; the scope call does not return until it finishes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        {
            let mut pending = self.sync.pending.lock().expect("scope mutex poisoned");
            *pending += 1;
        }
        let pool = Arc::clone(&self.pool);
        let sync = Arc::clone(&self.sync);
        let f: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
        // SAFETY: the closure only changes its *lifetime* parameter, never
        // its layout, and `ThreadPool::scope` blocks until `pending` hits
        // zero before returning, so every borrow captured by `f` outlives
        // its execution (the standard scoped-thread-pool argument).
        let f: Box<dyn FnOnce(&Scope<'static>) + Send + 'static> =
            unsafe { std::mem::transmute(f) };
        let job: Job = Box::new(move || {
            let inner = Scope {
                pool: Arc::clone(&pool),
                sync: Arc::clone(&sync),
                _marker: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&inner))) {
                sync.record_panic(payload);
            }
            sync.job_done();
        });
        self.pool.push(job);
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazily-built global pool (extension over real rayon, which hides
/// it behind free functions).
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("failed to build global pool")
    })
}

/// Number of workers in the global pool.
pub fn current_num_threads() -> usize {
    global_pool().current_num_threads()
}

/// Runs `op` with a scope on the **global** pool; see
/// [`ThreadPool::scope`].
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    global_pool().scope(op)
}

/// Allocation-free parallel for-each on the **global** pool; see
/// [`ThreadPool::broadcast_indexed`].
pub fn broadcast_indexed<F: Fn(usize) + Sync>(n: usize, f: &F) {
    global_pool().broadcast_indexed(n, f);
}

/// Touches every **global**-pool worker once; see
/// [`ThreadPool::prewarm_workers`].
pub fn prewarm_workers() {
    global_pool().prewarm_workers();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_borrowing_closures() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = vec![0u64; 16];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        });
        let expect: Vec<u64> = (1..=16).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn scope_returns_value_and_waits() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicU64::new(0);
        let r = pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            "done"
        });
        assert_eq!(r, "done");
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn pool_reuses_threads_across_scopes() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let spawned = threads_ever_spawned();
        for round in 0..100 {
            let total = AtomicU64::new(0);
            let total_ref = &total;
            pool.scope(|s| {
                for i in 0..8u64 {
                    s.spawn(move |_| {
                        total_ref.fetch_add(i + round, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.load(Ordering::SeqCst), 28 + 8 * round);
        }
        assert_eq!(
            threads_ever_spawned(),
            spawned,
            "scopes must not spawn threads"
        );
    }

    #[test]
    fn nested_spawn_from_job() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|inner| {
                counter.fetch_add(1, Ordering::SeqCst);
                inner.spawn(|_| {
                    counter.fetch_add(10, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn concurrent_scopes_with_nested_spawns_do_not_deadlock() {
        // Regression: a scope waiter that had gone to sleep on `all_done`
        // must wake on every job completion and resume helping, or jobs
        // nest-spawned after it slept can be stranded forever.
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(1).build().unwrap());
        let total = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let total = &total;
                        pool.scope(|s| {
                            s.spawn(move |inner| {
                                total.fetch_add(1, Ordering::SeqCst);
                                inner.spawn(move |inner2| {
                                    total.fetch_add(1, Ordering::SeqCst);
                                    inner2.spawn(move |_| {
                                        total.fetch_add(1, Ordering::SeqCst);
                                    });
                                });
                            });
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 3 * 50 * 3);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(caught.is_err());
        // The worker that caught the panic is still alive and usable.
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn global_scope_works() {
        let mut out = [0u32; 4];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 * 2);
            }
        });
        assert_eq!(out, [0, 2, 4, 6]);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn empty_scope_is_fine() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let r = pool.scope(|_| 7);
        assert_eq!(r, 7);
    }

    #[test]
    fn broadcast_covers_every_index_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..50 {
            pool.broadcast_indexed(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
        }
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 50, "index {i}");
        }
    }

    #[test]
    fn broadcast_writes_disjoint_mut_slices() {
        // The serve-layer pattern: tasks write disjoint chunks of one
        // output buffer through a shared raw pointer.
        struct SendPtr(*mut u64);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut out = vec![0u64; 64];
        let base = SendPtr(out.as_mut_ptr());
        let base = &base;
        pool.broadcast_indexed(8, &|i| {
            // SAFETY: each index owns the disjoint chunk [8i, 8i+8).
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(i * 8), 8) };
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 8 + j) as u64 + 1;
            }
        });
        let expect: Vec<u64> = (1..=64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn broadcast_does_not_spawn_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let spawned = threads_ever_spawned();
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            pool.broadcast_indexed(5, &|i| {
                total.fetch_add(i as u64 + 1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 200 * 15);
        assert_eq!(threads_ever_spawned(), spawned);
    }

    #[test]
    fn broadcast_from_inside_a_pool_job_completes() {
        // A broadcast issued from a worker (nested in an outer broadcast)
        // must make progress by self-helping even on a 1-worker pool.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let total = AtomicU64::new(0);
        pool.broadcast_indexed(3, &|_| {
            pool.broadcast_indexed(4, &|j| {
                total.fetch_add(j as u64 + 1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 3 * 10);
    }

    #[test]
    fn concurrent_broadcasts_serialise_without_loss() {
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(2).build().unwrap());
        let total = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.broadcast_indexed(7, &|i| {
                            total.fetch_add(i as u64 + 1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 50 * 28);
    }

    #[test]
    fn broadcast_panic_propagates_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast_indexed(6, &|i| {
                if i == 3 {
                    panic!("broadcast boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool still works afterwards.
        let total = AtomicU64::new(0);
        pool.broadcast_indexed(6, &|i| {
            total.fetch_add(i as u64, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn broadcast_interleaves_with_scope_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.broadcast_indexed(8, &|_| {
                total.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 8 + 80);
    }

    #[test]
    fn empty_broadcast_is_fine() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.broadcast_indexed(0, &|_| panic!("must not run"));
    }

    #[test]
    fn prewarm_touches_every_worker() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        for n in [1usize, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            // Re-run prewarm while recording which OS threads ran jobs:
            // the barrier guarantees all n workers participate each time.
            let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
            let seen_ref = &seen;
            let barrier = std::sync::Barrier::new(n + 1);
            let barrier = &barrier;
            pool.scope(|s| {
                for _ in 0..n {
                    s.spawn(move |_| {
                        seen_ref.lock().unwrap().insert(std::thread::current().id());
                        barrier.wait();
                    });
                }
                barrier.wait();
            });
            assert_eq!(seen.lock().unwrap().len(), n, "n={n}");
            // And the public API completes without deadlock, repeatedly.
            for _ in 0..3 {
                pool.prewarm_workers();
            }
        }
    }

    #[test]
    fn prewarm_from_inside_a_pool_job_is_a_noop() {
        // A pool-job caller occupies the worker slot the barrier would
        // wait for; prewarm must return instead of deadlocking.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ran = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                pool.prewarm_workers();
                ran.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_prewarms_do_not_deadlock() {
        // Regression: two racing prewarm_workers() calls must not split
        // the workers between two barriers (the gate serialises them).
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(2).build().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        pool.prewarm_workers();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
