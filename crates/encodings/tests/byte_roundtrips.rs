//! Byte-level round-trip tests for every codec in the crate, concentrating
//! on the boundary inputs the in-module unit tests touch only lightly:
//! empty streams, single-symbol streams, and adversarial shapes (maximal
//! values, pathological skew, truncated or corrupted byte buffers).

use gcm_encodings::huffman::CanonicalCode;
use gcm_encodings::rangecoder::{BitTree, Prob, RangeDecoder, RangeEncoder};
use gcm_encodings::rans::RansSequence;
use gcm_encodings::varint;
use gcm_encodings::{BitReader, BitWriter, IntVector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- bitio --

#[test]
fn bitio_empty_stream_is_zero_bytes() {
    let w = BitWriter::new();
    let bytes = w.finish();
    assert!(bytes.is_empty());
    let mut r = BitReader::new(&bytes);
    // Reading past the end is defined to yield zeros, never panic.
    assert_eq!(r.read_bits(17), 0);
}

#[test]
fn bitio_single_bit_roundtrip() {
    let mut w = BitWriter::new();
    w.write_bit(true);
    let bytes = w.finish();
    assert_eq!(bytes.len(), 1);
    let mut r = BitReader::new(&bytes);
    assert!(r.read_bit());
    assert!(!r.read_bit());
}

#[test]
fn bitio_adversarial_width_schedule_roundtrips() {
    // Every legal width 1..=57 with a value of all-ones at that width,
    // interleaved with 64-bit writes — exercises the accumulator flush at
    // every alignment.
    let mut w = BitWriter::new();
    for n in 1..=57u32 {
        w.write_bits((1u64 << n) - 1, n);
        w.write_bits_long(u64::MAX, 64);
        w.write_bits(0, n.min(13));
    }
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    for n in 1..=57u32 {
        assert_eq!(r.read_bits(n), (1u64 << n) - 1, "width {n}");
        assert_eq!(r.read_bits_long(64), u64::MAX, "width {n} + 64");
        assert_eq!(r.read_bits(n.min(13)), 0, "width {n} zeros");
    }
}

#[test]
fn bitio_peek_does_not_consume() {
    let mut w = BitWriter::new();
    w.write_bits(0b1011_0101, 8);
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    assert_eq!(r.peek_bits(5), 0b10110);
    assert_eq!(r.peek_bits(5), 0b10110);
    assert_eq!(r.read_bits(8), 0b1011_0101);
}

// --------------------------------------------------------------- varint --

#[test]
fn varint_empty_buffer_returns_none() {
    let mut pos = 0;
    assert_eq!(varint::read_u64(&[], &mut pos), None);
    assert_eq!(varint::read_u32(&[], &mut pos), None);
}

#[test]
fn varint_single_extreme_values_roundtrip() {
    for v in [0u64, 1, 127, 128, u32::MAX as u64, u64::MAX] {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(varint::read_u64(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len(), "value {v} must consume exactly its bytes");
    }
}

#[test]
fn varint_truncated_and_overlong_inputs_fail_cleanly() {
    let mut buf = Vec::new();
    varint::write_u64(&mut buf, u64::MAX);
    for cut in 0..buf.len() {
        let mut pos = 0;
        assert_eq!(varint::read_u64(&buf[..cut], &mut pos), None, "cut {cut}");
    }
    // Eleven continuation bytes can never encode a u64.
    let adversarial = [0xFFu8; 11];
    let mut pos = 0;
    assert_eq!(varint::read_u64(&adversarial, &mut pos), None);
}

#[test]
fn varint_back_to_back_values_share_one_buffer() {
    let mut rng = SmallRng::seed_from_u64(7);
    let values: Vec<u64> = (0..500)
        .map(|_| rng.gen::<u64>() >> (rng.gen::<u64>() % 64))
        .collect();
    let mut buf = Vec::new();
    for &v in &values {
        varint::write_u64(&mut buf, v);
    }
    let mut pos = 0;
    for &v in &values {
        assert_eq!(varint::read_u64(&buf, &mut pos), Some(v));
    }
    assert_eq!(pos, buf.len());
}

// -------------------------------------------------------------- huffman --

#[test]
fn huffman_single_symbol_stream_roundtrips() {
    // One-symbol alphabets are the degenerate case: the code still must
    // emit at least one bit per symbol to be decodable.
    let code = CanonicalCode::from_frequencies(&[42], 15);
    let mut w = BitWriter::new();
    for _ in 0..100 {
        code.encode(&mut w, 0);
    }
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    for _ in 0..100 {
        assert_eq!(code.decode(&mut r), 0);
    }
}

#[test]
fn huffman_adversarial_skew_roundtrips_bytes() {
    // Fibonacci-ish frequencies force maximal code-length spread; the
    // length limit must rebalance without breaking decodability.
    let mut freqs = vec![0u64; 40];
    let (mut a, mut b) = (1u64, 1u64);
    for f in freqs.iter_mut() {
        *f = a;
        let next = a + b;
        a = b;
        b = next;
    }
    let code = CanonicalCode::from_frequencies(&freqs, 12);
    assert!(code.lengths().iter().all(|&l| l <= 12));
    let mut rng = SmallRng::seed_from_u64(3);
    let data: Vec<usize> = (0..4000)
        .map(|_| (rng.gen::<u64>() % 40) as usize)
        .collect();
    let mut w = BitWriter::new();
    for &s in &data {
        code.encode(&mut w, s);
    }
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    for &s in &data {
        assert_eq!(code.decode(&mut r), s);
    }
}

#[test]
fn huffman_unused_symbols_get_no_code() {
    let code = CanonicalCode::from_frequencies(&[10, 0, 3, 0, 0, 1], 15);
    assert_eq!(code.length(1), 0);
    assert_eq!(code.length(3), 0);
    assert!(code.length(0) >= 1);
}

// ----------------------------------------------------------------- rans --

#[test]
fn rans_empty_to_bytes_roundtrips() {
    let seq = RansSequence::encode(&[]);
    let bytes = seq.to_bytes();
    let mut pos = 0;
    let back = RansSequence::from_bytes(&bytes, &mut pos).expect("decode");
    assert_eq!(pos, bytes.len());
    assert!(back.to_vec().is_empty());
}

#[test]
fn rans_single_symbol_to_bytes_roundtrips() {
    for v in [0u32, 1, 255, 100_000, u32::MAX] {
        let seq = RansSequence::encode(&[v]);
        let bytes = seq.to_bytes();
        let mut pos = 0;
        let back = RansSequence::from_bytes(&bytes, &mut pos).expect("decode");
        assert_eq!(back.to_vec(), vec![v], "value {v}");
    }
}

#[test]
fn rans_constant_and_alternating_extremes_roundtrip() {
    let constant = vec![77u32; 10_000];
    let seq = RansSequence::encode(&constant);
    assert_eq!(seq.to_vec(), constant);

    let alternating: Vec<u32> = (0..5_000)
        .map(|i| if i % 2 == 0 { 0 } else { u32::MAX })
        .collect();
    let seq = RansSequence::encode(&alternating);
    let bytes = seq.to_bytes();
    let mut pos = 0;
    let back = RansSequence::from_bytes(&bytes, &mut pos).expect("decode");
    assert_eq!(back.to_vec(), alternating);
}

#[test]
fn rans_from_bytes_rejects_truncation() {
    let seq = RansSequence::encode(&[1u32, 2, 3, 4, 5, 1, 2, 3]);
    let bytes = seq.to_bytes();
    for cut in 0..bytes.len() {
        let mut pos = 0;
        assert!(
            RansSequence::from_bytes(&bytes[..cut], &mut pos).is_none(),
            "cut {cut} of {} must not decode",
            bytes.len()
        );
    }
}

#[test]
fn rans_from_bytes_leaves_trailing_bytes_untouched() {
    let seq = RansSequence::encode(&[9u32, 9, 8, 7]);
    let mut bytes = seq.to_bytes();
    let real_len = bytes.len();
    bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
    let mut pos = 0;
    let back = RansSequence::from_bytes(&bytes, &mut pos).expect("decode");
    assert_eq!(pos, real_len);
    assert_eq!(back.to_vec(), vec![9, 9, 8, 7]);
}

// ----------------------------------------------------------- rangecoder --

#[test]
fn rangecoder_single_bit_each_way_roundtrips() {
    for bit in [0u32, 1] {
        let mut enc = RangeEncoder::new();
        let mut p = Prob::new();
        enc.encode_bit(&mut p, bit);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut p = Prob::new();
        assert_eq!(dec.decode_bit(&mut p), bit);
    }
}

#[test]
fn rangecoder_adversarial_bit_pattern_roundtrips() {
    // Long runs push the adaptive probability to saturation, then the
    // pattern flips — the classic carry/renormalisation stress shape.
    let mut bits = Vec::new();
    bits.extend(std::iter::repeat_n(1u32, 3000));
    bits.extend(std::iter::repeat_n(0u32, 3000));
    let mut rng = SmallRng::seed_from_u64(11);
    bits.extend((0..3000).map(|_| (rng.gen::<u64>() & 1) as u32));

    let mut enc = RangeEncoder::new();
    let mut p = Prob::new();
    for &b in &bits {
        enc.encode_bit(&mut p, b);
    }
    let bytes = enc.finish();
    let mut dec = RangeDecoder::new(&bytes);
    let mut p = Prob::new();
    for (i, &b) in bits.iter().enumerate() {
        assert_eq!(dec.decode_bit(&mut p), b, "bit {i}");
    }
}

#[test]
fn rangecoder_direct_bits_boundary_values_roundtrip() {
    let values: Vec<(u32, u32)> = vec![
        (0, 1),
        (1, 1),
        (0, 32),
        (u32::MAX, 32),
        (0x8000_0000, 32),
        (0x7FFF_FFFF, 31),
        (5, 3),
    ];
    let mut enc = RangeEncoder::new();
    for &(v, n) in &values {
        enc.encode_direct(v, n);
    }
    let bytes = enc.finish();
    let mut dec = RangeDecoder::new(&bytes);
    for &(v, n) in &values {
        assert_eq!(dec.decode_direct(n), v, "value {v} width {n}");
    }
}

#[test]
fn rangecoder_bittree_full_domain_roundtrips() {
    let mut enc = RangeEncoder::new();
    let mut tree = BitTree::new(6);
    for v in 0..64u32 {
        tree.encode(&mut enc, v);
    }
    let bytes = enc.finish();
    let mut dec = RangeDecoder::new(&bytes);
    let mut tree = BitTree::new(6);
    for v in 0..64u32 {
        assert_eq!(tree.decode(&mut dec), v);
    }
}

// ------------------------------------------------------------ intvector --

#[test]
fn intvector_empty_to_bytes_roundtrips() {
    let iv = IntVector::from_slice(&[]);
    let bytes = iv.to_bytes();
    let mut pos = 0;
    let back = IntVector::from_bytes(&bytes, &mut pos).expect("decode");
    assert_eq!(pos, bytes.len());
    assert!(back.is_empty());
}

#[test]
fn intvector_single_max_value_roundtrips() {
    let iv = IntVector::from_slice(&[u64::MAX >> 1]);
    let bytes = iv.to_bytes();
    let mut pos = 0;
    let back = IntVector::from_bytes(&bytes, &mut pos).expect("decode");
    assert_eq!(back.len(), 1);
    assert_eq!(back.get(0), u64::MAX >> 1);
}

#[test]
fn intvector_adversarial_mixed_magnitudes_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(23);
    let values: Vec<u64> = (0..2_000)
        .map(|i| {
            if i % 17 == 0 {
                (1u64 << 40) - 1
            } else {
                rng.gen::<u64>() & 0xFF
            }
        })
        .collect();
    let iv = IntVector::from_slice(&values);
    let bytes = iv.to_bytes();
    let mut pos = 0;
    let back = IntVector::from_bytes(&bytes, &mut pos).expect("decode");
    let decoded: Vec<u64> = back.iter().collect();
    assert_eq!(decoded, values);
}
