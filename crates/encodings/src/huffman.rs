//! Canonical, length-limited Huffman coding.
//!
//! Used by the gzip-like baseline compressor (literal/length and distance
//! alphabets) and available as an entropy-coding building block. Codes are
//! canonical so only the code *lengths* need to be transmitted.

use crate::bitio::{BitReader, BitWriter};

/// Maximum supported code length. 15 matches DEFLATE and keeps the decode
/// table at 2^15 entries.
pub const MAX_CODE_LEN: u32 = 15;

/// Computes optimal code lengths for `freqs`, limited to `max_len` bits.
///
/// Symbols with zero frequency receive length 0 (no code). If only one
/// symbol has nonzero frequency it gets a 1-bit code.
///
/// The limiting step uses the classic overflow-repair algorithm (as in
/// zlib): overlong codes are shortened to `max_len` and the Kraft deficit is
/// repaid by lengthening the cheapest shorter codes.
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    assert!((1..=MAX_CODE_LEN).contains(&max_len));
    let n = freqs.len();
    let mut lengths = vec![0u32; n];
    let mut live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    assert!(
        (live.len() as u64) <= (1u64 << max_len),
        "alphabet too large for max_len"
    );

    // Standard two-queue Huffman on sorted leaves.
    live.sort_by_key(|&i| freqs[i]);
    #[derive(Clone, Copy)]
    struct Node {
        weight: u64,
        // leaf: symbol index; internal: children indices into `nodes`.
        left: usize,
        right: usize,
        symbol: usize, // usize::MAX for internal
    }
    let mut nodes: Vec<Node> = live
        .iter()
        .map(|&i| Node {
            weight: freqs[i],
            left: 0,
            right: 0,
            symbol: i,
        })
        .collect();
    let mut leaf_q: std::collections::VecDeque<usize> = (0..nodes.len()).collect();
    let mut int_q: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    let take_min = |nodes: &Vec<Node>,
                    leaf_q: &mut std::collections::VecDeque<usize>,
                    int_q: &mut std::collections::VecDeque<usize>| {
        match (leaf_q.front(), int_q.front()) {
            (Some(&l), Some(&i)) => {
                if nodes[l].weight <= nodes[i].weight {
                    leaf_q.pop_front().unwrap()
                } else {
                    int_q.pop_front().unwrap()
                }
            }
            (Some(_), None) => leaf_q.pop_front().unwrap(),
            (None, Some(_)) => int_q.pop_front().unwrap(),
            (None, None) => unreachable!(),
        }
    };

    let mut root = 0;
    while leaf_q.len() + int_q.len() > 1 {
        let a = take_min(&nodes, &mut leaf_q, &mut int_q);
        let b = take_min(&nodes, &mut leaf_q, &mut int_q);
        let w = nodes[a].weight + nodes[b].weight;
        nodes.push(Node {
            weight: w,
            left: a,
            right: b,
            symbol: usize::MAX,
        });
        root = nodes.len() - 1;
        int_q.push_back(root);
    }

    // Depth-first traversal to assign depths.
    let mut stack = vec![(root, 0u32)];
    while let Some((idx, depth)) = stack.pop() {
        let node = nodes[idx];
        if node.symbol != usize::MAX {
            lengths[node.symbol] = depth.max(1);
        } else {
            stack.push((node.left, depth + 1));
            stack.push((node.right, depth + 1));
        }
    }

    // Length limiting: clamp and repair the Kraft sum.
    let kraft_one = 1u64 << max_len; // sum of 2^(max_len - len) must equal this
    let mut kraft: u64 = 0;
    for l in lengths.iter_mut().filter(|l| **l > 0) {
        if *l > max_len {
            *l = max_len;
        }
        kraft += 1u64 << (max_len - *l);
    }
    if kraft > kraft_one {
        // Over-subscribed: lengthen the shortest-frequency (longest-length)
        // codes that are still below max_len... classic approach: repeatedly
        // take a symbol with len < max_len and the *largest* length, and
        // increment it; each increment frees 2^(max_len-len-1).
        let mut order: Vec<usize> = (0..n).filter(|&i| lengths[i] > 0).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(lengths[i]));
        'outer: while kraft > kraft_one {
            for &i in &order {
                if lengths[i] < max_len && lengths[i] > 0 {
                    kraft -= 1u64 << (max_len - lengths[i] - 1);
                    lengths[i] += 1;
                    if kraft <= kraft_one {
                        break 'outer;
                    }
                }
            }
        }
    }
    if kraft < kraft_one {
        // Under-subscribed (possible after clamping): shorten the cheapest
        // codes greedily where it fits.
        let mut order: Vec<usize> = (0..n).filter(|&i| lengths[i] > 0).collect();
        order.sort_by_key(|&i| (lengths[i], std::cmp::Reverse(freqs[i])));
        let mut changed = true;
        while kraft < kraft_one && changed {
            changed = false;
            for &i in order.iter().rev() {
                let gain = 1u64 << (max_len - lengths[i]);
                if lengths[i] > 1 && kraft + gain <= kraft_one {
                    kraft += gain;
                    lengths[i] -= 1;
                    changed = true;
                }
            }
        }
    }
    debug_assert_eq!(
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_len - l))
            .sum::<u64>()
            .min(kraft_one + 1),
        kraft_one,
        "Kraft equality violated"
    );
    lengths
}

/// A canonical Huffman code built from code lengths.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    /// Code length per symbol (0 = absent).
    lengths: Vec<u32>,
    /// Canonical code per symbol, MSB-aligned to its length.
    codes: Vec<u32>,
    max_len: u32,
    /// Decode table: index by the next `max_len` bits, yields
    /// `(symbol << 4) | length`.
    table: Vec<u32>,
}

impl CanonicalCode {
    /// Builds the canonical code for the given lengths.
    ///
    /// # Panics
    /// Panics if the lengths violate the Kraft inequality or exceed
    /// [`MAX_CODE_LEN`].
    pub fn from_lengths(lengths: &[u32]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        assert!(max_len <= MAX_CODE_LEN, "code length {max_len} too long");
        let mut bl_count = vec![0u32; (max_len + 1) as usize];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        // next_code per length, canonical construction (RFC 1951 style).
        let mut next_code = vec![0u32; (max_len + 2) as usize];
        let mut code = 0u32;
        for bits in 1..=max_len {
            code = (code + bl_count[(bits - 1) as usize]) << 1;
            next_code[bits as usize] = code;
        }
        let mut codes = vec![0u32; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                codes[sym] = next_code[l as usize];
                next_code[l as usize] += 1;
                assert!(
                    codes[sym] < (1u32 << l),
                    "Kraft inequality violated at symbol {sym}"
                );
            }
        }
        // Full decode table (only if there is anything to decode).
        let table = if max_len == 0 {
            Vec::new()
        } else {
            let mut t = vec![u32::MAX; 1usize << max_len];
            for (sym, &l) in lengths.iter().enumerate() {
                if l == 0 {
                    continue;
                }
                let code = codes[sym];
                let shift = max_len - l;
                let base = (code as usize) << shift;
                let entry = ((sym as u32) << 4) | l;
                for slot in &mut t[base..base + (1usize << shift)] {
                    *slot = entry;
                }
            }
            t
        };
        Self {
            lengths: lengths.to_vec(),
            codes,
            max_len,
            table,
        }
    }

    /// Convenience: optimal length-limited code for `freqs`.
    pub fn from_frequencies(freqs: &[u64], max_len: u32) -> Self {
        Self::from_lengths(&code_lengths(freqs, max_len))
    }

    /// Code length of `sym` (0 if absent).
    #[inline]
    pub fn length(&self, sym: usize) -> u32 {
        self.lengths[sym]
    }

    /// All code lengths (for header serialisation).
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// Encodes one symbol.
    ///
    /// # Panics
    /// Panics (in debug) if the symbol has no code.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        let l = self.lengths[sym];
        debug_assert!(l > 0, "encoding absent symbol {sym}");
        w.write_bits(self.codes[sym] as u64, l);
    }

    /// Decodes one symbol.
    ///
    /// # Panics
    /// Panics on an invalid bit pattern (possible only with corrupt input).
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> usize {
        let bits = r.peek_bits(self.max_len) as usize;
        let entry = self.table[bits];
        assert_ne!(entry, u32::MAX, "invalid Huffman bit pattern");
        let len = entry & 0xF;
        r.skip_bits(len);
        (entry >> 4) as usize
    }

    /// Expected compressed size in bits for the given frequencies.
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], data: &[usize]) {
        let code = CanonicalCode::from_frequencies(freqs, MAX_CODE_LEN);
        let mut w = BitWriter::new();
        for &s in data {
            code.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in data {
            assert_eq!(code.decode(&mut r), s);
        }
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[10, 1], &[0, 1, 0, 0, 1, 1, 0]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lengths = code_lengths(&[0, 5, 0], MAX_CODE_LEN);
        assert_eq!(lengths, vec![0, 1, 0]);
        roundtrip(&[0, 5, 0], &[1, 1, 1]);
    }

    #[test]
    fn skewed_distribution() {
        let freqs: Vec<u64> = (0..64).map(|i| 1u64 << (i % 20)).collect();
        let data: Vec<usize> = (0..2000).map(|i| i % 64).collect();
        roundtrip(&freqs, &data);
    }

    #[test]
    fn kraft_equality_holds() {
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let lengths = code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - l))
            .sum();
        assert_eq!(kraft, 1u64 << MAX_CODE_LEN);
    }

    #[test]
    fn length_limiting_kicks_in() {
        // Fibonacci-like frequencies force deep trees without limiting.
        let mut freqs = vec![1u64, 1];
        for i in 2..40 {
            let next = freqs[i - 1] + freqs[i - 2];
            freqs.push(next);
        }
        let lengths = code_lengths(&freqs, 12);
        assert!(lengths.iter().all(|&l| (1..=12).contains(&l)));
        let kraft: u64 = lengths.iter().map(|&l| 1u64 << (12 - l)).sum();
        assert_eq!(kraft, 1u64 << 12);
        // Round-trip with the limited code.
        let code = CanonicalCode::from_lengths(&lengths);
        let data: Vec<usize> = (0..freqs.len()).collect();
        let mut w = BitWriter::new();
        for &s in &data {
            code.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &data {
            assert_eq!(code.decode(&mut r), s);
        }
    }

    #[test]
    fn shorter_codes_for_frequent_symbols() {
        let lengths = code_lengths(&[1000, 10, 10, 10], MAX_CODE_LEN);
        assert!(lengths[0] <= lengths[1]);
        assert!(lengths[0] <= lengths[2]);
    }

    #[test]
    fn cost_bits_matches_actual_output() {
        let freqs = vec![7u64, 3, 1, 9, 0, 2];
        let code = CanonicalCode::from_frequencies(&freqs, MAX_CODE_LEN);
        let mut data = Vec::new();
        for (s, &f) in freqs.iter().enumerate() {
            for _ in 0..f {
                data.push(s);
            }
        }
        let mut w = BitWriter::new();
        for &s in &data {
            code.encode(&mut w, s);
        }
        assert_eq!(w.bit_len() as u64, code.cost_bits(&freqs));
    }

    #[test]
    fn empty_alphabet() {
        let lengths = code_lengths(&[0, 0, 0], MAX_CODE_LEN);
        assert_eq!(lengths, vec![0, 0, 0]);
        let _ = CanonicalCode::from_lengths(&lengths); // must not panic
    }

    #[test]
    fn large_alphabet_roundtrip() {
        let freqs: Vec<u64> = (0..5000u64).map(|i| (i % 97) + 1).collect();
        let data: Vec<usize> = (0..5000).step_by(7).collect();
        roundtrip(&freqs, &data);
    }
}
