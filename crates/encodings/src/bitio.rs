//! MSB-first bit-oriented readers and writers.
//!
//! Both ends agree on the convention that bits are emitted from the most
//! significant position of each byte first, so a stream written as
//! `write_bits(0b101, 3)` starts with the bit `1`.

/// Accumulates bits MSB-first into a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bit accumulator; the `filled` most significant bits are valid.
    acc: u64,
    /// Number of valid bits currently in `acc` (0..=7 after `flush_acc`).
    filled: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            filled: 0,
        }
    }

    /// Appends the `n` least-significant bits of `value`, MSB first.
    ///
    /// # Panics
    /// Panics if `n > 57` (the accumulator guarantee) or if `value` has bits
    /// set above position `n`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(n == 64 || value < (1u64 << n), "value wider than n bits");
        if n == 0 {
            return;
        }
        self.acc |= value << (64 - n - self.filled);
        self.filled += n;
        while self.filled >= 8 {
            self.buf.push((self.acc >> 56) as u8);
            self.acc <<= 8;
            self.filled -= 8;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Appends an arbitrary-width value (up to 64 bits) by splitting it.
    #[inline]
    pub fn write_bits_long(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n > 32 {
            self.write_bits(value >> 32, n - 32);
            self.write_bits(value & 0xFFFF_FFFF, 32);
        } else {
            self.write_bits(value, n);
        }
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.filled as usize
    }

    /// Pads with zero bits to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.buf.push((self.acc >> 56) as u8);
            self.acc = 0;
            self.filled = 0;
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next unread byte.
    pos: usize,
    acc: u64,
    filled: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            filled: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        // Fast path: absorb a whole aligned-load's worth of bits at once.
        // The top bits of the first not-yet-consumed byte may already sit
        // in `acc` below the `filled` mark (from a previous partial
        // absorb); OR-ing the same bit values over them is idempotent, so
        // the word load needs no masking.
        if let Some(chunk) = self.data.get(self.pos..self.pos + 8) {
            let word = u64::from_be_bytes(chunk.try_into().unwrap());
            self.acc |= word >> self.filled;
            let consumed = (64 - self.filled) >> 3;
            self.pos += consumed as usize;
            self.filled += consumed * 8;
        } else {
            while self.filled <= 56 && self.pos < self.data.len() {
                self.acc |= (self.data[self.pos] as u64) << (56 - self.filled);
                self.pos += 1;
                self.filled += 8;
            }
        }
    }

    /// Reads `n` bits (`n <= 57`), returning them in the low bits.
    ///
    /// Reading past the end of the stream yields zero bits, matching the
    /// writer's zero padding.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if n == 0 {
            return 0;
        }
        if self.filled < n {
            self.refill();
        }
        let v = self.acc >> (64 - n);
        self.acc <<= n;
        self.filled = self.filled.saturating_sub(n);
        v
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.read_bits(1) == 1
    }

    /// Reads an arbitrary-width value (up to 64 bits).
    #[inline]
    pub fn read_bits_long(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n > 32 {
            let hi = self.read_bits(n - 32);
            let lo = self.read_bits(32);
            (hi << 32) | lo
        } else {
            self.read_bits(n)
        }
    }

    /// Peeks at the next `n` bits without consuming them.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if self.filled < n {
            self.refill();
        }
        if n == 0 {
            0
        } else {
            self.acc >> (64 - n)
        }
    }

    /// Consumes `n` already-peeked bits.
    #[inline]
    pub fn skip_bits(&mut self, n: u32) {
        debug_assert!(n <= self.filled, "skip_bits beyond refilled window");
        self.acc <<= n;
        self.filled -= n;
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.filled as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bits(0, 1);
        w.write_bits(0x1234, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.read_bits(16), 0x1234);
    }

    #[test]
    fn roundtrip_long_values() {
        let vals = [u64::MAX, 0, 1, 0xDEAD_BEEF_CAFE_F00D, 42];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_bits_long(v, 64);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_bits_long(64), v);
        }
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let mut expect = Vec::new();
        for i in 0..2000u64 {
            let n = (i % 57) as u32 + 1;
            let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << n) - 1).max(1);
            let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write_bits_long(v, n);
            expect.push((v, n));
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in expect {
            assert_eq!(r.read_bits_long(n), v, "width {n}");
        }
    }

    #[test]
    fn bit_len_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0x7F, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(3, 2);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn peek_then_skip_matches_read() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101_0110, 8);
        w.write_bits(0b001, 3);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(5), 0b11010);
        r.skip_bits(5);
        assert_eq!(r.read_bits(3), 0b110);
        assert_eq!(r.read_bits(3), 0b001);
    }

    #[test]
    fn reading_past_end_yields_zeros() {
        let bytes = BitWriter::new().finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(20), 0);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        w.write_bits(0b11, 2);
        w.write_bits(0, 0);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), 0);
        assert_eq!(r.read_bits(2), 0b11);
    }
}
