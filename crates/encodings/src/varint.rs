//! LEB128 variable-length integer encoding.
//!
//! Used for compact headers (frequency tables, rule counts) in the
//! serialised formats.

/// Appends `value` to `out` as LEB128.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a `u32`.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    write_u64(out, value as u64);
}

/// Number of bytes `write_u64(value)` emits, without emitting them.
#[inline]
pub fn encoded_len(value: u64) -> usize {
    (64 - value.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Reads a LEB128 value from `data` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated input or overlong (>10 byte) encodings.
#[inline]
pub fn read_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Reads a `u32`, rejecting values that do not fit.
#[inline]
pub fn read_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    read_u64(data, pos).and_then(|v| u32::try_from(v).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_representative_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            16_384,
            u32::MAX as u64,
            u64::MAX,
            0x0123_4567_89AB_CDEF,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn encoded_len_matches_write() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(encoded_len(v), buf.len(), "value {v}");
        }
    }

    #[test]
    fn truncated_input_returns_none() {
        let buf = vec![0x80, 0x80]; // continuation bits with no terminator
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn u32_overflow_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u32::MAX as u64 + 1);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), None);
    }
}
