//! Adaptive binary range coder (LZMA-style).
//!
//! This is the entropy back-end of the xz-like baseline compressor: a
//! carry-aware arithmetic coder over binary decisions, each driven by an
//! adaptive 11-bit probability model, plus a raw "direct bits" mode for
//! near-uniform fields.

/// Number of probability bits (probabilities live in `0..2048`).
const PROB_BITS: u32 = 11;
/// Initial probability: one half.
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
/// Adaptation shift: larger = slower adaptation.
const MOVE_BITS: u32 = 5;
/// Renormalisation threshold.
const TOP: u32 = 1 << 24;

/// An adaptive probability for one binary context.
#[derive(Debug, Clone, Copy)]
pub struct Prob(u16);

impl Default for Prob {
    fn default() -> Self {
        Prob(PROB_INIT)
    }
}

impl Prob {
    /// A fresh, unbiased probability.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn update(&mut self, bit: u32) {
        if bit == 0 {
            self.0 += ((1 << PROB_BITS) - self.0) >> MOVE_BITS;
        } else {
            self.0 -= self.0 >> MOVE_BITS;
        }
    }
}

/// Range encoder writing to an internal byte buffer.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(byte);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut Prob, bit: u32) {
        let bound = (self.range >> PROB_BITS) * prob.0 as u32;
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        prob.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encodes `n` raw bits of `value` (MSB first) at probability one half.
    #[inline]
    pub fn encode_direct(&mut self, value: u32, n: u32) {
        for i in (0..n).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flushes and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }

    /// Bytes produced so far (lower bound on final size).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been produced yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Range decoder reading from a byte slice.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over bytes produced by [`RangeEncoder::finish`].
    pub fn new(data: &'a [u8]) -> Self {
        let mut d = Self {
            range: u32::MAX,
            code: 0,
            data,
            pos: 1,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn decode_bit(&mut self, prob: &mut Prob) -> u32 {
        let bound = (self.range >> PROB_BITS) * prob.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        prob.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Decodes `n` raw bits (MSB first).
    #[inline]
    pub fn decode_direct(&mut self, n: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..n {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        value
    }
}

/// A tree of adaptive probabilities coding an `n_bits` value MSB-first.
///
/// The classic LZMA "bit tree": context index is the path prefix, so each
/// node adapts to its own conditional distribution.
#[derive(Debug, Clone)]
pub struct BitTree {
    probs: Vec<Prob>,
    n_bits: u32,
}

impl BitTree {
    /// Creates a tree coding values in `0..(1 << n_bits)`.
    pub fn new(n_bits: u32) -> Self {
        Self {
            probs: vec![Prob::new(); 1 << n_bits],
            n_bits,
        }
    }

    /// Encodes `value` (must fit in `n_bits`).
    #[inline]
    pub fn encode(&mut self, enc: &mut RangeEncoder, value: u32) {
        debug_assert!(value < (1 << self.n_bits));
        let mut ctx = 1usize;
        for i in (0..self.n_bits).rev() {
            let bit = (value >> i) & 1;
            enc.encode_bit(&mut self.probs[ctx], bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    /// Decodes a value.
    #[inline]
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut ctx = 1usize;
        for _ in 0..self.n_bits {
            let bit = dec.decode_bit(&mut self.probs[ctx]);
            ctx = (ctx << 1) | bit as usize;
        }
        (ctx as u32) - (1 << self.n_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_biased_bits() {
        let bits: Vec<u32> = (0..10_000).map(|i| u32::from(i % 13 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::new();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let data = enc.finish();
        // Biased stream should compress well below 1 bit per symbol.
        assert!(data.len() < 10_000 / 8);
        let mut dec = RangeDecoder::new(&data);
        let mut p = Prob::new();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn roundtrip_direct_bits() {
        let vals: Vec<(u32, u32)> = (0..1000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 65536, 16))
            .collect();
        let mut enc = RangeEncoder::new();
        for &(v, n) in &vals {
            enc.encode_direct(v, n);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        for &(v, n) in &vals {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn roundtrip_mixed_contexts() {
        let mut enc = RangeEncoder::new();
        let mut probs = [Prob::new(); 16];
        let bits: Vec<(usize, u32)> = (0..50_000)
            .map(|i| {
                let ctx = i % 16;
                let bit = u32::from((i / 16) % (ctx + 2) == 0);
                (ctx, bit)
            })
            .collect();
        for &(ctx, bit) in &bits {
            enc.encode_bit(&mut probs[ctx], bit);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut probs = [Prob::new(); 16];
        for &(ctx, bit) in &bits {
            assert_eq!(dec.decode_bit(&mut probs[ctx]), bit, "ctx {ctx}");
        }
    }

    #[test]
    fn bittree_roundtrip() {
        let vals: Vec<u32> = (0..5000).map(|i| i % 256).collect();
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(8);
        for &v in &vals {
            tree.encode(&mut enc, v);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut tree = BitTree::new(8);
        for &v in &vals {
            assert_eq!(tree.decode(&mut dec), v);
        }
    }

    #[test]
    fn bittree_skewed_compresses() {
        // Mostly value 3: the tree should learn the distribution.
        let vals: Vec<u32> = (0..20_000)
            .map(|i| if i % 20 == 0 { i % 32 } else { 3 })
            .collect();
        let mut enc = RangeEncoder::new();
        let mut tree = BitTree::new(5);
        for &v in &vals {
            tree.encode(&mut enc, v);
        }
        let data = enc.finish();
        assert!(data.len() < 20_000 * 5 / 8 / 3, "got {}", data.len());
        let mut dec = RangeDecoder::new(&data);
        let mut tree = BitTree::new(5);
        for &v in &vals {
            assert_eq!(tree.decode(&mut dec), v);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = RangeEncoder::new();
        let data = enc.finish();
        let _ = RangeDecoder::new(&data); // must not panic
    }

    #[test]
    fn carry_propagation_stress() {
        // Alternating highly-certain bits push `low` close to overflow,
        // exercising the carry path.
        let mut enc = RangeEncoder::new();
        let mut p0 = Prob::new();
        let mut p1 = Prob::new();
        let bits: Vec<u32> = (0..100_000).map(|i| u32::from(i % 2 == 0)).collect();
        for &b in &bits {
            enc.encode_bit(if b == 0 { &mut p0 } else { &mut p1 }, b);
        }
        let data = enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut p0 = Prob::new();
        let mut p1 = Prob::new();
        for &b in &bits {
            let got = dec.decode_bit(if b == 0 { &mut p0 } else { &mut p1 });
            assert_eq!(got, b);
        }
    }
}
