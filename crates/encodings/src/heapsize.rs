//! Exact owned-heap accounting.
//!
//! The paper reports peak memory as a percentage of the uncompressed matrix
//! size. For deterministic, allocator-independent numbers, every compressed
//! representation in this workspace implements [`HeapSize`], which reports
//! the bytes of heap memory a value owns. The benchmark harness additionally
//! installs a tracking allocator for live-heap measurements; the two agree
//! to within allocator slack.

/// Reports the number of heap bytes owned by a value (excluding the
/// inline/stack part of the value itself).
pub trait HeapSize {
    /// Owned heap bytes, counting capacity actually reserved.
    fn heap_bytes(&self) -> usize;

    /// Total footprint: heap bytes plus the inline size of `Self`.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        self.heap_bytes() + std::mem::size_of::<Self>()
    }
}

impl<T: Copy> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: Copy> HeapSize for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_bytes(), 16 * 8);
        assert_eq!(v.total_bytes(), 16 * 8 + std::mem::size_of::<Vec<u64>>());
    }

    #[test]
    fn boxed_slice_counts_len() {
        let b: Box<[u32]> = vec![1, 2, 3].into_boxed_slice();
        assert_eq!(b.heap_bytes(), 12);
    }

    #[test]
    fn option_none_is_free() {
        let o: Option<Vec<u8>> = None;
        assert_eq!(o.heap_bytes(), 0);
        let o = Some(vec![0u8; 100]);
        assert_eq!(o.heap_bytes(), 100);
    }
}
