//! A fast, non-cryptographic hash (the FxHash algorithm used by rustc).
//!
//! The RePair compressor and the CLA encoder hash hundreds of millions of
//! small integer keys; the standard library's SipHash is a measurable
//! bottleneck there (see the Rust Performance Book's hashing chapter), so we
//! ship the classic multiply-rotate Fx construction ourselves.

use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche step: Fx on its own leaves the low bits weak,
        // which hurts hashbrown's 7-bit control tags.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Not a strong statistical test, just a sanity check that the
        // hasher is not degenerate on small integers.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_works_with_pair_keys() {
        let mut m: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999, 999u32.wrapping_mul(7))), Some(&999));
    }

    #[test]
    fn write_bytes_consistent_with_chunks() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a test");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
    }
}
