//! Table-based tANS ("FSE") coder with magnitude folding.
//!
//! The `re_fse` encoding stores the grammar's final string `C` with a
//! finite-state-entropy coder in the style of zstd's FSE: frequencies are
//! normalised to a power-of-two total `L = 1 << table_log`, symbols are
//! spread over an `L`-entry decode table, and each decode step is
//!
//! ```text
//! entry = table[state];
//! t = read_bits(entry.nbits + entry.ebits);
//! emit entry.sym_base + (t & ((1 << entry.ebits) - 1));
//! state = entry.base + (t >> entry.ebits);
//! ```
//!
//! — one table load, one shift-register read, two adds. No division, no
//! renormalisation branch (contrast [`crate::rans`], whose decoder pays a
//! `freq * (x >> k)` multiply plus a renormalisation loop per symbol).
//! Two independent decoder states are interleaved over the even/odd
//! symbol positions so the serial `state -> table -> state` dependency
//! chain of one stream hides behind the other's table load.
//!
//! The (potentially huge) grammar alphabet is folded exactly as in
//! [`crate::rans`]: small symbols own a bucket, large symbols share a
//! bucket per binary magnitude class and spell their offset in raw bits.
//! Unlike the rANS coder, those offset bits ride **inside** the tANS bit
//! stream, directly after the state-transition bits of their symbol, and
//! the decode table carries each bucket's reconstruction base and raw
//! bit count — so a decode step is one table load and one combined
//! bit-register read, with no second stream to track.
//!
//! Encoding runs in reverse so decoding is strictly **forward** (the
//! access order of the matrix-vector multiplication scan): the encoder
//! collects per-symbol bit chunks while walking the input backwards,
//! then writes them in reverse, giving the decoder a plain front-to-back
//! MSB-first stream.

use crate::bitio::{BitReader, BitWriter};
use crate::heapsize::HeapSize;
use crate::varint;

/// Parameters of the folded-alphabet tANS coder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FseParams {
    /// Symbols `< (1 << direct_bits)` map to their own bucket.
    pub direct_bits: u32,
    /// The decode table has `1 << table_log` states.
    pub table_log: u32,
}

impl Default for FseParams {
    fn default() -> Self {
        Self {
            direct_bits: 9,
            table_log: 12,
        }
    }
}

/// Smallest accepted `table_log`. Below 5 the symbol-spread step
/// `(L >> 1) + (L >> 3) + 3` is not guaranteed coprime with `L`.
const MIN_TABLE_LOG: u32 = 5;
/// Largest accepted `table_log` (states and bases must fit `u16`).
const MAX_TABLE_LOG: u32 = 15;

impl FseParams {
    fn direct(&self) -> u32 {
        1 << self.direct_bits
    }

    /// Maps a symbol to `(bucket, extra_bit_count, extra_value)`.
    #[inline]
    fn fold(&self, s: u32) -> (u32, u32, u32) {
        let d = self.direct();
        if s < d {
            (s, 0, 0)
        } else {
            let b = 32 - s.leading_zeros(); // s in [2^(b-1), 2^b)
            let bucket = d + (b - self.direct_bits - 1);
            (bucket, b - 1, s - (1 << (b - 1)))
        }
    }

    /// Inverse of [`fold`]'s bucket mapping: the reconstruction base and
    /// the number of raw offset bits that follow in the stream.
    #[inline]
    fn debucket(&self, bucket: u32) -> (u32, u32) {
        let d = self.direct();
        if bucket < d {
            (bucket, 0)
        } else {
            let b = bucket - d + self.direct_bits + 1;
            (1u32 << (b - 1), b - 1)
        }
    }

    /// Number of buckets needed for 32-bit symbols.
    fn bucket_count(&self) -> usize {
        (self.direct() + (32 - self.direct_bits)) as usize
    }
}

/// Normalises `freqs` so they sum to `1 << table_log`, keeping every
/// nonzero frequency at least 1 (same scheme as the rANS coder).
fn normalise(freqs: &[u64], table_log: u32) -> Vec<u32> {
    let target = 1u64 << table_log;
    let total: u64 = freqs.iter().sum();
    assert!(total > 0, "cannot normalise an empty distribution");
    let nonzero = freqs.iter().filter(|&&f| f > 0).count() as u64;
    assert!(nonzero <= target, "more symbols than table states");

    let mut out = vec![0u32; freqs.len()];
    let mut assigned: u64 = 0;
    for (o, &f) in out.iter_mut().zip(freqs) {
        if f > 0 {
            let scaled = ((f as u128 * target as u128) / total as u128) as u64;
            *o = scaled.max(1) as u32;
            assigned += *o as u64;
        }
    }
    if assigned != target {
        let mut order: Vec<usize> = (0..freqs.len()).filter(|&i| out[i] > 0).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(out[i]));
        let mut idx = 0;
        while assigned > target {
            let i = order[idx % order.len()];
            if out[i] > 1 {
                out[i] -= 1;
                assigned -= 1;
            }
            idx += 1;
        }
        while assigned < target {
            let i = order[idx % order.len()];
            out[i] += 1;
            assigned += 1;
            idx += 1;
        }
    }
    out
}

/// One decode-table state. A step reads `nbits + ebits` bits in one
/// register pull `t`, then emits `sym_base + (t & ((1 << ebits) - 1))`
/// and moves to `state = base + (t >> ebits)`.
#[derive(Debug, Clone, Copy, Default)]
struct DecodeEntry {
    /// Reconstructed-symbol base: the symbol itself for direct buckets,
    /// `1 << (magnitude - 1)` for escape buckets.
    sym_base: u32,
    base: u16,
    /// State-transition bits.
    nbits: u8,
    /// Raw folded-offset bits following the transition bits.
    ebits: u8,
}

/// Spreads each bucket `freq[b]` times over the `L` table positions with
/// the classic FSE step (odd, hence coprime with the power-of-two `L`).
fn spread_symbols(freqs: &[u32], table_log: u32) -> Vec<u16> {
    let size = 1usize << table_log;
    let step = (size >> 1) + (size >> 3) + 3;
    let mask = size - 1;
    let mut spread = vec![0u16; size];
    let mut pos = 0usize;
    for (b, &f) in freqs.iter().enumerate() {
        for _ in 0..f {
            spread[pos] = b as u16;
            pos = (pos + step) & mask;
        }
    }
    debug_assert_eq!(pos, 0, "spread must visit every state exactly once");
    spread
}

/// Builds the decode table from normalised frequencies summing to
/// `1 << table_log`. Every reachable `base + bits` stays in `[0, L)`, so
/// decoding is total even on garbage bit input.
fn build_decode_table(freqs: &[u32], params: FseParams) -> Vec<DecodeEntry> {
    let table_log = params.table_log;
    let spread = spread_symbols(freqs, table_log);
    let size = 1usize << table_log;
    let mut next: Vec<u32> = freqs.to_vec();
    let mut table = vec![DecodeEntry::default(); size];
    for (u, &s) in spread.iter().enumerate() {
        let x = next[s as usize]; // in [freq, 2*freq)
        next[s as usize] += 1;
        let nbits = table_log - (31 - x.leading_zeros());
        let (sym_base, ebits) = params.debucket(s as u32);
        table[u] = DecodeEntry {
            sym_base,
            base: ((x << nbits) - size as u32) as u16,
            nbits: nbits as u8,
            ebits: ebits as u8,
        };
    }
    table
}

/// Per-bucket encoder transform (zstd's `FSE_symbolCompressionTransform`).
#[derive(Debug, Clone, Copy, Default)]
struct EncodeSymbol {
    /// `(maxBitsOut << 16) - (freq << maxBitsOut)`: adding the state and
    /// shifting right by 16 yields the exact bit count to flush.
    delta_nbits: u32,
    /// Offset into the state table: `cumul[bucket] - freq`.
    delta_state: i32,
}

/// Builds the encoder tables: per-state successor values (in `[L, 2L)`)
/// and the per-bucket transforms.
fn build_encode_table(freqs: &[u32], table_log: u32) -> (Vec<u16>, Vec<EncodeSymbol>) {
    let size = 1usize << table_log;
    let spread = spread_symbols(freqs, table_log);
    let mut cumul = vec![0u32; freqs.len() + 1];
    for (i, &f) in freqs.iter().enumerate() {
        cumul[i + 1] = cumul[i] + f;
    }
    let mut fill = cumul.clone();
    let mut state_table = vec![0u16; size];
    for (u, &s) in spread.iter().enumerate() {
        state_table[fill[s as usize] as usize] = (size + u) as u16;
        fill[s as usize] += 1;
    }
    let mut symbols = vec![EncodeSymbol::default(); freqs.len()];
    for (b, &f) in freqs.iter().enumerate() {
        if f == 0 {
            continue;
        }
        // `table_log - floor_log2(f - 1)` for f >= 2; a frequency-1
        // bucket always flushes `table_log` bits (same expression the
        // zstd special case reduces to).
        let high = if f > 1 {
            31 - (f - 1).leading_zeros()
        } else {
            0
        };
        let max_bits = table_log - high;
        symbols[b] = EncodeSymbol {
            delta_nbits: (max_bits << 16).wrapping_sub(f << max_bits),
            delta_state: cumul[b] as i32 - f as i32,
        };
    }
    (state_table, symbols)
}

/// A compressed sequence of `u32` symbols (the `re_fse` counterpart of
/// [`crate::rans::RansSequence`]).
///
/// Owns the interleaved tANS bit stream (state-transition bits and
/// folded-offset bits, merged), the normalised bucket frequency table,
/// and the rebuilt decode table. Decoding is forward, allocation-free
/// per symbol, and total on truncated or forged input (the bit reader
/// yields zeros past the end and every decode-table transition stays in
/// bounds).
#[derive(Debug, Clone)]
pub struct FseSequence {
    params: FseParams,
    len: usize,
    /// Normalised frequencies, truncated at the last used bucket.
    freqs: Vec<u32>,
    /// Decode table, `1 << table_log` entries (empty iff `len == 0`).
    table: Vec<DecodeEntry>,
    /// Interleaved tANS bit stream, in decode order.
    stream: Vec<u8>,
}

impl FseSequence {
    /// Compresses `symbols` with default parameters.
    pub fn encode(symbols: &[u32]) -> Self {
        Self::encode_with(symbols, FseParams::default())
    }

    /// Compresses `symbols` with explicit parameters.
    ///
    /// # Panics
    /// Panics if `params.table_log` is outside `5..=15` or
    /// `params.direct_bits > 30`.
    pub fn encode_with(symbols: &[u32], params: FseParams) -> Self {
        assert!(
            (MIN_TABLE_LOG..=MAX_TABLE_LOG).contains(&params.table_log),
            "table_log out of range"
        );
        assert!(params.direct_bits <= 30, "direct_bits out of range");
        if symbols.is_empty() {
            return Self {
                params,
                len: 0,
                freqs: Vec::new(),
                table: Vec::new(),
                stream: Vec::new(),
            };
        }
        // Pass 1: bucket histogram.
        let mut hist = vec![0u64; params.bucket_count()];
        for &s in symbols {
            let (b, _, _) = params.fold(s);
            hist[b as usize] += 1;
        }
        let used = hist.iter().rposition(|&f| f > 0).unwrap() + 1;
        hist.truncate(used);
        let freqs = normalise(&hist, params.table_log);
        let (state_table, enc_symbols) = build_encode_table(&freqs, params.table_log);

        // Pass 2: walk the symbols in reverse through two interleaved
        // tANS states (even indices -> state 0, odd -> state 1),
        // collecting one `(value, nbits)` chunk per symbol — the state
        // flush bits followed by the folded-offset bits, packed into a
        // single chunk; reversing the chunk list then yields the
        // decoder's forward read order.
        let size = 1u32 << params.table_log;
        let tl = params.table_log;
        let mut states = [size, size]; // any value in [L, 2L) is a valid seed
        let mut chunks: Vec<(u64, u8)> = Vec::with_capacity(symbols.len());
        for (i, &s) in symbols.iter().enumerate().rev() {
            let (b, ebits, ev) = params.fold(s);
            let sym = enc_symbols[b as usize];
            let v = states[i & 1];
            let nbits = v.wrapping_add(sym.delta_nbits) >> 16;
            let flush = (v & ((1 << nbits) - 1)) as u64;
            chunks.push(((flush << ebits) | ev as u64, (nbits + ebits) as u8));
            states[i & 1] = state_table[((v >> nbits) as i32 + sym.delta_state) as usize] as u32;
        }
        let mut w = BitWriter::new();
        w.write_bits((states[0] - size) as u64, tl);
        w.write_bits((states[1] - size) as u64, tl);
        for &(value, nbits) in chunks.iter().rev() {
            w.write_bits(value, nbits as u32);
        }
        Self {
            params,
            len: symbols.len(),
            table: build_decode_table(&freqs, params),
            freqs,
            stream: w.finish(),
        }
    }

    /// Number of encoded symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed payload size in bytes (bit stream + frequency table),
    /// i.e. what would be written to disk.
    pub fn compressed_bytes(&self) -> usize {
        let mut header = Vec::new();
        varint::write_u64(&mut header, self.len as u64);
        varint::write_u32(&mut header, self.freqs.len() as u32);
        for &f in &self.freqs {
            varint::write_u32(&mut header, f);
        }
        header.len() + self.stream.len()
    }

    /// Serialises the sequence: params, length, frequency table, bit
    /// stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_bytes() + 16);
        out.push(self.params.direct_bits as u8);
        out.push(self.params.table_log as u8);
        varint::write_u64(&mut out, self.len as u64);
        varint::write_u32(&mut out, self.freqs.len() as u32);
        for &f in &self.freqs {
            varint::write_u32(&mut out, f);
        }
        varint::write_u64(&mut out, self.stream.len() as u64);
        out.extend_from_slice(&self.stream);
        out
    }

    /// Deserialises from [`to_bytes`](Self::to_bytes) output, advancing
    /// `pos`. Returns `None` on malformed input (bad params, frequency
    /// table not summing to the table size, truncated payload).
    pub fn from_bytes(data: &[u8], pos: &mut usize) -> Option<Self> {
        let direct_bits = *data.get(*pos)? as u32;
        let table_log = *data.get(*pos + 1)? as u32;
        *pos += 2;
        if direct_bits > 30 || !(MIN_TABLE_LOG..=MAX_TABLE_LOG).contains(&table_log) {
            return None;
        }
        let params = FseParams {
            direct_bits,
            table_log,
        };
        let len = varint::read_u64(data, pos)? as usize;
        let n_freqs = varint::read_u32(data, pos)? as usize;
        if n_freqs > params.bucket_count() {
            return None;
        }
        let mut freqs = Vec::with_capacity(n_freqs);
        for _ in 0..n_freqs {
            freqs.push(varint::read_u32(data, pos)?);
        }
        let total: u64 = freqs.iter().map(|&f| f as u64).sum();
        if len > 0 && total != 1u64 << table_log {
            return None;
        }
        let n_stream = varint::read_u64(data, pos)? as usize;
        let end = pos.checked_add(n_stream).filter(|&e| e <= data.len())?;
        let stream = data[*pos..end].to_vec();
        *pos = end;
        let table = if len == 0 {
            Vec::new()
        } else {
            build_decode_table(&freqs, params)
        };
        Some(Self {
            params,
            len,
            freqs,
            table,
            stream,
        })
    }

    /// Forward decoder over the sequence.
    pub fn decoder(&self) -> FseDecoder<'_> {
        let mut bits = BitReader::new(&self.stream);
        let states = if self.len == 0 {
            [0u32, 0u32]
        } else {
            let a = bits.read_bits(self.params.table_log) as u32;
            let b = bits.read_bits(self.params.table_log) as u32;
            [a, b]
        };
        FseDecoder {
            seq: self,
            states,
            parity: 0,
            bits,
            remaining: self.len,
        }
    }

    /// Streams every decoded symbol into `f`, in order — the access
    /// pattern of the multiplication kernels, and the fastest path
    /// through the decoder: the two interleaved states live in
    /// registers, the table index is masked (no bounds check), and each
    /// symbol costs one table load plus one combined bit-register read.
    ///
    /// Equivalent to iterating [`decoder`](Self::decoder).
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        if self.len == 0 {
            return;
        }
        let table = &self.table[..];
        let mask = table.len() - 1; // table.len() == 1 << table_log
        let mut bits = BitReader::new(&self.stream);
        let tl = self.params.table_log;
        let mut s0 = bits.read_bits(tl) as usize;
        let mut s1 = bits.read_bits(tl) as usize;
        let step = |state: &mut usize, bits: &mut BitReader| {
            let e = table[*state & mask];
            let t = bits.read_bits((e.nbits + e.ebits) as u32);
            *state = e.base as usize + (t >> e.ebits) as usize;
            e.sym_base + (t as u32 & ((1u32 << e.ebits) - 1))
        };
        let pairs = self.len / 2;
        for _ in 0..pairs {
            f(step(&mut s0, &mut bits));
            f(step(&mut s1, &mut bits));
        }
        if self.len & 1 == 1 {
            f(step(&mut s0, &mut bits));
        }
    }

    /// Decodes the entire sequence (convenience / testing).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|s| out.push(s));
        out
    }
}

impl HeapSize for FseSequence {
    fn heap_bytes(&self) -> usize {
        self.freqs.heap_bytes() + self.table.heap_bytes() + self.stream.heap_bytes()
    }
}

/// Streaming forward decoder produced by [`FseSequence::decoder`].
///
/// Each step is a table load, a combined bit-register read, and two
/// adds — no division, no renormalisation branch. Consecutive symbols
/// come from alternating states, so two table loads are in flight at
/// once.
#[derive(Debug, Clone)]
pub struct FseDecoder<'a> {
    seq: &'a FseSequence,
    states: [u32; 2],
    parity: usize,
    bits: BitReader<'a>,
    remaining: usize,
}

impl Iterator for FseDecoder<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // States start in [0, L) (the init read masks to table_log
        // bits) and every `base + bits` lands back in [0, L), so the
        // table index is always in bounds — even on truncated streams,
        // where the bit reader pads with zeros and the output degrades
        // to deterministic garbage instead of a panic.
        let e = self.seq.table[self.states[self.parity] as usize];
        let t = self.bits.read_bits((e.nbits + e.ebits) as u32);
        self.states[self.parity] = e.base as u32 + (t >> e.ebits) as u32;
        self.parity ^= 1;
        Some(e.sym_base + (t as u32 & ((1u32 << e.ebits) - 1)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for FseDecoder<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_debucket_inverse() {
        let p = FseParams::default();
        for s in [0u32, 1, 511, 512, 513, 1024, 65535, 1 << 20, u32::MAX] {
            let (bucket, nbits, ev) = p.fold(s);
            let (sym_base, ebits) = p.debucket(bucket);
            assert_eq!(ebits, nbits, "symbol {s}");
            assert_eq!(sym_base + ev, s, "symbol {s}");
            assert!(ebits == 0 || ev < (1 << ebits), "symbol {s}");
        }
    }

    #[test]
    fn spread_visits_every_state_once() {
        for table_log in [MIN_TABLE_LOG, 8, 12, MAX_TABLE_LOG] {
            let l = 1u32 << table_log;
            let freqs = vec![l / 2, l / 4, l / 4 - 1, 1];
            let spread = spread_symbols(&freqs, table_log);
            let mut counts = vec![0u32; freqs.len()];
            for &s in &spread {
                counts[s as usize] += 1;
            }
            assert_eq!(counts, freqs, "table_log {table_log}");
        }
    }

    #[test]
    fn decode_table_transitions_stay_in_bounds() {
        let table_log = 9u32;
        let l = 1u32 << table_log;
        let freqs = vec![l - 37, 20, 16, 1];
        let table = build_decode_table(
            &freqs,
            FseParams {
                direct_bits: 9,
                table_log,
            },
        );
        for e in &table {
            // Worst case: every read bit comes back 1.
            let max_next = e.base as u32 + ((1u32 << e.nbits) - 1);
            assert!(max_next < l, "base {} nbits {}", e.base, e.nbits);
        }
    }

    #[test]
    fn roundtrip_empty() {
        let seq = FseSequence::encode(&[]);
        assert!(seq.is_empty());
        assert_eq!(seq.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn roundtrip_single() {
        let seq = FseSequence::encode(&[42]);
        assert_eq!(seq.to_vec(), vec![42]);
    }

    #[test]
    fn roundtrip_two() {
        // Exercises both interleaved states with one symbol each.
        let seq = FseSequence::encode(&[7, 9000]);
        assert_eq!(seq.to_vec(), vec![7, 9000]);
    }

    #[test]
    fn roundtrip_uniform_small() {
        let data: Vec<u32> = (0..10_000).map(|i| i % 200).collect();
        let seq = FseSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_large_symbols() {
        let data: Vec<u32> = (0..5_000)
            .map(|i| (i * 2_654_435_761u64 % (1 << 30)) as u32)
            .collect();
        let seq = FseSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_skewed() {
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            let r = (i.wrapping_mul(2_654_435_761)) % 1000;
            let s = if r < 700 {
                r % 8
            } else if r < 950 {
                r % 256
            } else {
                1000 + r * 917
            };
            data.push(s);
        }
        let seq = FseSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_max_value() {
        let data = vec![u32::MAX, 0, u32::MAX, 12345, u32::MAX];
        let seq = FseSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_every_small_length() {
        // Off-by-one hazards live at tiny lengths (init states carry the
        // tail symbols of each interleaved stream).
        for n in 0..32u32 {
            let data: Vec<u32> = (0..n).map(|i| i * 37 % 11).collect();
            let seq = FseSequence::encode(&data);
            assert_eq!(seq.to_vec(), data, "len {n}");
        }
    }

    #[test]
    fn compresses_skewed_below_raw() {
        let data: Vec<u32> = (0..100_000)
            .map(|i| if i % 10 == 0 { 7 } else { 3 })
            .collect();
        let seq = FseSequence::encode(&data);
        // ~0.47 bits/symbol entropy; raw would be 400 KB.
        assert!(
            seq.compressed_bytes() < 100_000 / 8 * 2,
            "got {} bytes",
            seq.compressed_bytes()
        );
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn size_is_comparable_to_rans() {
        // Same folding, same normalisation budget: the two coders should
        // land within ~15% of each other on grammar-like data.
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            let r = i.wrapping_mul(2_654_435_761) % 1000;
            data.push(if r < 800 { r % 64 } else { 500 + r * 31 });
        }
        let fse = FseSequence::encode(&data);
        let rans = crate::rans::RansSequence::encode(&data);
        let f = fse.compressed_bytes() as f64;
        let r = rans.compressed_bytes() as f64;
        assert!(f < r * 1.15, "fse {f} vs rans {r}");
    }

    #[test]
    fn decoder_is_exact_size() {
        let data: Vec<u32> = (0..1234).collect();
        let seq = FseSequence::encode(&data);
        assert_eq!(seq.decoder().len(), 1234);
    }

    #[test]
    fn bytes_roundtrip() {
        let data: Vec<u32> = (0..5000).map(|i| i * 7 % 300 + (i % 13) * 1000).collect();
        let seq = FseSequence::encode(&data);
        let bytes = seq.to_bytes();
        let mut pos = 0;
        let back = FseSequence::from_bytes(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back.to_vec(), data);
    }

    #[test]
    fn bytes_roundtrip_empty() {
        let seq = FseSequence::encode(&[]);
        let bytes = seq.to_bytes();
        let mut pos = 0;
        let back = FseSequence::from_bytes(&bytes, &mut pos).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bytes_rejects_corruption() {
        let data: Vec<u32> = (0..100).collect();
        let seq = FseSequence::encode(&data);
        let mut bytes = seq.to_bytes();
        bytes.truncate(bytes.len() / 2);
        let mut pos = 0;
        assert!(FseSequence::from_bytes(&bytes, &mut pos).is_none());
    }

    #[test]
    fn bytes_rejects_forged_frequency_table() {
        let data: Vec<u32> = (0..500).map(|i| i % 40).collect();
        let seq = FseSequence::encode(&data);
        let bytes = seq.to_bytes();
        // Byte 2.. is the varint length; the frequency table follows the
        // two param bytes + len + count varints. Forge every byte and
        // demand either rejection or a total decode.
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                let mut pos = 0;
                if let Some(back) = FseSequence::from_bytes(&mutated, &mut pos) {
                    let out = back.to_vec();
                    assert_eq!(out.len(), back.len());
                }
            }
        }
    }

    #[test]
    fn truncated_bit_stream_decodes_without_panicking() {
        let data: Vec<u32> = (0..2000).map(|i| i * 31 % 700).collect();
        let seq = FseSequence::encode(&data);
        for keep in [0usize, 1, 2, seq.stream.len() / 2, seq.stream.len() - 1] {
            let mut crippled = seq.clone();
            crippled.stream.truncate(keep.min(crippled.stream.len()));
            let out = crippled.to_vec();
            assert_eq!(out.len(), data.len(), "keep={keep}");
        }
    }

    #[test]
    fn custom_params_roundtrip() {
        let params = FseParams {
            direct_bits: 4,
            table_log: 10,
        };
        let data: Vec<u32> = (0..3000).map(|i| i * 7 % 1024).collect();
        let seq = FseSequence::encode_with(&data, params);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn min_and_max_table_log_roundtrip() {
        let data: Vec<u32> = (0..4000).map(|i| i % 23).collect();
        for table_log in [MIN_TABLE_LOG, MAX_TABLE_LOG] {
            let params = FseParams {
                direct_bits: 9,
                table_log,
            };
            let seq = FseSequence::encode_with(&data, params);
            assert_eq!(seq.to_vec(), data, "table_log {table_log}");
        }
    }
}
