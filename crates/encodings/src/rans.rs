//! Large-alphabet semi-static rANS with magnitude folding ("ans-fold").
//!
//! The paper's `re_ans` variant compresses the grammar's final string `C`
//! with the ans-fold entropy coder of Moffat & Petri (ACM TOIS 2020). The
//! essential ideas, reproduced here:
//!
//! * the (potentially huge) symbol alphabet is *folded*: small symbols get
//!   their own bucket, large symbols share a bucket per binary magnitude
//!   class and spell out their offset with raw bits;
//! * bucket frequencies are gathered in a first pass (semi-static), encoded
//!   in a compact header, and normalised to a power-of-two total;
//! * the bucket stream is entropy-coded with rANS (64-bit state, 32-bit
//!   renormalisation), which decodes strictly *forward* — exactly what the
//!   matrix-vector multiplication scan of `C` requires.

use crate::bitio::{BitReader, BitWriter};
use crate::heapsize::HeapSize;
use crate::varint;

/// Lower bound of the rANS state interval.
const RANS_L: u64 = 1 << 31;

/// Parameters of the folded-alphabet rANS coder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RansParams {
    /// Symbols `< (1 << direct_bits)` map to their own bucket.
    pub direct_bits: u32,
    /// Frequencies are normalised to `1 << scale_bits`.
    pub scale_bits: u32,
}

impl Default for RansParams {
    fn default() -> Self {
        Self {
            direct_bits: 9,
            scale_bits: 12,
        }
    }
}

impl RansParams {
    fn direct(&self) -> u32 {
        1 << self.direct_bits
    }

    /// Maps a symbol to `(bucket, extra_bit_count, extra_value)`.
    #[inline]
    fn fold(&self, s: u32) -> (u32, u32, u32) {
        let d = self.direct();
        if s < d {
            (s, 0, 0)
        } else {
            let b = 32 - s.leading_zeros(); // s in [2^(b-1), 2^b)
            let bucket = d + (b - self.direct_bits - 1);
            (bucket, b - 1, s - (1 << (b - 1)))
        }
    }

    /// Inverse of [`fold`] given the bucket and an extra-bits reader.
    #[inline]
    fn unfold(&self, bucket: u32, extra: &mut BitReader<'_>) -> u32 {
        let d = self.direct();
        if bucket < d {
            bucket
        } else {
            let b = bucket - d + self.direct_bits + 1;
            (1u32 << (b - 1)) + extra.read_bits(b - 1) as u32
        }
    }

    /// Number of buckets needed for 32-bit symbols.
    fn bucket_count(&self) -> usize {
        (self.direct() + (32 - self.direct_bits)) as usize
    }
}

/// Normalises `freqs` so they sum to `1 << scale_bits`, keeping every
/// nonzero frequency at least 1.
fn normalise(freqs: &[u64], scale_bits: u32) -> Vec<u32> {
    let target = 1u64 << scale_bits;
    let total: u64 = freqs.iter().sum();
    assert!(total > 0, "cannot normalise an empty distribution");
    let nonzero = freqs.iter().filter(|&&f| f > 0).count() as u64;
    assert!(nonzero <= target, "more symbols than frequency slots");

    let mut out = vec![0u32; freqs.len()];
    let mut assigned: u64 = 0;
    for (o, &f) in out.iter_mut().zip(freqs) {
        if f > 0 {
            let scaled = ((f as u128 * target as u128) / total as u128) as u64;
            *o = scaled.max(1) as u32;
            assigned += *o as u64;
        }
    }
    // Repair the sum: shave from / add to the largest entries, which
    // perturbs the distribution least in relative terms.
    if assigned != target {
        let mut order: Vec<usize> = (0..freqs.len()).filter(|&i| out[i] > 0).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(out[i]));
        let mut idx = 0;
        while assigned > target {
            let i = order[idx % order.len()];
            if out[i] > 1 {
                out[i] -= 1;
                assigned -= 1;
            }
            idx += 1;
        }
        while assigned < target {
            let i = order[idx % order.len()];
            out[i] += 1;
            assigned += 1;
            idx += 1;
        }
    }
    out
}

/// A compressed sequence of `u32` symbols.
///
/// Owns the rANS word stream, the raw extra-bits stream for folded symbols,
/// and the normalised bucket frequency table. Decoding is forward and
/// allocation-free per symbol.
#[derive(Debug, Clone)]
pub struct RansSequence {
    params: RansParams,
    len: usize,
    /// Normalised frequencies, truncated at the last used bucket.
    freqs: Vec<u32>,
    /// Cumulative frequencies (freqs.len() + 1 entries).
    cum: Vec<u32>,
    /// Slot -> bucket lookup (size `1 << scale_bits`).
    slot_to_bucket: Vec<u16>,
    /// rANS words, in decode order.
    words: Vec<u32>,
    /// Extra (folded-offset) bits, in decode order.
    extra: Vec<u8>,
}

impl RansSequence {
    /// Compresses `symbols` with default parameters.
    pub fn encode(symbols: &[u32]) -> Self {
        Self::encode_with(symbols, RansParams::default())
    }

    /// Compresses `symbols` with explicit parameters.
    pub fn encode_with(symbols: &[u32], params: RansParams) -> Self {
        if symbols.is_empty() {
            return Self {
                params,
                len: 0,
                freqs: Vec::new(),
                cum: vec![0],
                slot_to_bucket: Vec::new(),
                words: Vec::new(),
                extra: Vec::new(),
            };
        }
        // Pass 1: bucket histogram + forward extra bits.
        let mut hist = vec![0u64; params.bucket_count()];
        let mut extra_w = BitWriter::new();
        let mut buckets = Vec::with_capacity(symbols.len());
        for &s in symbols {
            let (b, nbits, ev) = params.fold(s);
            hist[b as usize] += 1;
            if nbits > 0 {
                extra_w.write_bits(ev as u64, nbits);
            }
            buckets.push(b);
        }
        let used = hist.iter().rposition(|&f| f > 0).unwrap() + 1;
        hist.truncate(used);
        let freqs = normalise(&hist, params.scale_bits);
        let mut cum = vec![0u32; used + 1];
        for i in 0..used {
            cum[i + 1] = cum[i] + freqs[i];
        }
        let mut slot_to_bucket = vec![0u16; 1usize << params.scale_bits];
        for b in 0..used {
            for s in cum[b]..cum[b + 1] {
                slot_to_bucket[s as usize] = b as u16;
            }
        }
        // Pass 2: rANS encode in reverse so decode runs forward.
        let scale = params.scale_bits;
        let mut words: Vec<u32> = Vec::new();
        let mut x: u64 = RANS_L;
        for &b in buckets.iter().rev() {
            let f = freqs[b as usize] as u64;
            let c = cum[b as usize] as u64;
            let x_max = ((RANS_L >> scale) << 32) * f;
            while x >= x_max {
                words.push(x as u32);
                x >>= 32;
            }
            x = ((x / f) << scale) + (x % f) + c;
        }
        // Final state, high word first so the decoder can rebuild it.
        words.push(x as u32);
        words.push((x >> 32) as u32);
        words.reverse();
        Self {
            params,
            len: symbols.len(),
            freqs,
            cum,
            slot_to_bucket,
            words,
            extra: extra_w.finish(),
        }
    }

    /// Number of encoded symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed payload size in bytes (words + extra bits + frequency
    /// table), i.e. what would be written to disk.
    pub fn compressed_bytes(&self) -> usize {
        let mut header = Vec::new();
        varint::write_u64(&mut header, self.len as u64);
        varint::write_u32(&mut header, self.freqs.len() as u32);
        for &f in &self.freqs {
            varint::write_u32(&mut header, f);
        }
        header.len() + self.words.len() * 4 + self.extra.len()
    }

    /// Serialises the sequence: params, length, frequency table, words,
    /// extra bits.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_bytes() + 16);
        out.push(self.params.direct_bits as u8);
        out.push(self.params.scale_bits as u8);
        varint::write_u64(&mut out, self.len as u64);
        varint::write_u32(&mut out, self.freqs.len() as u32);
        for &f in &self.freqs {
            varint::write_u32(&mut out, f);
        }
        varint::write_u64(&mut out, self.words.len() as u64);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        varint::write_u64(&mut out, self.extra.len() as u64);
        out.extend_from_slice(&self.extra);
        out
    }

    /// Deserialises from [`to_bytes`](Self::to_bytes) output, advancing
    /// `pos`. Returns `None` on malformed input.
    pub fn from_bytes(data: &[u8], pos: &mut usize) -> Option<Self> {
        let direct_bits = *data.get(*pos)? as u32;
        let scale_bits = *data.get(*pos + 1)? as u32;
        *pos += 2;
        if direct_bits > 30 || scale_bits == 0 || scale_bits > 24 {
            return None;
        }
        let params = RansParams {
            direct_bits,
            scale_bits,
        };
        let len = varint::read_u64(data, pos)? as usize;
        let n_freqs = varint::read_u32(data, pos)? as usize;
        if n_freqs > params.bucket_count() {
            return None;
        }
        let mut freqs = Vec::with_capacity(n_freqs);
        for _ in 0..n_freqs {
            freqs.push(varint::read_u32(data, pos)?);
        }
        let total: u64 = freqs.iter().map(|&f| f as u64).sum();
        if len > 0 && total != 1u64 << scale_bits {
            return None;
        }
        let mut cum = vec![0u32; n_freqs + 1];
        for i in 0..n_freqs {
            cum[i + 1] = cum[i] + freqs[i];
        }
        let mut slot_to_bucket = vec![0u16; if len == 0 { 0 } else { 1usize << scale_bits }];
        if len > 0 {
            for b in 0..n_freqs {
                for s in cum[b]..cum[b + 1] {
                    slot_to_bucket[s as usize] = b as u16;
                }
            }
        }
        let n_words = varint::read_u64(data, pos)? as usize;
        let need = n_words.checked_mul(4)?;
        let end = pos.checked_add(need).filter(|&e| e <= data.len())?;
        let words: Vec<u32> = data[*pos..end]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        *pos = end;
        let n_extra = varint::read_u64(data, pos)? as usize;
        let end = pos.checked_add(n_extra).filter(|&e| e <= data.len())?;
        let extra = data[*pos..end].to_vec();
        *pos = end;
        if len > 0 && words.len() < 2 {
            return None;
        }
        Some(Self {
            params,
            len,
            freqs,
            cum,
            slot_to_bucket,
            words,
            extra,
        })
    }

    /// Forward decoder over the sequence.
    pub fn decoder(&self) -> RansDecoder<'_> {
        let mut words = self.words.iter();
        let x = if self.len == 0 {
            RANS_L
        } else {
            let hi = *words.next().unwrap() as u64;
            let lo = *words.next().unwrap() as u64;
            (hi << 32) | lo
        };
        RansDecoder {
            seq: self,
            x,
            words,
            extra: BitReader::new(&self.extra),
            remaining: self.len,
        }
    }

    /// Decodes the entire sequence (convenience / testing).
    pub fn to_vec(&self) -> Vec<u32> {
        self.decoder().collect()
    }
}

impl HeapSize for RansSequence {
    fn heap_bytes(&self) -> usize {
        self.freqs.heap_bytes()
            + self.cum.heap_bytes()
            + self.slot_to_bucket.heap_bytes()
            + self.words.heap_bytes()
            + self.extra.heap_bytes()
    }
}

/// Streaming forward decoder produced by [`RansSequence::decoder`].
#[derive(Debug, Clone)]
pub struct RansDecoder<'a> {
    seq: &'a RansSequence,
    x: u64,
    words: std::slice::Iter<'a, u32>,
    extra: BitReader<'a>,
    remaining: usize,
}

impl Iterator for RansDecoder<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let params = self.seq.params;
        let mask = (1u64 << params.scale_bits) - 1;
        let slot = (self.x & mask) as usize;
        let b = self.seq.slot_to_bucket[slot] as usize;
        let f = self.seq.freqs[b] as u64;
        let c = self.seq.cum[b] as u64;
        self.x = f * (self.x >> params.scale_bits) + (self.x & mask) - c;
        while self.x < RANS_L {
            // A well-formed stream always has a renormalisation word
            // here. A corrupt one (which can reach a decoder through a
            // mutated container that passed the static header checks)
            // must not panic a serving kernel: keep decoding
            // deterministically on an under-renormalised state. The
            // output is garbage but stays bounded, and the container
            // validation layer rejects it when symbol ranges or
            // separator counts no longer line up.
            match self.words.next() {
                Some(&w) => self.x = (self.x << 32) | w as u64,
                None => break,
            }
        }
        Some(params.unfold(b as u32, &mut self.extra))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RansDecoder<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_unfold_inverse() {
        let p = RansParams::default();
        for s in [0u32, 1, 511, 512, 513, 1024, 65535, 1 << 20, u32::MAX] {
            let (b, nbits, ev) = p.fold(s);
            let mut w = BitWriter::new();
            if nbits > 0 {
                w.write_bits(ev as u64, nbits);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(p.unfold(b, &mut r), s, "symbol {s}");
        }
    }

    #[test]
    fn normalise_sums_to_target() {
        let freqs = vec![100u64, 1, 1, 50, 0, 3];
        let out = normalise(&freqs, 12);
        assert_eq!(out.iter().map(|&f| f as u64).sum::<u64>(), 1 << 12);
        assert!(out[4] == 0);
        assert!(out.iter().zip(&freqs).all(|(&o, &f)| (f == 0) == (o == 0)));
    }

    #[test]
    fn normalise_many_rare_symbols() {
        // 4000 symbols with frequency 1 and one hot symbol: every live
        // symbol must keep freq >= 1 within the 4096 budget.
        let mut freqs = vec![1u64; 4000];
        freqs.push(1_000_000);
        let out = normalise(&freqs, 12);
        assert_eq!(out.iter().map(|&f| f as u64).sum::<u64>(), 1 << 12);
        assert!(out.iter().all(|&f| f >= 1));
    }

    #[test]
    fn roundtrip_empty() {
        let seq = RansSequence::encode(&[]);
        assert!(seq.is_empty());
        assert_eq!(seq.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn roundtrip_single() {
        let seq = RansSequence::encode(&[42]);
        assert_eq!(seq.to_vec(), vec![42]);
    }

    #[test]
    fn roundtrip_uniform_small() {
        let data: Vec<u32> = (0..10_000).map(|i| i % 200).collect();
        let seq = RansSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_large_symbols() {
        let data: Vec<u32> = (0..5_000)
            .map(|i| (i * 2_654_435_761u64 % (1 << 30)) as u32)
            .collect();
        let seq = RansSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_skewed() {
        // Zipf-ish distribution, the realistic case for grammar symbols.
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            let r = (i.wrapping_mul(2_654_435_761)) % 1000;
            let s = if r < 700 {
                r % 8
            } else if r < 950 {
                r % 256
            } else {
                1000 + r * 917
            };
            data.push(s);
        }
        let seq = RansSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn compresses_skewed_below_raw() {
        let data: Vec<u32> = (0..100_000)
            .map(|i| if i % 10 == 0 { 7 } else { 3 })
            .collect();
        let seq = RansSequence::encode(&data);
        // ~0.47 bits/symbol entropy; raw would be 400 KB.
        assert!(
            seq.compressed_bytes() < 100_000 / 8 * 2,
            "got {} bytes",
            seq.compressed_bytes()
        );
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn roundtrip_max_value() {
        let data = vec![u32::MAX, 0, u32::MAX, 12345, u32::MAX];
        let seq = RansSequence::encode(&data);
        assert_eq!(seq.to_vec(), data);
    }

    #[test]
    fn decoder_is_exact_size() {
        let data: Vec<u32> = (0..1234).collect();
        let seq = RansSequence::encode(&data);
        let dec = seq.decoder();
        assert_eq!(dec.len(), 1234);
    }

    #[test]
    fn bytes_roundtrip() {
        let data: Vec<u32> = (0..5000).map(|i| i * 7 % 300 + (i % 13) * 1000).collect();
        let seq = RansSequence::encode(&data);
        let bytes = seq.to_bytes();
        let mut pos = 0;
        let back = RansSequence::from_bytes(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back.to_vec(), data);
    }

    #[test]
    fn bytes_roundtrip_empty() {
        let seq = RansSequence::encode(&[]);
        let bytes = seq.to_bytes();
        let mut pos = 0;
        let back = RansSequence::from_bytes(&bytes, &mut pos).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bytes_rejects_corruption() {
        let data: Vec<u32> = (0..100).collect();
        let seq = RansSequence::encode(&data);
        let mut bytes = seq.to_bytes();
        bytes.truncate(bytes.len() / 2);
        let mut pos = 0;
        assert!(RansSequence::from_bytes(&bytes, &mut pos).is_none());
    }

    #[test]
    fn truncated_word_stream_decodes_without_panicking() {
        // A corrupted container can hand the decoder fewer
        // renormalisation words than the state machine wants; decoding
        // must stay total (garbage output is fine, panics are not).
        let data: Vec<u32> = (0..2000).map(|i| i * 31 % 700).collect();
        let seq = RansSequence::encode(&data);
        for keep in [2usize, 3, seq.words.len().saturating_sub(1)] {
            let mut crippled = seq.clone();
            crippled.words.truncate(keep.min(crippled.words.len()));
            let out = crippled.to_vec();
            assert_eq!(out.len(), data.len(), "keep={keep}");
        }
    }

    #[test]
    fn custom_params_roundtrip() {
        let params = RansParams {
            direct_bits: 4,
            scale_bits: 10,
        };
        let data: Vec<u32> = (0..3000).map(|i| i * 7 % 1024).collect();
        let seq = RansSequence::encode_with(&data, params);
        assert_eq!(seq.to_vec(), data);
    }
}
