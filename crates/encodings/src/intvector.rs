//! A packed fixed-width integer vector.
//!
//! This plays the role of sdsl-lite's `int_vector` in the paper's `re_iv`
//! encoder: the final string `C` and rule set `R` are stored with
//! `1 + ⌊log₂ N_max⌋` bits per entry instead of 32, trading a small amount
//! of decode work for a large space saving.

use crate::heapsize::HeapSize;

/// A vector of unsigned integers stored in `width` bits each, packed into
/// `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntVector {
    words: Box<[u64]>,
    len: usize,
    width: u32,
}

impl IntVector {
    /// Smallest width able to represent `max_value` (at least 1 bit).
    ///
    /// Matches the paper's choice of `w = 1 + ⌊log₂ N_max⌋`.
    pub fn width_for(max_value: u64) -> u32 {
        64 - max_value.max(1).leading_zeros()
    }

    /// Creates a zero-initialised vector of `len` entries of `width` bits.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 64.
    pub fn new(len: usize, width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        let bits = len
            .checked_mul(width as usize)
            .expect("IntVector too large");
        let words = vec![0u64; bits.div_ceil(64)].into_boxed_slice();
        Self { words, len, width }
    }

    /// Packs a slice, choosing the minimal width for its maximum element.
    pub fn from_slice(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        Self::from_slice_with_width(values, Self::width_for(max))
    }

    /// Packs a slice with an explicit width.
    ///
    /// # Panics
    /// Panics if any value does not fit in `width` bits.
    pub fn from_slice_with_width(values: &[u64], width: u32) -> Self {
        let mut iv = Self::new(values.len(), width);
        for (i, &v) in values.iter().enumerate() {
            iv.set(i, v);
        }
        iv
    }

    /// Packs an iterator of `u32` symbols (common case for grammar output).
    pub fn from_u32s(values: &[u32]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0) as u64;
        let mut iv = Self::new(values.len(), Self::width_for(max));
        for (i, &v) in values.iter().enumerate() {
            iv.set(i, v as u64);
        }
        iv
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per entry.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Reads entry `i`.
    ///
    /// # Panics
    /// Panics (in debug) on out-of-bounds access.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(
            i < self.len,
            "IntVector index {i} out of bounds {}",
            self.len
        );
        let w = self.width as usize;
        let bit = i * w;
        let word = bit >> 6;
        let off = (bit & 63) as u32;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        if off + self.width <= 64 {
            (self.words[word] >> off) & mask
        } else {
            let lo = self.words[word] >> off;
            let hi = self.words[word + 1] << (64 - off);
            (lo | hi) & mask
        }
    }

    /// Writes entry `i`.
    ///
    /// # Panics
    /// Panics (in debug) on out-of-bounds access or an oversized value.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        debug_assert!(i < self.len);
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        debug_assert!(value <= mask, "value {value} exceeds width {}", self.width);
        let w = self.width as usize;
        let bit = i * w;
        let word = bit >> 6;
        let off = (bit & 63) as u32;
        if off + self.width <= 64 {
            self.words[word] = (self.words[word] & !(mask << off)) | (value << off);
        } else {
            let lo_bits = 64 - off;
            self.words[word] = (self.words[word] & !(mask << off)) | (value << off);
            let hi_mask = mask >> lo_bits;
            self.words[word + 1] = (self.words[word + 1] & !hi_mask) | (value >> lo_bits);
        }
    }

    /// Sequential iterator over all entries.
    pub fn iter(&self) -> IntVectorIter<'_> {
        IntVectorIter { iv: self, pos: 0 }
    }

    /// Unpacks into a `Vec<u64>`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Serialises to bytes: varint len, width byte, packed LE words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8 + 10);
        crate::varint::write_u64(&mut out, self.len as u64);
        out.push(self.width as u8);
        for w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialises from [`to_bytes`](Self::to_bytes) output, advancing
    /// `pos`. Returns `None` on malformed input.
    pub fn from_bytes(data: &[u8], pos: &mut usize) -> Option<Self> {
        let len = crate::varint::read_u64(data, pos)? as usize;
        let width = *data.get(*pos)? as u32;
        *pos += 1;
        if !(1..=64).contains(&width) {
            return None;
        }
        let n_words = len.checked_mul(width as usize)?.div_ceil(64);
        let need = n_words.checked_mul(8)?;
        if *pos + need > data.len() {
            return None;
        }
        let words: Vec<u64> = data[*pos..*pos + need]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        *pos += need;
        Some(Self {
            words: words.into_boxed_slice(),
            len,
            width,
        })
    }
}

impl HeapSize for IntVector {
    fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator returned by [`IntVector::iter`].
#[derive(Debug, Clone)]
pub struct IntVectorIter<'a> {
    iv: &'a IntVector,
    pos: usize,
}

impl Iterator for IntVectorIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.pos < self.iv.len {
            let v = self.iv.get(self.pos);
            self.pos += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.iv.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for IntVectorIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_matches_paper_formula() {
        assert_eq!(IntVector::width_for(0), 1);
        assert_eq!(IntVector::width_for(1), 1);
        assert_eq!(IntVector::width_for(2), 2);
        assert_eq!(IntVector::width_for(3), 2);
        assert_eq!(IntVector::width_for(255), 8);
        assert_eq!(IntVector::width_for(256), 9);
        assert_eq!(IntVector::width_for(u64::MAX), 64);
    }

    #[test]
    fn set_get_roundtrip_all_widths() {
        for width in 1..=64u32 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let n = 129;
            let mut iv = IntVector::new(n, width);
            for i in 0..n {
                let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
                iv.set(i, v);
            }
            for i in 0..n {
                let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
                assert_eq!(iv.get(i), v, "width {width}, index {i}");
            }
        }
    }

    #[test]
    fn overwrite_does_not_disturb_neighbours() {
        let mut iv = IntVector::new(100, 7);
        for i in 0..100 {
            iv.set(i, (i % 128) as u64);
        }
        iv.set(50, 0);
        iv.set(50, 127);
        for i in 0..100 {
            let expect = if i == 50 { 127 } else { (i % 128) as u64 };
            assert_eq!(iv.get(i), expect);
        }
    }

    #[test]
    fn from_slice_uses_minimal_width() {
        let iv = IntVector::from_slice(&[3, 7, 1, 0]);
        assert_eq!(iv.width(), 3);
        assert_eq!(iv.to_vec(), vec![3, 7, 1, 0]);
    }

    #[test]
    fn from_u32s_roundtrip() {
        let data: Vec<u32> = (0..1000).map(|i| i * 37 % 5000).collect();
        let iv = IntVector::from_u32s(&data);
        let back: Vec<u32> = iv.iter().map(|v| v as u32).collect();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_vector() {
        let iv = IntVector::from_slice(&[]);
        assert!(iv.is_empty());
        assert_eq!(iv.iter().count(), 0);
    }

    #[test]
    fn heap_bytes_is_word_count() {
        let iv = IntVector::new(64, 9); // 576 bits -> 9 words
        assert_eq!(iv.heap_bytes(), 9 * 8);
    }

    #[test]
    fn bytes_roundtrip() {
        let data: Vec<u64> = (0..777).map(|i| i * 31 % 1023).collect();
        let iv = IntVector::from_slice(&data);
        let bytes = iv.to_bytes();
        let mut pos = 0;
        let back = IntVector::from_bytes(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, iv);
    }

    #[test]
    fn bytes_rejects_truncation_and_bad_width() {
        let iv = IntVector::from_slice(&[1, 2, 3, 4, 5]);
        let mut bytes = iv.to_bytes();
        bytes.truncate(bytes.len() - 1);
        let mut pos = 0;
        assert!(IntVector::from_bytes(&bytes, &mut pos).is_none());
        let mut bytes = iv.to_bytes();
        bytes[1] = 0; // width 0 invalid
        let mut pos = 0;
        assert!(IntVector::from_bytes(&bytes, &mut pos).is_none());
    }

    #[test]
    fn space_saving_vs_u32() {
        // 1000 entries with max 511 -> 10 bits each vs 32 bits.
        let data: Vec<u64> = (0..1000).map(|i| i % 512).collect();
        let iv = IntVector::from_slice(&data);
        assert_eq!(iv.width(), 9);
        assert!(iv.heap_bytes() < 1000 * 4 / 3);
    }
}
