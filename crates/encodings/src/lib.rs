//! Bit-level codecs used throughout the grammar-compressed-matrix stack.
//!
//! This crate is the lowest layer of the workspace: it has no dependencies
//! and provides
//!
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit streams,
//! * [`IntVector`] — a packed fixed-width integer array (the role played by
//!   sdsl-lite's `int_vector` in the paper's `re_iv` encoder),
//! * [`huffman`] — canonical, length-limited Huffman coding,
//! * [`rans`] — a large-alphabet semi-static rANS coder with magnitude
//!   folding (the role played by the *ans-fold* coder of Moffat & Petri in
//!   the paper's `re_ans` encoder),
//! * [`fse`] — a table-based tANS coder (zstd-style FSE) with the same
//!   magnitude folding, whose decode loop is pure adds/masks/shifts with
//!   two interleaved states (the `re_fse` encoder),
//! * [`rangecoder`] — an adaptive binary range coder (used by the xz-like
//!   baseline compressor),
//! * [`varint`] — LEB128 variable-length integers,
//! * [`fxhash`] — a fast non-cryptographic hasher for internal hash tables,
//! * [`HeapSize`] — exact owned-heap accounting used for the paper's
//!   peak-memory experiments.

pub mod bitio;
pub mod fse;
pub mod fxhash;
pub mod heapsize;
pub mod huffman;
pub mod intvector;
pub mod rangecoder;
pub mod rans;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use heapsize::HeapSize;
pub use intvector::IntVector;
