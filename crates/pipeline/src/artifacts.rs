//! What a pipeline build produces: per-shard artifacts, first-class
//! per-shard column permutations, and per-stage statistics.

use std::time::Duration;

use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_matrix::{CsrvMatrix, ParallelCsrv};
use gcm_reorder::ReorderAlgorithm;

use crate::backend::Backend;
use crate::config::GrammarStage;

/// FNV-64 fingerprint of a shard's *input* rows (dimensions, symbol
/// stream, and values — everything that determines the built shard for
/// a fixed configuration). Incremental rebuilds compare this against
/// the fingerprint persisted in the container shard table to decide
/// which shards actually changed, so build and comparison must share
/// one definition: this one.
pub fn shard_fingerprint(csrv: &CsrvMatrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut put = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    put(&(csrv.rows() as u64).to_le_bytes());
    put(&(csrv.cols() as u64).to_le_bytes());
    for &s in csrv.symbols() {
        put(&s.to_le_bytes());
    }
    for &v in csrv.values() {
        put(&v.to_bits().to_le_bytes());
    }
    h
}

/// One built shard in its target [`Backend`] representation. The serve
/// layer converts this into its servable `Model` (adding workspaces and
/// kernels); the pipeline itself stays below the serving seam.
#[derive(Debug, Clone)]
pub enum ShardArtifact {
    /// Uncompressed CSRV.
    Csrv(CsrvMatrix),
    /// Row-block parallel CSRV.
    ParCsrv(ParallelCsrv),
    /// Grammar-compressed matrix.
    Compressed(CompressedMatrix),
    /// Row-block parallel grammar-compressed matrix.
    Blocked(BlockedMatrix),
}

impl ShardArtifact {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            ShardArtifact::Csrv(m) => m.rows(),
            ShardArtifact::ParCsrv(m) => gcm_matrix::MatVec::rows(m),
            ShardArtifact::Compressed(m) => m.rows(),
            ShardArtifact::Blocked(m) => gcm_matrix::MatVec::rows(m),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            ShardArtifact::Csrv(m) => m.cols(),
            ShardArtifact::ParCsrv(m) => gcm_matrix::MatVec::cols(m),
            ShardArtifact::Compressed(m) => m.cols(),
            ShardArtifact::Blocked(m) => gcm_matrix::MatVec::cols(m),
        }
    }

    /// The backend this artifact realises.
    pub fn backend(&self) -> Backend {
        match self {
            ShardArtifact::Csrv(_) => Backend::Csrv,
            ShardArtifact::ParCsrv(_) => Backend::ParCsrv,
            ShardArtifact::Compressed(_) => Backend::Compressed,
            ShardArtifact::Blocked(_) => Backend::Blocked,
        }
    }

    /// Representation size in bytes (the paper's "size" accounting).
    pub fn stored_bytes(&self) -> usize {
        match self {
            ShardArtifact::Csrv(m) => m.csrv_bytes(),
            ShardArtifact::ParCsrv(m) => m.stored_bytes(),
            ShardArtifact::Compressed(m) => m.stored_bytes(),
            ShardArtifact::Blocked(m) => m.stored_bytes(),
        }
    }
}

/// One shard's artifact plus its reorder provenance: the permutation the
/// shard was compressed with (first-class per shard — shards of one
/// model may carry different orders) and the algorithm that produced it.
#[derive(Debug, Clone)]
pub struct BuiltShard {
    /// The built representation.
    pub artifact: ShardArtifact,
    /// Column permutation applied before compression
    /// (`order[p]` = original column at new position `p`), if any.
    pub col_order: Option<Vec<u32>>,
    /// Algorithm that produced `col_order`, if any.
    pub reorder: Option<ReorderAlgorithm>,
    /// Grammar stage that compressed this shard (`None` on the legacy
    /// path and the uncompressed backends — no metadata persisted).
    pub grammar: Option<GrammarStage>,
    /// [`shard_fingerprint`] of the shard's input rows, recorded
    /// whenever a grammar-stage policy is active so incremental
    /// rebuilds can detect unchanged shards.
    pub fingerprint: Option<u64>,
}

/// Per-shard build statistics (sizes and per-stage times).
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (row order).
    pub index: usize,
    /// Rows in the shard.
    pub rows: usize,
    /// Non-zeroes in the shard.
    pub nnz: usize,
    /// Total grammar rules across the shard's blocks (0 for the
    /// uncompressed backends).
    pub grammar_rules: usize,
    /// Representation bytes of the built artifact.
    pub encoded_bytes: usize,
    /// Chosen encoding (None for the uncompressed backends).
    pub encoding: Option<Encoding>,
    /// Chosen grammar stage (None for the uncompressed backends and
    /// the legacy no-metadata path).
    pub grammar: Option<GrammarStage>,
    /// Reorder algorithm applied to this shard, if any.
    pub reorder: Option<ReorderAlgorithm>,
    /// Time spent computing/applying the column reorder.
    pub reorder_time: Duration,
    /// Time spent in RePair grammar construction.
    pub grammar_time: Duration,
    /// Time spent building (and, under `Auto`, measuring) encodings.
    pub encode_time: Duration,
}

/// Whole-build statistics: planning time, end-to-end wall time of the
/// stage execution, and the per-shard breakdown.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Time spent planning (shard split, global-order computation).
    pub plan_time: Duration,
    /// Wall-clock time of the per-shard stage execution.
    pub wall_time: Duration,
    /// Per-shard statistics, in row order.
    pub shards: Vec<ShardStats>,
}

impl BuildStats {
    /// Summed per-stage CPU time across shards:
    /// `(reorder, grammar, encode)`. Under parallel execution the sum
    /// exceeds [`wall_time`](Self::wall_time) — that gap *is* the
    /// pipeline's speed-up.
    pub fn stage_cpu_totals(&self) -> (Duration, Duration, Duration) {
        let mut reorder = Duration::ZERO;
        let mut grammar = Duration::ZERO;
        let mut encode = Duration::ZERO;
        for s in &self.shards {
            reorder += s.reorder_time;
            grammar += s.grammar_time;
            encode += s.encode_time;
        }
        (reorder, grammar, encode)
    }
}

/// Everything a build produces, ready for the serve layer.
#[derive(Debug, Clone)]
pub struct BuildArtifacts {
    /// Backend of every shard.
    pub backend: Backend,
    /// Column count (shared by all shards).
    pub cols: usize,
    /// Built shards, in row order.
    pub shards: Vec<BuiltShard>,
    /// Per-stage statistics.
    pub stats: BuildStats,
}

impl BuildArtifacts {
    /// Total rows across shards.
    pub fn rows(&self) -> usize {
        self.shards.iter().map(|s| s.artifact.rows()).sum()
    }

    /// Total representation bytes across shards.
    pub fn stored_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.artifact.stored_bytes()).sum()
    }
}
