//! Build configuration: what the planner turns into a [`crate::Plan`].

use gcm_core::Encoding;
use gcm_reorder::ReorderAlgorithm;

use crate::backend::Backend;

/// Scope of the §5 column reordering applied before compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderMode {
    /// One permutation computed from the whole matrix, applied to every
    /// shard (the pre-pipeline behaviour; best when shards share column
    /// correlations).
    Global(ReorderAlgorithm),
    /// Each shard computes and applies its **own** permutation (§5.3's
    /// per-block reordering, Table 4) — legal because CSRV pairs keep
    /// their original column indices, and profitable when different row
    /// ranges correlate different columns.
    PerShard(ReorderAlgorithm),
}

impl ReorderMode {
    /// The algorithm, regardless of scope.
    pub fn algorithm(&self) -> ReorderAlgorithm {
        match self {
            ReorderMode::Global(a) | ReorderMode::PerShard(a) => *a,
        }
    }
}

/// How the physical encoding of compressed shards is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingChoice {
    /// Use this encoding for every shard.
    Fixed(Encoding),
    /// Per shard, build every encoding from the single RePair grammar
    /// and keep the one with the smallest **measured** stored size
    /// (ties break in [`Encoding::ALL`] order). Shards may end up with
    /// different encodings; the container stores one tag per shard.
    Auto,
}

impl EncodingChoice {
    /// CLI / display name.
    pub fn name(&self) -> String {
        match self {
            EncodingChoice::Fixed(e) => e.name().to_string(),
            EncodingChoice::Auto => "auto".to_string(),
        }
    }
}

/// The grammar construction stage that actually compressed a shard.
///
/// Recorded per shard (a build under [`GrammarChoice::Auto`] may pick
/// different stages for different shards) and persisted in the v5
/// container shard table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarStage {
    /// Classic pair replacement ([`gcm_repair::RePair::compress`]).
    RePair,
    /// MR-RePair: each replaced pair greedily consumes its maximal
    /// repeat into one variable-arity rule
    /// ([`gcm_repair::RePair::compress_mr`], Furuya et al. 2019).
    MrRePair,
}

impl GrammarStage {
    /// CLI / display / container-tag name.
    pub fn name(&self) -> &'static str {
        match self {
            GrammarStage::RePair => "repair",
            GrammarStage::MrRePair => "mr-repair",
        }
    }
}

/// How the grammar stage is chosen for each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarChoice {
    /// Classic RePair for every shard.
    RePair,
    /// MR-RePair for every shard.
    MrRePair,
    /// Per shard, build **both** grammars, encode both under the
    /// shard's encoding policy, and keep the one with the smaller
    /// **measured** stored size (ties break to RePair). Mirrors
    /// [`EncodingChoice::Auto`]: the decision is per shard and the
    /// container records one stage tag per shard.
    Auto,
}

impl GrammarChoice {
    /// CLI / display name.
    pub fn name(&self) -> &'static str {
        match self {
            GrammarChoice::RePair => "repair",
            GrammarChoice::MrRePair => "mr-repair",
            GrammarChoice::Auto => "auto",
        }
    }
}

/// Full configuration of one pipeline build.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Representation of every shard.
    pub backend: Backend,
    /// Encoding policy for compressed backends.
    pub encoding: EncodingChoice,
    /// Grammar-stage policy for compressed backends. `None` is the
    /// legacy path: classic RePair with **no** per-shard grammar
    /// metadata, so containers keep their pre-grammar-stage version
    /// byte-identically. `Some(...)` records the chosen stage (and the
    /// shard input fingerprint) per shard.
    pub grammar: Option<GrammarChoice>,
    /// Number of row shards (clamped to `1..=rows`).
    pub shards: usize,
    /// Row blocks *inside* each shard (`blocked` / `parcsrv` backends).
    pub blocks: usize,
    /// Optional column reordering (§5) applied before compression.
    pub reorder: Option<ReorderMode>,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            backend: Backend::Compressed,
            encoding: EncodingChoice::Fixed(Encoding::ReAns),
            grammar: None,
            shards: 1,
            blocks: 4,
            reorder: None,
        }
    }
}
