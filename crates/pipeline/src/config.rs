//! Build configuration: what the planner turns into a [`crate::Plan`].

use gcm_core::Encoding;
use gcm_reorder::ReorderAlgorithm;

use crate::backend::Backend;

/// Scope of the §5 column reordering applied before compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderMode {
    /// One permutation computed from the whole matrix, applied to every
    /// shard (the pre-pipeline behaviour; best when shards share column
    /// correlations).
    Global(ReorderAlgorithm),
    /// Each shard computes and applies its **own** permutation (§5.3's
    /// per-block reordering, Table 4) — legal because CSRV pairs keep
    /// their original column indices, and profitable when different row
    /// ranges correlate different columns.
    PerShard(ReorderAlgorithm),
}

impl ReorderMode {
    /// The algorithm, regardless of scope.
    pub fn algorithm(&self) -> ReorderAlgorithm {
        match self {
            ReorderMode::Global(a) | ReorderMode::PerShard(a) => *a,
        }
    }
}

/// How the physical encoding of compressed shards is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingChoice {
    /// Use this encoding for every shard.
    Fixed(Encoding),
    /// Per shard, build every encoding from the single RePair grammar
    /// and keep the one with the smallest **measured** stored size
    /// (ties break in [`Encoding::ALL`] order). Shards may end up with
    /// different encodings; the container stores one tag per shard.
    Auto,
}

impl EncodingChoice {
    /// CLI / display name.
    pub fn name(&self) -> String {
        match self {
            EncodingChoice::Fixed(e) => e.name().to_string(),
            EncodingChoice::Auto => "auto".to_string(),
        }
    }
}

/// Full configuration of one pipeline build.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Representation of every shard.
    pub backend: Backend,
    /// Encoding policy for compressed backends.
    pub encoding: EncodingChoice,
    /// Number of row shards (clamped to `1..=rows`).
    pub shards: usize,
    /// Row blocks *inside* each shard (`blocked` / `parcsrv` backends).
    pub blocks: usize,
    /// Optional column reordering (§5) applied before compression.
    pub reorder: Option<ReorderMode>,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            backend: Backend::Compressed,
            encoding: EncodingChoice::Fixed(Encoding::ReAns),
            shards: 1,
            blocks: 4,
            reorder: None,
        }
    }
}
