//! The stage executor: a pool-parallel map built on the persistent
//! thread pool's allocation-free [`rayon::broadcast_indexed`].
//!
//! Both ends of the persist seam run through this one primitive: the
//! build pipeline maps shard plans to artifacts, and the container
//! loader maps shard byte ranges to decoded models. Neither spawns a
//! thread — workers are the pool's, claimed per index — which is what
//! lets the serve layer assert "no per-build thread spawns" with
//! [`rayon::threads_ever_spawned`].

/// Shared raw base pointer for disjoint per-index result slots.
struct SendPtr<T>(*mut T);
// SAFETY: only used to derive disjoint per-index writes; see `par_map`.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Runs `f(i)` for every `i in 0..n` on the persistent pool and returns
/// the results in index order. The calling thread participates, so the
/// map makes progress even when every worker is busy; with `n <= 1` —
/// or on a single-worker pool, where dispatch could only add contention
/// — it runs inline without touching the pool.
///
/// # Panics
/// If any `f(i)` panics, one payload is re-raised here after the
/// remaining indices complete (the pool survives).
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || rayon::current_num_threads() <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let base = SendPtr(out.as_mut_ptr());
    let base = &base;
    rayon::broadcast_indexed(n, &|i| {
        let value = f(i);
        // SAFETY: every index writes only its own slot, the slots are
        // disjoint, and `out` outlives the broadcast (which blocks until
        // every index completed). The slot holds `None`, so the
        // overwrite drops nothing that aliases other tasks' state.
        unsafe { *base.0.add(i) = Some(value) };
    });
    out.into_iter()
        .map(|slot| slot.expect("broadcast filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_every_index_in_order() {
        let out = par_map(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn runs_each_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        let _ = par_map(hits.len(), |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn does_not_spawn_threads_once_pool_is_up() {
        let _ = par_map(4, |i| i); // spin up the global pool
        let spawned = rayon::threads_ever_spawned();
        for _ in 0..50 {
            let _ = par_map(8, |i| i * i);
        }
        assert_eq!(
            rayon::threads_ever_spawned(),
            spawned,
            "par_map must reuse pool workers"
        );
    }

    #[test]
    fn moves_non_trivial_results_back() {
        let out = par_map(9, |i| vec![i as u8; i]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i);
            assert!(v.iter().all(|&b| b == i as u8));
        }
    }
}
