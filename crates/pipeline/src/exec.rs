//! Stage execution: runs a [`Plan`]'s shards — reorder → RePair →
//! encode, fused per shard — on the persistent thread pool.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_matrix::{CsrvMatrix, ParallelCsrv, RowBlocks, SEPARATOR};
use gcm_repair::{MrSlp, RePair, RePairScratch, Slp};

use crate::artifacts::{
    shard_fingerprint, BuildArtifacts, BuildStats, BuiltShard, ShardArtifact, ShardStats,
};
use crate::backend::Backend;
use crate::config::{BuildConfig, EncodingChoice, GrammarChoice, GrammarStage};
use crate::plan::{Plan, ShardPlan, ShardReorder};
use crate::stage::par_map;

/// The pipeline executor: stage machinery plus a scratch arena of
/// [`RePairScratch`] buffers, one per pool worker (plus the caller), so
/// concurrent grammar constructions reuse working storage across shards
/// and across builds instead of reallocating it per block.
#[derive(Debug)]
pub struct Pipeline {
    scratches: Vec<Mutex<RePairScratch>>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// A pipeline sized to the persistent pool (one scratch per worker,
    /// plus one for the calling thread, which participates in stages).
    pub fn new() -> Self {
        Self::with_workers(rayon::current_num_threads() + 1)
    }

    /// A pipeline with an explicit scratch-arena size.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            scratches: (0..workers.max(1))
                .map(|_| Mutex::new(RePairScratch::new()))
                .collect(),
        }
    }

    /// Runs `f` with an uncontended scratch from the arena, falling back
    /// to a fresh one if every slot is busy (correctness never depends
    /// on which scratch a task gets).
    fn with_scratch<R>(&self, f: impl FnOnce(&mut RePairScratch) -> R) -> R {
        for slot in &self.scratches {
            if let Ok(mut scratch) = slot.try_lock() {
                return f(&mut scratch);
            }
        }
        f(&mut RePairScratch::new())
    }

    /// Plans and executes a build of `csrv` with shards running
    /// **concurrently** on the persistent pool.
    pub fn build(&self, csrv: &CsrvMatrix, config: &BuildConfig) -> BuildArtifacts {
        let t0 = Instant::now();
        let plan = Plan::new(csrv, config);
        let plan_time = t0.elapsed();
        self.execute_with(plan, plan_time, true)
    }

    /// As [`build`](Self::build) with every shard executed sequentially
    /// on the calling thread — the reference path the parallel build is
    /// pinned bit-identical against (and the bench baseline).
    pub fn build_sequential(&self, csrv: &CsrvMatrix, config: &BuildConfig) -> BuildArtifacts {
        let t0 = Instant::now();
        let plan = Plan::new(csrv, config);
        let plan_time = t0.elapsed();
        self.execute_with(plan, plan_time, false)
    }

    /// Executes an already-made plan concurrently.
    pub fn execute(&self, plan: Plan) -> BuildArtifacts {
        self.execute_with(plan, std::time::Duration::ZERO, true)
    }

    fn execute_with(
        &self,
        plan: Plan,
        plan_time: std::time::Duration,
        parallel: bool,
    ) -> BuildArtifacts {
        let t0 = Instant::now();
        let built: Vec<(BuiltShard, ShardStats)> = if parallel {
            par_map(plan.shards.len(), |i| {
                self.build_shard(&plan, &plan.shards[i])
            })
        } else {
            plan.shards
                .iter()
                .map(|sp| self.build_shard(&plan, sp))
                .collect()
        };
        let wall_time = t0.elapsed();
        let mut shards = Vec::with_capacity(built.len());
        let mut stats = Vec::with_capacity(built.len());
        for (shard, stat) in built {
            shards.push(shard);
            stats.push(stat);
        }
        BuildArtifacts {
            backend: plan.backend,
            cols: plan.cols,
            shards,
            stats: BuildStats {
                plan_time,
                wall_time,
                shards: stats,
            },
        }
    }

    /// One shard's fused stage chain: reorder → grammar → encode.
    fn build_shard(&self, plan: &Plan, sp: &ShardPlan) -> (BuiltShard, ShardStats) {
        let rows = sp.csrv.rows();
        let nnz = sp.csrv.nnz();

        // Stage: reorder. `None` keeps a borrow of the plan's shard so
        // unreordered builds never copy the symbol stream (except the
        // `csrv` backend below, whose artifact must own it).
        let t0 = Instant::now();
        let (reordered, col_order, algo) = match &sp.reorder {
            ShardReorder::None => (None, None, None),
            ShardReorder::Apply(order, algo) => (
                Some(sp.csrv.with_column_order(order)),
                Some(order.iter().map(|&c| c as u32).collect::<Vec<u32>>()),
                Some(*algo),
            ),
            ShardReorder::Compute(algo) => {
                let (reordered, order) =
                    gcm_reorder::BlockReorderConfig::new(*algo).apply(&sp.csrv);
                (
                    Some(reordered),
                    Some(order.iter().map(|&c| c as u32).collect::<Vec<u32>>()),
                    Some(*algo),
                )
            }
        };
        let csrv: &CsrvMatrix = reordered.as_ref().unwrap_or(&sp.csrv);
        let reorder_time = t0.elapsed();

        // Stages: grammar + encode (compressed backends only).
        let mut grammar_time = std::time::Duration::ZERO;
        let mut encode_time = std::time::Duration::ZERO;
        let mut grammar_rules = 0usize;
        let mut encoding = None;
        let mut grammar = None;
        let artifact = match plan.backend {
            Backend::Csrv => ShardArtifact::Csrv(reordered.unwrap_or_else(|| sp.csrv.clone())),
            Backend::ParCsrv => ShardArtifact::ParCsrv(ParallelCsrv::split(csrv, plan.blocks)),
            Backend::Compressed | Backend::Blocked => {
                let blocked_parts;
                let parts: &[CsrvMatrix] = if plan.backend == Backend::Compressed {
                    std::slice::from_ref(csrv)
                } else {
                    blocked_parts = RowBlocks::split(csrv, plan.blocks).into_blocks();
                    &blocked_parts
                };
                let (blocks, stage) = match sp.grammar {
                    // Legacy path and the pinned-RePair policy share the
                    // exact same construction; only the recorded
                    // metadata differs.
                    None | Some(GrammarChoice::RePair) => {
                        let t1 = Instant::now();
                        let grammars = ShardGrammars::RePair(self.repair_grammars(parts));
                        grammar_time = t1.elapsed();
                        let t2 = Instant::now();
                        let blocks = encode_blocks(parts, &grammars, sp.encoding);
                        encode_time = t2.elapsed();
                        (blocks, sp.grammar.map(|_| GrammarStage::RePair))
                    }
                    Some(GrammarChoice::MrRePair) => {
                        let t1 = Instant::now();
                        let grammars = ShardGrammars::MrRePair(self.mr_grammars(parts));
                        grammar_time = t1.elapsed();
                        let t2 = Instant::now();
                        let blocks = encode_blocks(parts, &grammars, sp.encoding);
                        encode_time = t2.elapsed();
                        (blocks, Some(GrammarStage::MrRePair))
                    }
                    // Both stages run for real and the smaller
                    // **measured** encoded output wins (ties break to
                    // RePair, so auto is never larger than pure RePair).
                    Some(GrammarChoice::Auto) => {
                        let t1 = Instant::now();
                        let re = ShardGrammars::RePair(self.repair_grammars(parts));
                        let mr = ShardGrammars::MrRePair(self.mr_grammars(parts));
                        grammar_time = t1.elapsed();
                        let t2 = Instant::now();
                        let re_blocks = encode_blocks(parts, &re, sp.encoding);
                        let mr_blocks = encode_blocks(parts, &mr, sp.encoding);
                        encode_time = t2.elapsed();
                        let bytes = |b: &[CompressedMatrix]| -> usize {
                            b.iter().map(CompressedMatrix::stored_bytes).sum()
                        };
                        if bytes(&mr_blocks) < bytes(&re_blocks) {
                            (mr_blocks, Some(GrammarStage::MrRePair))
                        } else {
                            (re_blocks, Some(GrammarStage::RePair))
                        }
                    }
                };
                grammar_rules = blocks.iter().map(CompressedMatrix::num_rules).sum();
                encoding = blocks.first().map(CompressedMatrix::encoding);
                grammar = stage;
                if plan.backend == Backend::Compressed {
                    let block = blocks.into_iter().next().expect("one block per shard");
                    ShardArtifact::Compressed(block)
                } else {
                    ShardArtifact::Blocked(BlockedMatrix::from_blocks(blocks, plan.cols))
                }
            }
        };

        // Fingerprint the *input* rows (pre-reorder) whenever a
        // grammar-stage policy is active — the handle incremental
        // rebuilds match shards by.
        let fingerprint = match (sp.grammar, plan.backend) {
            (Some(_), Backend::Compressed | Backend::Blocked) => Some(shard_fingerprint(&sp.csrv)),
            _ => None,
        };

        let stats = ShardStats {
            index: sp.index,
            rows,
            nnz,
            grammar_rules,
            encoded_bytes: artifact.stored_bytes(),
            encoding,
            grammar,
            reorder: algo,
            reorder_time,
            grammar_time,
            encode_time,
        };
        (
            BuiltShard {
                artifact,
                col_order,
                reorder: algo,
                grammar,
                fingerprint,
            },
            stats,
        )
    }

    /// One RePair grammar per block, on pooled scratch.
    fn repair_grammars(&self, parts: &[CsrvMatrix]) -> Vec<Slp> {
        parts
            .iter()
            .map(|block| {
                self.with_scratch(|scratch| {
                    RePair::new().compress_with_scratch(
                        block.symbols(),
                        block.terminal_limit(),
                        Some(SEPARATOR),
                        scratch,
                    )
                })
            })
            .collect()
    }

    /// One MR-RePair grammar per block, on the same pooled scratch.
    fn mr_grammars(&self, parts: &[CsrvMatrix]) -> Vec<MrSlp> {
        parts
            .iter()
            .map(|block| {
                self.with_scratch(|scratch| {
                    RePair::new().compress_mr_with_scratch(
                        block.symbols(),
                        block.terminal_limit(),
                        Some(SEPARATOR),
                        scratch,
                    )
                })
            })
            .collect()
    }
}

/// A shard's grammars, one per row block, from either stage.
enum ShardGrammars {
    RePair(Vec<Slp>),
    MrRePair(Vec<MrSlp>),
}

/// Encodes a shard's blocks, selecting the encoding per `choice`: under
/// [`EncodingChoice::Auto`] every encoding is built from the shared
/// grammars and the one with the smallest **measured** total stored size
/// wins (ties break in [`Encoding::ALL`] order — the container needs one
/// encoding per shard, so the choice is made across the shard's blocks).
fn encode_blocks(
    parts: &[CsrvMatrix],
    grammars: &ShardGrammars,
    choice: EncodingChoice,
) -> Vec<CompressedMatrix> {
    let build = |enc: Encoding| -> Vec<CompressedMatrix> {
        match grammars {
            ShardGrammars::RePair(slps) => parts
                .iter()
                .zip(slps)
                .map(|(block, slp)| CompressedMatrix::from_slp(block, slp, enc))
                .collect(),
            ShardGrammars::MrRePair(mrs) => parts
                .iter()
                .zip(mrs)
                .map(|(block, mr)| CompressedMatrix::from_mr_slp(block, mr, enc))
                .collect(),
        }
    };
    match choice {
        EncodingChoice::Fixed(enc) => build(enc),
        EncodingChoice::Auto => Encoding::ALL
            .into_iter()
            .map(build)
            .min_by_key(|blocks| {
                blocks
                    .iter()
                    .map(CompressedMatrix::stored_bytes)
                    .sum::<usize>()
            })
            .expect("at least one encoding"),
    }
}

static GLOBAL: OnceLock<Pipeline> = OnceLock::new();

/// The process-wide pipeline (lazily built, sized to the global pool).
/// The serve layer's `BuildOptions` path and the `gcm` CLI build through
/// it, so scratch arenas amortise across every build in the process.
pub fn global() -> &'static Pipeline {
    GLOBAL.get_or_init(Pipeline::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReorderMode;
    use gcm_matrix::{DenseMatrix, MatVec, Workspace};
    use gcm_reorder::ReorderAlgorithm;

    fn sample(rows: usize, cols: usize) -> CsrvMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * 5 + c * 2) % 3 != 0 {
                    m.set(r, c, (((r + c) % 7) + 1) as f64 * 0.25);
                }
            }
        }
        CsrvMatrix::from_dense(&m).unwrap()
    }

    fn artifact_products_match_dense(artifacts: &BuildArtifacts, csrv: &CsrvMatrix) {
        let dense = csrv.to_dense();
        let x: Vec<f64> = (0..dense.cols()).map(|i| i as f64 * 0.5 - 2.0).collect();
        let mut y_ref = vec![0.0; dense.rows()];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        let mut ws = Workspace::new();
        let mut row = 0usize;
        for shard in &artifacts.shards {
            let rows = shard.artifact.rows();
            let mut y = vec![0.0; rows];
            match &shard.artifact {
                ShardArtifact::Csrv(m) => m.right_multiply(&x, &mut y).unwrap(),
                ShardArtifact::ParCsrv(m) => m.right_multiply(&x, &mut y).unwrap(),
                ShardArtifact::Compressed(m) => m.right_multiply(&x, &mut y).unwrap(),
                ShardArtifact::Blocked(m) => m.right_multiply_into(&x, &mut y, &mut ws).unwrap(),
            }
            for (i, &yi) in y.iter().enumerate() {
                assert!((yi - y_ref[row + i]).abs() < 1e-9);
            }
            row += rows;
        }
        assert_eq!(row, dense.rows());
    }

    #[test]
    fn parallel_build_matches_sequential_for_every_backend() {
        let csrv = sample(61, 8);
        let pipeline = Pipeline::new();
        for backend in Backend::ALL {
            for reorder in [
                None,
                Some(ReorderMode::Global(ReorderAlgorithm::PathCover)),
                Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
            ] {
                let config = BuildConfig {
                    backend,
                    shards: 4,
                    blocks: 2,
                    reorder,
                    ..BuildConfig::default()
                };
                let par = pipeline.build(&csrv, &config);
                let seq = pipeline.build_sequential(&csrv, &config);
                assert_eq!(par.shards.len(), seq.shards.len());
                for (a, b) in par.shards.iter().zip(&seq.shards) {
                    assert_eq!(a.col_order, b.col_order, "{}", backend.name());
                    assert_eq!(a.reorder, b.reorder);
                    assert_eq!(
                        a.artifact.stored_bytes(),
                        b.artifact.stored_bytes(),
                        "{} {:?}",
                        backend.name(),
                        reorder
                    );
                }
                artifact_products_match_dense(&par, &csrv);
            }
        }
    }

    #[test]
    fn auto_encoding_picks_the_smallest_measured_size() {
        let csrv = sample(80, 9);
        let pipeline = Pipeline::new();
        let auto = pipeline.build_sequential(
            &csrv,
            &BuildConfig {
                shards: 2,
                encoding: EncodingChoice::Auto,
                ..BuildConfig::default()
            },
        );
        for (i, shard) in auto.shards.iter().enumerate() {
            let chosen = shard.artifact.stored_bytes();
            for enc in Encoding::ALL {
                let fixed = pipeline.build_sequential(
                    &csrv,
                    &BuildConfig {
                        shards: 2,
                        encoding: EncodingChoice::Fixed(enc),
                        ..BuildConfig::default()
                    },
                );
                assert!(
                    chosen <= fixed.shards[i].artifact.stored_bytes(),
                    "shard {i}: auto ({chosen}) beaten by {}",
                    enc.name()
                );
            }
        }
    }

    #[test]
    fn per_shard_orders_are_recorded_per_shard() {
        let csrv = sample(40, 8);
        let pipeline = Pipeline::new();
        let artifacts = pipeline.build(
            &csrv,
            &BuildConfig {
                shards: 3,
                reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
                ..BuildConfig::default()
            },
        );
        assert_eq!(artifacts.shards.len(), 3);
        for shard in &artifacts.shards {
            let order = shard.col_order.as_ref().expect("order recorded");
            assert_eq!(order.len(), 8);
            let mut seen = [false; 8];
            for &c in order {
                assert!(!seen[c as usize], "duplicate column in permutation");
                seen[c as usize] = true;
            }
            assert_eq!(shard.reorder, Some(ReorderAlgorithm::PathCover));
        }
    }

    #[test]
    fn grammar_stages_build_correct_artifacts_and_metadata() {
        let csrv = sample(80, 9);
        let pipeline = Pipeline::new();
        for choice in [
            GrammarChoice::RePair,
            GrammarChoice::MrRePair,
            GrammarChoice::Auto,
        ] {
            for backend in [Backend::Compressed, Backend::Blocked] {
                let config = BuildConfig {
                    backend,
                    shards: 3,
                    blocks: 2,
                    grammar: Some(choice),
                    ..BuildConfig::default()
                };
                let par = pipeline.build(&csrv, &config);
                let seq = pipeline.build_sequential(&csrv, &config);
                artifact_products_match_dense(&par, &csrv);
                for ((shard, stat), s_shard) in
                    par.shards.iter().zip(&par.stats.shards).zip(&seq.shards)
                {
                    let stage = shard.grammar.expect("stage recorded");
                    assert_eq!(stat.grammar, Some(stage), "{}", choice.name());
                    match choice {
                        GrammarChoice::RePair => assert_eq!(stage, GrammarStage::RePair),
                        GrammarChoice::MrRePair => assert_eq!(stage, GrammarStage::MrRePair),
                        GrammarChoice::Auto => {}
                    }
                    assert!(shard.fingerprint.is_some(), "fingerprint recorded");
                    // Parallel and sequential agree on everything,
                    // including the measured auto-selection.
                    assert_eq!(s_shard.grammar, shard.grammar);
                    assert_eq!(s_shard.fingerprint, shard.fingerprint);
                    assert_eq!(
                        s_shard.artifact.stored_bytes(),
                        shard.artifact.stored_bytes()
                    );
                }
            }
        }
    }

    #[test]
    fn legacy_builds_record_no_grammar_metadata() {
        let csrv = sample(40, 8);
        let pipeline = Pipeline::new();
        let legacy = pipeline.build_sequential(&csrv, &BuildConfig::default());
        let pinned = pipeline.build_sequential(
            &csrv,
            &BuildConfig {
                grammar: Some(GrammarChoice::RePair),
                ..BuildConfig::default()
            },
        );
        for (l, p) in legacy.shards.iter().zip(&pinned.shards) {
            assert_eq!(l.grammar, None);
            assert_eq!(l.fingerprint, None);
            assert_eq!(p.grammar, Some(GrammarStage::RePair));
            // Same construction either way — only the metadata differs.
            assert_eq!(l.artifact.stored_bytes(), p.artifact.stored_bytes());
        }
        for s in &legacy.stats.shards {
            assert_eq!(s.grammar, None);
        }
    }

    #[test]
    fn auto_grammar_is_never_larger_than_pure_repair() {
        let csrv = sample(80, 9);
        let pipeline = Pipeline::new();
        for encoding in [EncodingChoice::Fixed(Encoding::ReAns), EncodingChoice::Auto] {
            let auto = pipeline.build_sequential(
                &csrv,
                &BuildConfig {
                    shards: 2,
                    encoding,
                    grammar: Some(GrammarChoice::Auto),
                    ..BuildConfig::default()
                },
            );
            let repair = pipeline.build_sequential(
                &csrv,
                &BuildConfig {
                    shards: 2,
                    encoding,
                    grammar: Some(GrammarChoice::RePair),
                    ..BuildConfig::default()
                },
            );
            for (a, r) in auto.shards.iter().zip(&repair.shards) {
                assert!(
                    a.artifact.stored_bytes() <= r.artifact.stored_bytes(),
                    "auto ({}) beaten by repair ({})",
                    a.artifact.stored_bytes(),
                    r.artifact.stored_bytes()
                );
            }
        }
    }

    #[test]
    fn shard_fingerprints_track_input_changes() {
        let csrv = sample(40, 8);
        let pipeline = Pipeline::new();
        let config = BuildConfig {
            shards: 4,
            grammar: Some(GrammarChoice::RePair),
            ..BuildConfig::default()
        };
        let a = pipeline.build_sequential(&csrv, &config);
        let b = pipeline.build_sequential(&csrv, &config);
        // Deterministic: same input, same fingerprints.
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.fingerprint, sb.fingerprint);
        }
        // Perturb one value in the third shard's row range; only that
        // shard's fingerprint moves.
        let mut dense = csrv.to_dense();
        let r = 25; // rows 0..40 split 4 ways: shard 2 covers 20..30
        let old = dense.get(r, 3);
        dense.set(r, 3, old + 1.0);
        let changed = CsrvMatrix::from_dense(&dense).unwrap();
        let c = pipeline.build_sequential(&changed, &config);
        for (i, (sa, sc)) in a.shards.iter().zip(&c.shards).enumerate() {
            if i == 2 {
                assert_ne!(sa.fingerprint, sc.fingerprint, "changed shard");
            } else {
                assert_eq!(sa.fingerprint, sc.fingerprint, "unchanged shard {i}");
            }
        }
    }

    #[test]
    fn build_uses_pool_workers_not_fresh_threads() {
        let csrv = sample(64, 6);
        let pipeline = Pipeline::new();
        let config = BuildConfig {
            shards: 8,
            ..BuildConfig::default()
        };
        let _ = pipeline.build(&csrv, &config); // spins up the pool
        let spawned = rayon::threads_ever_spawned();
        for _ in 0..5 {
            let _ = pipeline.build(&csrv, &config);
        }
        assert_eq!(
            rayon::threads_ever_spawned(),
            spawned,
            "builds must not spawn per-build threads"
        );
    }

    #[test]
    fn stats_cover_every_shard_and_stage() {
        let csrv = sample(48, 7);
        let artifacts = global().build(
            &csrv,
            &BuildConfig {
                backend: Backend::Blocked,
                shards: 4,
                blocks: 2,
                reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
                ..BuildConfig::default()
            },
        );
        assert_eq!(artifacts.stats.shards.len(), 4);
        let mut rows = 0usize;
        let mut nnz = 0usize;
        for (i, s) in artifacts.stats.shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert!(s.encoded_bytes > 0);
            assert_eq!(s.encoding, Some(Encoding::ReAns));
            rows += s.rows;
            nnz += s.nnz;
        }
        assert_eq!(rows, 48);
        assert_eq!(nnz, csrv.nnz());
        let (_, grammar, encode) = artifacts.stats.stage_cpu_totals();
        assert!(grammar > std::time::Duration::ZERO);
        assert!(encode > std::time::Duration::ZERO);
    }
}
