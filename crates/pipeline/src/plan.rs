//! The planning stage: shard split, per-shard reorder assignment, and
//! encoding policy — everything the stage executor needs to run each
//! shard independently.

use std::sync::Arc;

use gcm_matrix::{CsrvMatrix, RowBlocks};
use gcm_reorder::{reorder_columns, CsmConfig, ReorderAlgorithm};

use crate::backend::Backend;
use crate::config::{BuildConfig, EncodingChoice, GrammarChoice, ReorderMode};

/// Local-pruning sparsity used for every reorder (Table 3 found 8 best).
pub(crate) const REORDER_K: usize = 8;

/// How one shard's columns get reordered during stage execution.
#[derive(Debug, Clone)]
pub enum ShardReorder {
    /// No reordering.
    None,
    /// Apply this precomputed permutation (global mode: the planner
    /// computed it once from the whole matrix; the `Arc` is shared by
    /// every shard plan).
    Apply(Arc<Vec<usize>>, ReorderAlgorithm),
    /// Compute a shard-local order with this algorithm, then apply it.
    Compute(ReorderAlgorithm),
}

/// One shard's unit of work: its row slice plus the decisions the
/// planner made for it.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard index (row order).
    pub index: usize,
    /// The shard's CSRV slice (pre-reorder).
    pub csrv: CsrvMatrix,
    /// Reorder action for this shard.
    pub reorder: ShardReorder,
    /// Encoding policy (per shard, so `Auto` can diverge across shards).
    pub encoding: EncodingChoice,
    /// Grammar-stage policy (`None` = legacy RePair, no metadata).
    pub grammar: Option<GrammarChoice>,
}

/// A complete build plan: what to do, per shard, with no ordering
/// constraints between shards — the contract that makes stage execution
/// embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Target backend of every shard.
    pub backend: Backend,
    /// Row blocks inside each shard (`blocked` / `parcsrv`).
    pub blocks: usize,
    /// Column count.
    pub cols: usize,
    /// The per-shard work list.
    pub shards: Vec<ShardPlan>,
}

impl Plan {
    /// Plans a build of `csrv` per `config`: splits the rows into shards
    /// (clamped to `1..=rows` like the serve layer always did), assigns
    /// each shard its reorder action, and — for [`ReorderMode::Global`] —
    /// computes the whole-matrix permutation here, so execution never
    /// needs the unsplit matrix again.
    pub fn new(csrv: &CsrvMatrix, config: &BuildConfig) -> Plan {
        let global: Option<(Arc<Vec<usize>>, ReorderAlgorithm)> = match config.reorder {
            Some(ReorderMode::Global(algo)) => {
                let order = reorder_columns(csrv, algo, CsmConfig::exact(), REORDER_K);
                Some((Arc::new(order), algo))
            }
            _ => None,
        };
        let per_shard = match config.reorder {
            Some(ReorderMode::PerShard(algo)) => Some(algo),
            _ => None,
        };
        let parts = RowBlocks::split(csrv, config.shards.max(1));
        let shards = parts
            .into_blocks()
            .into_iter()
            .enumerate()
            .map(|(index, block)| ShardPlan {
                index,
                csrv: block,
                reorder: match (&global, per_shard) {
                    (Some((order, algo)), _) => ShardReorder::Apply(Arc::clone(order), *algo),
                    (None, Some(algo)) => ShardReorder::Compute(algo),
                    (None, None) => ShardReorder::None,
                },
                encoding: config.encoding,
                grammar: config.grammar,
            })
            .collect();
        Plan {
            backend: config.backend,
            blocks: config.blocks.max(1),
            cols: csrv.cols(),
            shards,
        }
    }

    /// Number of planned shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_matrix::DenseMatrix;

    fn sample(rows: usize, cols: usize) -> CsrvMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + c) % 3 != 0 {
                    m.set(r, c, (((r * 2 + c) % 5) + 1) as f64);
                }
            }
        }
        CsrvMatrix::from_dense(&m).unwrap()
    }

    #[test]
    fn splits_and_clamps_like_the_serve_layer() {
        let csrv = sample(10, 4);
        let plan = Plan::new(
            &csrv,
            &BuildConfig {
                shards: 4,
                ..BuildConfig::default()
            },
        );
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.shards.iter().map(|s| s.csrv.rows()).sum::<usize>(), 10);
        let plan = Plan::new(
            &csrv,
            &BuildConfig {
                shards: 100,
                ..BuildConfig::default()
            },
        );
        assert_eq!(plan.num_shards(), 10, "clamped to the row count");
    }

    #[test]
    fn global_reorder_is_computed_once_and_shared() {
        let csrv = sample(12, 6);
        let plan = Plan::new(
            &csrv,
            &BuildConfig {
                shards: 3,
                reorder: Some(ReorderMode::Global(ReorderAlgorithm::PathCover)),
                ..BuildConfig::default()
            },
        );
        let mut first: Option<*const Vec<usize>> = None;
        for shard in &plan.shards {
            match &shard.reorder {
                ShardReorder::Apply(order, algo) => {
                    assert_eq!(*algo, ReorderAlgorithm::PathCover);
                    let ptr = Arc::as_ptr(order);
                    match first {
                        None => first = Some(ptr),
                        Some(p) => assert_eq!(p, ptr, "one shared permutation"),
                    }
                }
                other => panic!("expected Apply, got {other:?}"),
            }
        }
    }

    #[test]
    fn per_shard_reorder_defers_computation() {
        let csrv = sample(12, 6);
        let plan = Plan::new(
            &csrv,
            &BuildConfig {
                shards: 3,
                reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::Mwm)),
                ..BuildConfig::default()
            },
        );
        for shard in &plan.shards {
            assert!(matches!(
                shard.reorder,
                ShardReorder::Compute(ReorderAlgorithm::Mwm)
            ));
        }
    }
}
