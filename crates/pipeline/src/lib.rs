//! # gcm-pipeline — the staged build/load pipeline
//!
//! The paper's compression wins (§4–§5) are paid at build time: column
//! reordering, RePair grammar construction, and physical encoding all
//! run before a model can serve a single product. This crate turns that
//! build path — previously a sequential routine inside the serve layer —
//! into an explicit staged architecture:
//!
//! 1. **[`Plan`]** — split the matrix into row shards, assign each shard
//!    its reorder algorithm ([`ReorderMode::Global`] computes one
//!    whole-matrix permutation during planning; [`ReorderMode::PerShard`]
//!    defers a per-shard computation to execution), and record the
//!    encoding policy ([`EncodingChoice::Auto`] picks per shard by
//!    *measured* compressed size);
//! 2. **Stage execution** — every shard independently runs
//!    reorder → RePair → encode as one fused task on the **persistent
//!    thread pool** ([`par_map`] distributes shards across pool workers
//!    without spawning threads), drawing RePair working storage from a
//!    per-worker scratch arena ([`gcm_repair::RePairScratch`]) so
//!    parallel builds don't thrash the allocator;
//! 3. **[`BuildArtifacts`]** — per-shard artifacts (any [`Backend`]
//!    representation), their first-class per-shard column permutations,
//!    and per-stage timing/size statistics, ready for the serve layer to
//!    wrap into a `ShardedModel` or persist as a `GCMSERV1` container.
//!
//! The same [`par_map`] stage machinery drives *loading*: the serve
//! layer's container reader decodes shards concurrently through it, so
//! both ends of the persist seam scale with the pool.
//!
//! Parallel and sequential execution produce **bit-identical** artifacts
//! (every stage is deterministic and shards are independent), which the
//! serve layer's tests pin down at the container-byte level.

pub mod artifacts;
pub mod backend;
pub mod config;
pub mod exec;
pub mod plan;
pub mod stage;

pub use artifacts::{
    shard_fingerprint, BuildArtifacts, BuildStats, BuiltShard, ShardArtifact, ShardStats,
};
pub use backend::Backend;
pub use config::{BuildConfig, EncodingChoice, GrammarChoice, GrammarStage, ReorderMode};
pub use exec::{global, Pipeline};
pub use plan::{Plan, ShardPlan, ShardReorder};
pub use stage::par_map;
