//! The four servable matrix representations a build can target.
//!
//! This enum used to live in the serve layer; it moved down into the
//! pipeline so the build path can be planned and executed without
//! depending on serving code (the serve crate re-exports it, so
//! `gcm_serve::Backend` keeps working).

/// Which representation a built shard (and its on-disk container) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Uncompressed CSRV, single-threaded kernels.
    Csrv,
    /// Uncompressed CSRV split into row blocks, pool-parallel kernels.
    ParCsrv,
    /// Grammar-compressed `(C, R, V)`, single-threaded kernels.
    Compressed,
    /// Grammar-compressed row blocks, pool-parallel kernels (§4.1).
    Blocked,
}

impl Backend {
    /// Every backend, in container-tag order.
    pub const ALL: [Backend; 4] = [
        Backend::Csrv,
        Backend::ParCsrv,
        Backend::Compressed,
        Backend::Blocked,
    ];

    /// Stable on-disk tag (the `GCMSERV1` container's backend byte).
    pub fn tag(&self) -> u8 {
        match self {
            Backend::Csrv => 0,
            Backend::ParCsrv => 1,
            Backend::Compressed => 2,
            Backend::Blocked => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(t: u8) -> Option<Backend> {
        match t {
            0 => Some(Backend::Csrv),
            1 => Some(Backend::ParCsrv),
            2 => Some(Backend::Compressed),
            3 => Some(Backend::Blocked),
            _ => None,
        }
    }

    /// CLI / display name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Csrv => "csrv",
            Backend::ParCsrv => "parcsrv",
            Backend::Compressed => "compressed",
            Backend::Blocked => "blocked",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Whether shards of this backend are grammar-compressed (and thus
    /// pass through the RePair + encode stages).
    pub fn is_compressed(&self) -> bool {
        matches!(self, Backend::Compressed | Backend::Blocked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_tags_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_tag(b.tag()), Some(b));
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::from_tag(9), None);
        assert_eq!(Backend::parse("dense"), None);
    }

    #[test]
    fn compressed_flag() {
        assert!(!Backend::Csrv.is_compressed());
        assert!(!Backend::ParCsrv.is_compressed());
        assert!(Backend::Compressed.is_compressed());
        assert!(Backend::Blocked.is_compressed());
    }
}
