//! The batched TCP front-end behind `gcm serve`: a thread-per-connection
//! server (`std::net`; the kernels below it run on the vendored
//! persistent pool) whose core is a **batching queue** that coalesces
//! concurrent single-vector requests for the same model into one
//! `right/left_multiply_panel` call — the k-wide kernels the bench layer
//! measured at 3.6–17× over k=1 — flushing on width `batch_width` or a
//! microsecond deadline, whichever comes first.
//!
//! Layering:
//!
//! * [`Engine`] is the transport-free request processor:
//!   `handle_frame(body, out)` decodes one protocol frame and encodes
//!   the complete response into a caller-owned buffer. Tests (including
//!   the zero-allocation lock-in) drive it without sockets.
//! * `Lane` (private) is one model × direction batching queue:
//!   double-buffered so the next batch fills while the current one
//!   executes, leader/follower combining (the first request in a batch
//!   becomes the leader, runs the panel kernel, and wakes the rest),
//!   all request state preallocated at lane creation.
//! * [`Server`] owns the listener: accept loop, one OS thread per
//!   connection, each reusing one input and one output frame buffer so
//!   the steady-state request loop performs **zero heap allocation**.
//!
//! Admission control is a bounded in-flight counter: past the
//! high-water mark ([`ServerConfig::max_inflight`]) multiply requests
//! fast-fail with `OVERLOADED` instead of queueing unboundedly. Admitted
//! requests that find both of a lane's batch buffers busy wait for one
//! to drain — backpressure, bounded by the admission cap above.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::container::ServeError;
use crate::metrics::{Metrics, ModelMetrics};
use crate::protocol::{
    begin_frame, decode_request, finish_frame, read_frame, status, Direction, Request,
};
use crate::registry::Registry;
use crate::sharded::ShardedModel;

/// Tuning knobs of the serving front-end.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum coalesced batch width (flush threshold); also the widest
    /// k a single request may carry. At least 1, at most `u16::MAX`.
    pub batch_width: usize,
    /// How long the first request of a batch waits for company before
    /// flushing anyway, in microseconds. 0 disables coalescing (every
    /// request flushes immediately).
    pub batch_deadline_us: u64,
    /// Admission high-water mark: multiply requests beyond this many
    /// in flight are shed with `OVERLOADED`.
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_width: 8,
            batch_deadline_us: 200,
            max_inflight: 256,
        }
    }
}

impl ServerConfig {
    fn normalized(mut self) -> Self {
        self.batch_width = self.batch_width.clamp(1, u16::MAX as usize);
        self.max_inflight = self.max_inflight.max(1);
        self
    }
}

/// One model × direction batch buffer. Double-buffered per lane: while
/// one executes, the other accepts fills.
#[derive(Debug)]
struct BatchBuf {
    /// Request vectors in **slot-major** order (slot `s` owns
    /// `xcols[s·in_dim .. (s+1)·in_dim]`) — written as requests join,
    /// before the final width is known.
    xcols: Vec<f64>,
    /// Row-major panel the kernel consumes; the leader transposes
    /// `xcols` into it once the batch closes at its final width.
    panel: Vec<f64>,
    /// Kernel output, row-major at the executed width.
    y: Vec<f64>,
    /// Slots filled so far.
    filled: usize,
    /// Width the batch executed at (valid once `done`).
    exec_k: usize,
    /// Results are ready (or `err` is set).
    done: bool,
    /// Kernel failure to report to every member.
    err: Option<&'static str>,
    /// Members still to copy their column out; the buffer recycles only
    /// at zero.
    readers: usize,
}

impl BatchBuf {
    fn new(max_width: usize, in_dim: usize, out_dim: usize) -> Self {
        Self {
            xcols: vec![0.0; max_width * in_dim],
            panel: vec![0.0; max_width * in_dim],
            y: vec![0.0; max_width * out_dim],
            filled: 0,
            exec_k: 0,
            done: false,
            err: None,
            readers: 0,
        }
    }
}

#[derive(Debug)]
struct LaneState {
    batches: [BatchBuf; 2],
    /// Index of the batch currently accepting fills, if any.
    open: Option<usize>,
    free: [bool; 2],
}

/// Scratch for requests that already carry a k-wide panel (k ≥ 2):
/// they skip the coalescer and run the kernel directly. `pairs` stages
/// decoded sparse non-zeroes (capacity `in_dim`, the validated maximum)
/// for the same reason.
#[derive(Debug)]
struct DirectBufs {
    panel: Vec<f64>,
    y: Vec<f64>,
    pairs: Vec<(u32, f64)>,
}

/// One model × direction batching queue. All buffers are allocated at
/// lane creation; the submit path only locks, copies, and waits.
#[derive(Debug)]
struct Lane {
    in_dim: usize,
    out_dim: usize,
    max_width: usize,
    state: Mutex<LaneState>,
    /// Wakes the leader when the open batch reaches full width.
    full: Condvar,
    /// Wakes followers when their batch's results are ready.
    done_cv: Condvar,
    direct: Mutex<DirectBufs>,
}

fn decode_f64s(dst: &mut [f64], payload: &[u8]) {
    for (d, c) in dst.iter_mut().zip(payload.chunks_exact(8)) {
        *d = f64::from_le_bytes(c.try_into().expect("8 bytes"));
    }
}

impl Lane {
    fn new(in_dim: usize, out_dim: usize, max_width: usize) -> Self {
        Self {
            in_dim,
            out_dim,
            max_width,
            state: Mutex::new(LaneState {
                batches: [
                    BatchBuf::new(max_width, in_dim, out_dim),
                    BatchBuf::new(max_width, in_dim, out_dim),
                ],
                open: None,
                free: [true, true],
            }),
            full: Condvar::new(),
            done_cv: Condvar::new(),
            direct: Mutex::new(DirectBufs {
                panel: vec![0.0; max_width * in_dim],
                y: vec![0.0; max_width * out_dim],
                pairs: Vec::with_capacity(in_dim),
            }),
        }
    }

    fn multiply(
        &self,
        model: &ShardedModel,
        direction: Direction,
        k: usize,
        panel: &[f64],
        y: &mut [f64],
    ) -> Result<(), gcm_matrix::MatrixError> {
        match direction {
            Direction::Right => model.right_multiply_panel(k, panel, y),
            Direction::Left => model.left_multiply_panel(k, panel, y),
        }
    }

    /// Submits a single-vector request to the coalescer. Writes the
    /// complete response frame into `out` and returns its status byte.
    fn submit(
        &self,
        model: &ShardedModel,
        direction: Direction,
        payload: &[u8],
        metrics: &ModelMetrics,
        deadline_us: u64,
        out: &mut Vec<u8>,
    ) -> u8 {
        let mut state = self.state.lock().expect("lane poisoned");

        // Join the open batch, or claim a free buffer as a new one. With
        // both buffers busy an admitted request applies backpressure by
        // waiting for one to drain — shedding is admission control's
        // job (`max_inflight`), and progress is guaranteed because the
        // leader's flush wait is deadline-bounded.
        let idx = loop {
            if let Some(i) = state.open {
                break i;
            }
            if let Some(i) = (0..2).find(|&i| state.free[i]) {
                state.free[i] = false;
                let b = &mut state.batches[i];
                b.filled = 0;
                b.done = false;
                b.err = None;
                b.readers = 0;
                state.open = Some(i);
                break i;
            }
            state = self.done_cv.wait(state).expect("lane poisoned");
        };
        let slot = {
            let b = &mut state.batches[idx];
            let slot = b.filled;
            b.filled += 1;
            b.readers += 1;
            decode_f64s(
                &mut b.xcols[slot * self.in_dim..(slot + 1) * self.in_dim],
                payload,
            );
            slot
        };
        if slot + 1 == self.max_width {
            // Batch is full: close it and wake the leader early.
            state.open = None;
            self.full.notify_all();
        }

        if slot == 0 {
            // Leader: wait (bounded) for company, then execute.
            let deadline = Instant::now() + Duration::from_micros(deadline_us);
            loop {
                if state.batches[idx].filled >= self.max_width {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .full
                    .wait_timeout(state, deadline - now)
                    .expect("lane poisoned");
                state = guard;
            }
            if state.open == Some(idx) {
                state.open = None;
            }
            // Move the buffers out (a `Vec` move — no allocation) so
            // the kernel runs outside the lane lock and the other
            // buffer keeps accepting fills meanwhile.
            let (kf, xcols, mut panel, mut y) = {
                let b = &mut state.batches[idx];
                b.exec_k = b.filled;
                (
                    b.filled,
                    std::mem::take(&mut b.xcols),
                    std::mem::take(&mut b.panel),
                    std::mem::take(&mut b.y),
                )
            };
            drop(state);

            for s in 0..kf {
                for i in 0..self.in_dim {
                    panel[i * kf + s] = xcols[s * self.in_dim + i];
                }
            }
            let res = self.multiply(
                model,
                direction,
                kf,
                &panel[..self.in_dim * kf],
                &mut y[..self.out_dim * kf],
            );
            metrics.batches.fetch_add(1, Ordering::Relaxed);
            metrics.vectors.fetch_add(kf as u64, Ordering::Relaxed);
            metrics.batch_width.record(kf as u64);

            state = self.state.lock().expect("lane poisoned");
            {
                let b = &mut state.batches[idx];
                b.xcols = xcols;
                b.panel = panel;
                b.y = y;
                b.err = res.err().map(|_| "batched panel multiply failed");
                b.done = true;
            }
            self.done_cv.notify_all();
        } else {
            // Follower: the leader runs the kernel for us.
            while !state.batches[idx].done {
                state = self.done_cv.wait(state).expect("lane poisoned");
            }
        }

        // Copy this request's column out and release the buffer.
        let b = &mut state.batches[idx];
        let st = if let Some(msg) = b.err {
            respond_status(out, status::INTERNAL, msg);
            status::INTERNAL
        } else {
            let kf = b.exec_k;
            begin_frame(out);
            out.push(status::OK);
            out.reserve(self.out_dim * 8);
            for r in 0..self.out_dim {
                out.extend_from_slice(&b.y[r * kf + slot].to_le_bytes());
            }
            finish_frame(out);
            status::OK
        };
        b.readers -= 1;
        if b.readers == 0 {
            state.free[idx] = true;
            // Wake requests parked above waiting for a free buffer.
            self.done_cv.notify_all();
        }
        st
    }

    /// Runs a row-subset right multiply (`MULTIPLY_ROWS`) directly —
    /// distinct output slices cannot coalesce, but the request still
    /// counts against admission like any multiply. Same response
    /// contract as [`submit`](Self::submit); the caller has already
    /// validated `rows` against the model.
    fn submit_rows(
        &self,
        model: &ShardedModel,
        rows: std::ops::Range<usize>,
        k: usize,
        payload: &[u8],
        metrics: &ModelMetrics,
        out: &mut Vec<u8>,
    ) -> u8 {
        let mut bufs = self.direct.lock().expect("direct bufs poisoned");
        let DirectBufs { panel, y, .. } = &mut *bufs;
        decode_f64s(&mut panel[..k * self.in_dim], payload);
        let n = rows.len() * k;
        let res = model.right_multiply_rows(rows, k, &panel[..self.in_dim * k], &mut y[..n]);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics.vectors.fetch_add(k as u64, Ordering::Relaxed);
        metrics.batch_width.record(k as u64);
        match res {
            Ok(()) => {
                begin_frame(out);
                out.push(status::OK);
                out.reserve(n * 8);
                for v in &y[..n] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                finish_frame(out);
                status::OK
            }
            Err(_) => {
                respond_status(out, status::INTERNAL, "row-subset multiply failed");
                status::INTERNAL
            }
        }
    }

    /// Runs a sparse right-multiply directly (right lane only; the
    /// caller has validated `nnz` and every index against the model's
    /// column count). Decodes the pairs into the lane's staging buffer
    /// — allocation-free, its capacity covers any valid `nnz` — and
    /// answers with the full `rows` output vector.
    fn submit_sparse(
        &self,
        model: &ShardedModel,
        nnz: usize,
        payload: &[u8],
        metrics: &ModelMetrics,
        out: &mut Vec<u8>,
    ) -> u8 {
        let mut bufs = self.direct.lock().expect("direct bufs poisoned");
        let DirectBufs { y, pairs, .. } = &mut *bufs;
        pairs.clear();
        for i in 0..nnz {
            pairs.push(crate::protocol::sparse_pair(payload, i));
        }
        let res = model.right_multiply_sparse(pairs, &mut y[..self.out_dim]);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics.vectors.fetch_add(1, Ordering::Relaxed);
        metrics.batch_width.record(1);
        match res {
            Ok(()) => {
                begin_frame(out);
                out.push(status::OK);
                out.reserve(self.out_dim * 8);
                for v in &y[..self.out_dim] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                finish_frame(out);
                status::OK
            }
            Err(_) => {
                respond_status(out, status::INTERNAL, "sparse multiply failed");
                status::INTERNAL
            }
        }
    }

    /// Runs a request that already carries a k-wide panel (k ≥ 2)
    /// directly, bypassing the coalescer. Same response contract as
    /// [`submit`](Self::submit).
    fn submit_direct(
        &self,
        model: &ShardedModel,
        direction: Direction,
        k: usize,
        payload: &[u8],
        metrics: &ModelMetrics,
        out: &mut Vec<u8>,
    ) -> u8 {
        let mut bufs = self.direct.lock().expect("direct bufs poisoned");
        let DirectBufs { panel, y, .. } = &mut *bufs;
        decode_f64s(&mut panel[..k * self.in_dim], payload);
        let res = self.multiply(
            model,
            direction,
            k,
            &panel[..self.in_dim * k],
            &mut y[..self.out_dim * k],
        );
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics.vectors.fetch_add(k as u64, Ordering::Relaxed);
        metrics.batch_width.record(k as u64);
        match res {
            Ok(()) => {
                begin_frame(out);
                out.push(status::OK);
                out.reserve(self.out_dim * k * 8);
                for v in &y[..self.out_dim * k] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                finish_frame(out);
                status::OK
            }
            Err(_) => {
                respond_status(out, status::INTERNAL, "panel multiply failed");
                status::INTERNAL
            }
        }
    }
}

/// Per-model serving state: the loaded model, its metrics, and one
/// batching lane per direction.
#[derive(Debug)]
struct ModelLanes {
    model: Arc<ShardedModel>,
    metrics: Arc<ModelMetrics>,
    right: Lane,
    left: Lane,
}

impl ModelLanes {
    fn new(model: Arc<ShardedModel>, metrics: Arc<ModelMetrics>, batch_width: usize) -> Self {
        let (rows, cols) = (model.rows(), model.cols());
        Self {
            right: Lane::new(cols, rows, batch_width),
            left: Lane::new(rows, cols, batch_width),
            model,
            metrics,
        }
    }
}

fn respond_status(out: &mut Vec<u8>, s: u8, msg: &str) {
    begin_frame(out);
    out.push(s);
    out.extend_from_slice(msg.as_bytes());
    finish_frame(out);
}

/// Decrements the in-flight counter on scope exit (including panics).
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The transport-free request processor: protocol frame in, protocol
/// frame out. [`Server`] wraps it in TCP; tests drive it directly.
#[derive(Debug)]
pub struct Engine {
    registry: Registry,
    config: ServerConfig,
    metrics: Metrics,
    lanes: RwLock<HashMap<String, Arc<ModelLanes>>>,
    inflight: AtomicUsize,
}

impl Engine {
    /// An engine serving models out of `registry` under `config`
    /// (widths and marks clamped to sane ranges).
    pub fn new(registry: Registry, config: ServerConfig) -> Self {
        Self {
            registry,
            config: config.normalized(),
            metrics: Metrics::new(),
            lanes: RwLock::new(HashMap::new()),
            inflight: AtomicUsize::new(0),
        }
    }

    /// The active (normalized) configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The backing registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The metrics registry (what the `stats` verb renders).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn get_lanes(&self, name: &str) -> Result<Arc<ModelLanes>, ServeError> {
        if let Some(lanes) = self.lanes.read().expect("lanes poisoned").get(name) {
            return Ok(Arc::clone(lanes));
        }
        // Cold path: registry load (single-flight, prewarmed) + lane
        // buffer allocation, once per model.
        let model = self.registry.get(name)?;
        let metrics = self.metrics.get_or_create(name);
        let lanes = Arc::new(ModelLanes::new(model, metrics, self.config.batch_width));
        let mut map = self.lanes.write().expect("lanes poisoned");
        Ok(Arc::clone(map.entry(name.to_string()).or_insert(lanes)))
    }

    fn respond_serve_error(&self, out: &mut Vec<u8>, e: &ServeError) {
        let not_found = match e {
            ServeError::BadName(_) => true,
            ServeError::Io(io) => io.kind() == std::io::ErrorKind::NotFound,
            _ => false,
        };
        let s = if not_found {
            status::UNKNOWN_MODEL
        } else {
            status::INTERNAL
        };
        respond_status(out, s, &e.to_string());
    }

    fn try_admit(&self) -> Option<InflightGuard<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::Acquire);
        if prev >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::Release);
            return None;
        }
        Some(InflightGuard(&self.inflight))
    }

    /// Processes one request frame body, encoding the complete response
    /// frame (length prefix included) into `out`. Steady-state multiply
    /// requests against warm lanes perform zero heap allocation (once
    /// `out` has grown to the response size).
    pub fn handle_frame(&self, body: &[u8], out: &mut Vec<u8>) {
        let req = match decode_request(body) {
            Ok(req) => req,
            Err(msg) => {
                respond_status(out, status::BAD_REQUEST, msg);
                return;
            }
        };
        match req {
            Request::Ping => respond_status(out, status::OK, ""),
            Request::Stats { model } => {
                let text = self.metrics.render(model);
                respond_status(out, status::OK, &text);
            }
            Request::Info { model } => match self.get_lanes(model) {
                Ok(lanes) => {
                    begin_frame(out);
                    out.push(status::OK);
                    out.extend_from_slice(&(lanes.model.rows() as u64).to_le_bytes());
                    out.extend_from_slice(&(lanes.model.cols() as u64).to_le_bytes());
                    finish_frame(out);
                }
                Err(e) => self.respond_serve_error(out, &e),
            },
            Request::Multiply {
                model,
                direction,
                k,
                payload,
            } => {
                let start = Instant::now();
                let lanes = match self.get_lanes(model) {
                    Ok(lanes) => lanes,
                    Err(e) => {
                        self.respond_serve_error(out, &e);
                        return;
                    }
                };
                let m = &lanes.metrics;
                m.requests.fetch_add(1, Ordering::Relaxed);
                let lane = match direction {
                    Direction::Right => &lanes.right,
                    Direction::Left => &lanes.left,
                };
                if k > lane.max_width {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    respond_status(out, status::BAD_REQUEST, "k exceeds server batch width");
                    return;
                }
                if payload.len() != k * lane.in_dim * 8 {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    respond_status(
                        out,
                        status::BAD_REQUEST,
                        "payload length does not match model dimension",
                    );
                    return;
                }
                let Some(_guard) = self.try_admit() else {
                    m.overloaded.fetch_add(1, Ordering::Relaxed);
                    respond_status(out, status::OVERLOADED, "in-flight high-water mark reached");
                    return;
                };
                let st = if k == 1 {
                    lane.submit(
                        &lanes.model,
                        direction,
                        payload,
                        m,
                        self.config.batch_deadline_us,
                        out,
                    )
                } else {
                    lane.submit_direct(&lanes.model, direction, k, payload, m, out)
                };
                match st {
                    status::OK => m.ok.fetch_add(1, Ordering::Relaxed),
                    status::OVERLOADED => m.overloaded.fetch_add(1, Ordering::Relaxed),
                    _ => m.errors.fetch_add(1, Ordering::Relaxed),
                };
                m.latency_us.record(start.elapsed().as_micros() as u64);
            }
            Request::MultiplyRows {
                model,
                rows,
                k,
                payload,
            } => {
                let start = Instant::now();
                let lanes = match self.get_lanes(model) {
                    Ok(lanes) => lanes,
                    Err(e) => {
                        self.respond_serve_error(out, &e);
                        return;
                    }
                };
                let m = &lanes.metrics;
                m.requests.fetch_add(1, Ordering::Relaxed);
                let lane = &lanes.right;
                // Validate everything server-side before any queueing —
                // a hand-rolled client must not reach the kernels with
                // an out-of-range slice or a mismatched panel.
                if rows.end > lanes.model.rows() {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    respond_status(out, status::BAD_REQUEST, "row range exceeds model rows");
                    return;
                }
                if k > lane.max_width {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    respond_status(out, status::BAD_REQUEST, "k exceeds server batch width");
                    return;
                }
                if payload.len() != k * lane.in_dim * 8 {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    respond_status(
                        out,
                        status::BAD_REQUEST,
                        "payload length does not match model dimension",
                    );
                    return;
                }
                let Some(_guard) = self.try_admit() else {
                    m.overloaded.fetch_add(1, Ordering::Relaxed);
                    respond_status(out, status::OVERLOADED, "in-flight high-water mark reached");
                    return;
                };
                let st = lane.submit_rows(&lanes.model, rows, k, payload, m, out);
                match st {
                    status::OK => m.ok.fetch_add(1, Ordering::Relaxed),
                    _ => m.errors.fetch_add(1, Ordering::Relaxed),
                };
                m.latency_us.record(start.elapsed().as_micros() as u64);
            }
            Request::MultiplySparse {
                model,
                nnz,
                payload,
            } => {
                let start = Instant::now();
                let lanes = match self.get_lanes(model) {
                    Ok(lanes) => lanes,
                    Err(e) => {
                        self.respond_serve_error(out, &e);
                        return;
                    }
                };
                let m = &lanes.metrics;
                m.requests.fetch_add(1, Ordering::Relaxed);
                let lane = &lanes.right;
                // Validate against the model before any queueing: decode
                // guarantees strictly increasing indices, so the last
                // pair carries the maximum and one probe bounds them
                // all; nnz ≤ cols then follows for free but is checked
                // first so an overclaimed count gets the clearer message.
                let cols = lanes.model.cols();
                if nnz > cols {
                    m.errors.fetch_add(1, Ordering::Relaxed);
                    respond_status(
                        out,
                        status::BAD_REQUEST,
                        "non-zero count exceeds model columns",
                    );
                    return;
                }
                if nnz > 0 {
                    let (max_idx, _) = crate::protocol::sparse_pair(payload, nnz - 1);
                    if max_idx as usize >= cols {
                        m.errors.fetch_add(1, Ordering::Relaxed);
                        respond_status(
                            out,
                            status::BAD_REQUEST,
                            "sparse index exceeds model columns",
                        );
                        return;
                    }
                }
                let Some(_guard) = self.try_admit() else {
                    m.overloaded.fetch_add(1, Ordering::Relaxed);
                    respond_status(out, status::OVERLOADED, "in-flight high-water mark reached");
                    return;
                };
                let st = lane.submit_sparse(&lanes.model, nnz, payload, m, out);
                match st {
                    status::OK => m.ok.fetch_add(1, Ordering::Relaxed),
                    _ => m.errors.fetch_add(1, Ordering::Relaxed),
                };
                m.latency_us.record(start.elapsed().as_micros() as u64);
            }
        }
    }
}

fn handle_connection(engine: Arc<Engine>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut inbuf = Vec::new();
    let mut out = Vec::new();
    loop {
        use std::io::Write;
        match read_frame(&mut stream, &mut inbuf) {
            Ok(Some(n)) => {
                engine.handle_frame(&inbuf[..n], &mut out);
                if stream.write_all(&out).is_err() {
                    break;
                }
            }
            Ok(None) | Err(_) => break,
        }
    }
}

/// The TCP front-end: an accept loop spawning one thread per
/// connection, each running [`Engine::handle_frame`] over reused frame
/// buffers.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
}

impl Server {
    /// Binds to `addr` (e.g. `("127.0.0.1", port)`; port 0 picks a free
    /// one).
    ///
    /// # Errors
    /// Fails on bind errors.
    pub fn bind(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    /// Fails if the socket is gone.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine behind the listener.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    fn run_until(self, stop: Arc<AtomicBool>) {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            if let Ok(stream) = conn {
                let engine = Arc::clone(&self.engine);
                std::thread::spawn(move || handle_connection(engine, stream));
            }
        }
    }

    /// Serves forever (the `gcm serve` foreground path).
    pub fn run(self) {
        self.run_until(Arc::new(AtomicBool::new(false)));
    }

    /// Serves on a background thread; the returned handle stops the
    /// accept loop on [`stop`](ServerHandle::stop) or drop.
    ///
    /// # Errors
    /// Fails if the bound address cannot be read back.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || self.run_until(flag));
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a background [`Server`]; stops it on drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Existing connections drain
    /// on their own (their threads exit at client EOF).
    pub fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept call.
            let _ = TcpStream::connect(self.addr);
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_info, encode_multiply, encode_ping, encode_stats, Client};
    use crate::registry::ModelStore;
    use crate::sharded::BuildOptions;
    use gcm_matrix::DenseMatrix;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gcm-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_dense(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + 2 * c) % 3 != 0 {
                    m.set(r, c, ((r % 5) as f64) - 0.5 * (c as f64));
                }
            }
        }
        m
    }

    fn engine_with_model(tag: &str, config: ServerConfig) -> (Engine, DenseMatrix, PathBuf) {
        let dir = tmp_dir(tag);
        let store = ModelStore::open(&dir).unwrap();
        let dense = sample_dense(18, 6);
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        store.save("m", &model).unwrap();
        let registry = Registry::new(store, config.batch_width);
        (Engine::new(registry, config), dense, dir)
    }

    fn body_of(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "frame length prefix");
        &frame[4..]
    }

    #[test]
    fn engine_answers_ping_info_stats_and_multiply() {
        let config = ServerConfig {
            batch_deadline_us: 0,
            ..ServerConfig::default()
        };
        let (engine, dense, dir) = engine_with_model("engine", config);
        let (mut req, mut out) = (Vec::new(), Vec::new());

        encode_ping(&mut req);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out), &[status::OK]);

        encode_info(&mut req, "m");
        engine.handle_frame(body_of(&req), &mut out);
        let body = body_of(&out);
        assert_eq!(body[0], status::OK);
        assert_eq!(u64::from_le_bytes(body[1..9].try_into().unwrap()), 18);
        assert_eq!(u64::from_le_bytes(body[9..17].try_into().unwrap()), 6);

        encode_info(&mut req, "missing");
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::UNKNOWN_MODEL);

        // Right multiply matches the dense reference bit-for-bit.
        let x = vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.25];
        encode_multiply(&mut req, "m", Direction::Right, 1, &x);
        engine.handle_frame(body_of(&req), &mut out);
        let body = body_of(&out);
        assert_eq!(body[0], status::OK);
        let got: Vec<f64> = body[1..]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut want = vec![0.0; 18];
        dense.right_multiply(&x, &mut want).unwrap();
        assert_eq!(got, want, "served product must be bit-exact");

        // Dimension mismatch and oversized k are rejected.
        encode_multiply(&mut req, "m", Direction::Right, 1, &x[..4]);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::BAD_REQUEST);
        let wide = vec![0.0; 6 * (config.batch_width + 1)];
        encode_multiply(
            &mut req,
            "m",
            Direction::Right,
            config.batch_width + 1,
            &wide,
        );
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::BAD_REQUEST);

        encode_stats(&mut req, "");
        engine.handle_frame(body_of(&req), &mut out);
        let body = body_of(&out);
        assert_eq!(body[0], status::OK);
        let text = std::str::from_utf8(&body[1..]).unwrap();
        // `requests` counts everything received (the two rejected
        // multiplies included), `ok` only the served one.
        assert!(text.contains("model=m requests=3 ok=1"), "{text}");
        assert!(text.contains("errors=2"), "{text}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_serves_row_subsets_and_validates_ranges() {
        use crate::protocol::encode_multiply_rows;
        let config = ServerConfig {
            batch_deadline_us: 0,
            ..ServerConfig::default()
        };
        let (engine, dense, dir) = engine_with_model("rows", config);
        let (mut req, mut out) = (Vec::new(), Vec::new());
        let x = vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.25];

        // A row slice matches the same rows of the full product.
        encode_multiply_rows(&mut req, "m", 5..11, 1, &x);
        engine.handle_frame(body_of(&req), &mut out);
        let body = body_of(&out);
        assert_eq!(body[0], status::OK);
        let got: Vec<f64> = body[1..]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut want = vec![0.0; 18];
        dense.right_multiply(&x, &mut want).unwrap();
        assert_eq!(got, want[5..11], "row subset must be bit-exact");

        // Out-of-range rows, oversized k, and mismatched payloads are
        // all rejected server-side before any queueing.
        encode_multiply_rows(&mut req, "m", 10..19, 1, &x);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::BAD_REQUEST, "rows past end");
        let wide = vec![0.0; 6 * (config.batch_width + 1)];
        encode_multiply_rows(&mut req, "m", 0..3, config.batch_width + 1, &wide);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::BAD_REQUEST, "k too wide");
        encode_multiply_rows(&mut req, "m", 0..3, 1, &x[..4]);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::BAD_REQUEST, "short payload");
        encode_multiply_rows(&mut req, "missing", 0..3, 1, &x);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out)[0], status::UNKNOWN_MODEL);

        // An empty range is valid and returns an empty result.
        encode_multiply_rows(&mut req, "m", 7..7, 1, &x);
        engine.handle_frame(body_of(&req), &mut out);
        assert_eq!(body_of(&out), &[status::OK]);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn admission_control_sheds_past_high_water_mark() {
        // max_inflight is clamped to >= 1, so exhaust it from a second
        // thread that parks inside the batch deadline window.
        let config = ServerConfig {
            batch_width: 8,
            batch_deadline_us: 200_000,
            max_inflight: 1,
        };
        let (engine, _dense, dir) = engine_with_model("admission", config);
        let engine = Arc::new(engine);
        let x = vec![1.0; 6];

        let slow = {
            let engine = Arc::clone(&engine);
            let x = x.clone();
            std::thread::spawn(move || {
                let (mut req, mut out) = (Vec::new(), Vec::new());
                encode_multiply(&mut req, "m", Direction::Right, 1, &x);
                engine.handle_frame(body_of(&req), &mut out);
                body_of(&out)[0]
            })
        };
        // Wait until the slow request holds the in-flight slot.
        while engine.inflight.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        let (mut req, mut out) = (Vec::new(), Vec::new());
        encode_multiply(&mut req, "m", Direction::Right, 1, &x);
        engine.handle_frame(body_of(&req), &mut out);
        let body = body_of(&out);
        assert_eq!(body[0], status::OVERLOADED, "second request must be shed");
        // The shed request joined no batch: the slow one completes OK
        // after its deadline (coalescing the two would also be OK —
        // but admission fired first).
        assert_eq!(slow.join().unwrap(), status::OK);
        let m = engine.metrics().get("m").unwrap();
        assert_eq!(m.overloaded.load(Ordering::Relaxed), 1);
        assert_eq!(m.ok.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_batch() {
        let config = ServerConfig {
            batch_width: 4,
            batch_deadline_us: 500_000,
            max_inflight: 64,
        };
        let (engine, dense, dir) = engine_with_model("coalesce", config);
        let engine = Arc::new(engine);
        // Prime the lanes so all four requests race on a warm path.
        let (mut req, mut out) = (Vec::new(), Vec::new());
        encode_info(&mut req, "m");
        engine.handle_frame(body_of(&req), &mut out);

        let barrier = Arc::new(std::sync::Barrier::new(4));
        let joins: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut x = vec![0.0; 6];
                    x[t % 6] = (t + 1) as f64;
                    let (mut req, mut out) = (Vec::new(), Vec::new());
                    encode_multiply(&mut req, "m", Direction::Right, 1, &x);
                    barrier.wait();
                    engine.handle_frame(body_of(&req), &mut out);
                    let body = body_of(&out).to_vec();
                    (x, body)
                })
            })
            .collect();
        for join in joins {
            let (x, body) = join.join().unwrap();
            assert_eq!(body[0], status::OK);
            let got: Vec<f64> = body[1..]
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let mut want = vec![0.0; 18];
            dense.right_multiply(&x, &mut want).unwrap();
            assert_eq!(got, want, "each member must get its own exact column");
        }
        // The batch width bound: 4 vectors over at most 4 kernel calls;
        // with the long deadline they overwhelmingly coalesce into one.
        let m = engine.metrics().get("m").unwrap();
        assert_eq!(m.vectors.load(Ordering::Relaxed), 4);
        assert!(m.batches.load(Ordering::Relaxed) <= 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn server_roundtrips_over_tcp() {
        let config = ServerConfig {
            batch_deadline_us: 0,
            ..ServerConfig::default()
        };
        let (engine, dense, dir) = engine_with_model("tcp", config);
        let server = Server::bind(Arc::new(engine), ("127.0.0.1", 0)).unwrap();
        let mut handle = server.spawn().unwrap();

        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        assert_eq!(client.info("m").unwrap(), (18, 6));
        let x = vec![0.5; 6];
        let mut y = Vec::new();
        client
            .multiply("m", Direction::Right, 1, &x, &mut y)
            .unwrap();
        let mut want = vec![0.0; 18];
        dense.right_multiply(&x, &mut want).unwrap();
        assert_eq!(y, want);
        let text = client.stats("m").unwrap();
        assert!(text.contains("model=m"), "{text}");
        drop(client);
        handle.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
