//! Serving observability: per-model request / batch-width / latency
//! histograms with a zero-allocation hot path.
//!
//! The recording side is a handful of relaxed atomic increments into
//! fixed log2-bucket arrays — no locks, no allocation — so it sits
//! directly on the serve loop without perturbing the zero-alloc
//! guarantee the execution layer carries. The reading side
//! ([`Metrics::render`], behind the protocol's `stats` verb and the
//! `gcm stats` subcommand) snapshots the counters and formats a text
//! report; it allocates freely, which is fine off the hot path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Number of log2 buckets: bucket `i` counts values `v` with
/// `bucket_of(v) == i`, i.e. `v == 0` lands in bucket 0 and otherwise
/// `i = floor(log2(v)) + 1`, capped at the last bucket.
pub const BUCKETS: usize = 40;

/// A log2-bucketed histogram of `u64` samples. Recording is one relaxed
/// atomic increment — allocation- and lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket `v` falls in.
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the value a percentile estimate
/// reports; an upper bound, so estimates err conservatively).
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not Copy; build the array element-wise.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Zero-allocation, lock-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (mean = `sum / count`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `0..=1`), from
    /// the bucket boundaries; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i);
            }
        }
        bucket_hi(BUCKETS - 1)
    }

    /// `(bucket upper bound, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_hi(i), c))
            })
            .collect()
    }
}

/// Counters of one served model. All fields are recorded with relaxed
/// atomics on the request path.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    /// Multiply requests that passed admission.
    pub requests: AtomicU64,
    /// Requests answered `OK`.
    pub ok: AtomicU64,
    /// Requests shed by admission control.
    pub overloaded: AtomicU64,
    /// Requests answered with any other error status.
    pub errors: AtomicU64,
    /// Kernel invocations (coalesced batches + direct panel calls).
    pub batches: AtomicU64,
    /// Vectors served across all kernel invocations (mean achieved
    /// batch width = `vectors / batches`).
    pub vectors: AtomicU64,
    /// Achieved batch width per kernel invocation.
    pub batch_width: Histogram,
    /// Request latency in microseconds (decode → response encoded).
    pub latency_us: Histogram,
}

impl ModelMetrics {
    /// Mean achieved batch width (0 when no batch has run).
    pub fn mean_width(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            return 0.0;
        }
        self.vectors.load(Ordering::Relaxed) as f64 / b as f64
    }
}

/// The server's metrics registry: one [`ModelMetrics`] per served model.
/// Lookup on the hot path is a read-locked `HashMap` probe by `&str` —
/// no allocation; entries are created once, when a model's serving lanes
/// are built.
#[derive(Debug)]
pub struct Metrics {
    models: RwLock<HashMap<String, Arc<ModelMetrics>>>,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            models: RwLock::new(HashMap::new()),
            started: Instant::now(),
        }
    }

    /// The metrics of `name`, if the model has been served.
    pub fn get(&self, name: &str) -> Option<Arc<ModelMetrics>> {
        self.models
            .read()
            .expect("metrics map poisoned")
            .get(name)
            .cloned()
    }

    /// The metrics of `name`, created on first use.
    pub fn get_or_create(&self, name: &str) -> Arc<ModelMetrics> {
        if let Some(m) = self.get(name) {
            return m;
        }
        let mut map = self.models.write().expect("metrics map poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(ModelMetrics::default())),
        )
    }

    /// Renders a text snapshot of every model's counters (or only
    /// `filter`'s, when non-empty) — the payload of the protocol's
    /// `stats` verb. Lines are `key=value` so shell pipelines (and the
    /// load generator) can scrape them.
    pub fn render(&self, filter: &str) -> String {
        use std::fmt::Write;
        let map = self.models.read().expect("metrics map poisoned");
        let mut names: Vec<&String> = map
            .keys()
            .filter(|n| filter.is_empty() || n.as_str() == filter)
            .collect();
        names.sort();
        let mut out = String::new();
        let _ = writeln!(out, "uptime_s={}", self.started.elapsed().as_secs());
        let _ = writeln!(out, "models={}", names.len());
        for name in names {
            let m = &map[name];
            let _ = writeln!(
                out,
                "model={name} requests={} ok={} overloaded={} errors={} batches={} vectors={} mean_width={:.2}",
                m.requests.load(Ordering::Relaxed),
                m.ok.load(Ordering::Relaxed),
                m.overloaded.load(Ordering::Relaxed),
                m.errors.load(Ordering::Relaxed),
                m.batches.load(Ordering::Relaxed),
                m.vectors.load(Ordering::Relaxed),
                m.mean_width(),
            );
            let _ = writeln!(
                out,
                "model={name} latency_us p50={} p99={} p999={} mean={:.1}",
                m.latency_us.quantile(0.50),
                m.latency_us.quantile(0.99),
                m.latency_us.quantile(0.999),
                if m.latency_us.count() == 0 {
                    0.0
                } else {
                    m.latency_us.sum() as f64 / m.latency_us.count() as f64
                },
            );
            for (hi, c) in m.batch_width.nonzero_buckets() {
                let _ = writeln!(out, "model={name} width_le={hi} count={c}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_exact_zero() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 38), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(1), 1);
        assert_eq!(bucket_hi(2), 3);
        assert_eq!(bucket_hi(3), 7);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // p50 falls in the bucket of 3 (values ≤ 3), p99/p999 in 1000's.
        assert_eq!(h.quantile(0.5), 3);
        assert!(h.quantile(0.99) >= 1000);
        assert!(h.quantile(0.999) >= 1000);
        assert!(h.quantile(0.0) >= 1);
        // Empty histogram reports zeros.
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_renders_scrapeable_lines() {
        let metrics = Metrics::new();
        let m = metrics.get_or_create("demo");
        assert!(Arc::ptr_eq(&m, &metrics.get_or_create("demo")));
        m.requests.fetch_add(10, Ordering::Relaxed);
        m.ok.fetch_add(9, Ordering::Relaxed);
        m.overloaded.fetch_add(1, Ordering::Relaxed);
        m.batches.fetch_add(2, Ordering::Relaxed);
        m.vectors.fetch_add(9, Ordering::Relaxed);
        m.batch_width.record(4);
        m.batch_width.record(5);
        m.latency_us.record(120);
        let text = metrics.render("");
        assert!(
            text.contains("model=demo requests=10 ok=9 overloaded=1"),
            "{text}"
        );
        assert!(text.contains("mean_width=4.50"), "{text}");
        assert!(text.contains("latency_us p50="), "{text}");
        // Filtering by an unknown model renders no model lines.
        assert!(!metrics.render("other").contains("model=demo"));
        assert_eq!(metrics.get("missing").map(|_| ()), None);
        assert_eq!(m.mean_width(), 4.5);
    }
}
