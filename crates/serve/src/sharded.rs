//! The sharded serving engine: one matrix, split row-wise across N
//! shards, multiplied on the persistent thread pool with per-shard
//! workspace reuse.
//!
//! Sharding composes with the backend's own structure: each shard is any
//! [`Model`] — uncompressed, grammar-compressed, or itself row-block
//! parallel. A batched right product hands every shard its disjoint
//! `rows_i × k` sub-panel of the output; a batched left product has each
//! shard fill a persistent partial `cols × k` panel, then reduces them.
//!
//! Dispatch uses [`rayon::broadcast_indexed`], the pool's allocation-free
//! parallel for-each, and every shard owns a [`Workspace`] (plus a
//! persistent partial buffer) behind a mutex. After
//! [`ShardedModel::prewarm`], a steady-state serving loop over
//! single-threaded shard backends (`csrv` / `compressed`) performs
//! **zero heap allocation** — from the *first* request on, the guarantee
//! `crates/serve/tests/zero_alloc_serve.rs` locks in with the tracking
//! allocator. (Shards that are themselves pool-parallel — `blocked` /
//! `parcsrv` with more than one block — still allocate small per-task
//! control structures when they fan out internally.)

use std::sync::{Mutex, OnceLock};

use gcm_core::Encoding;
use gcm_encodings::HeapSize;
use gcm_matrix::matvec::{check_left_batch, check_panels, check_right_batch};
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec, MatrixError, Workspace};
use gcm_pipeline::{
    BuildArtifacts, BuildConfig, EncodingChoice, GrammarChoice, GrammarStage, ReorderMode,
};
use gcm_reorder::ReorderAlgorithm;

use crate::model::{Backend, Model, ModelPlan};

/// How to build a [`ShardedModel`] from a matrix. Kept as the simple
/// front door; building runs through the staged `gcm-pipeline`
/// machinery (shards reorder/compress/encode concurrently on the
/// persistent pool), and callers who want stage timings, per-shard
/// stats, or [`EncodingChoice::Auto`] use [`gcm_pipeline::Pipeline`]
/// directly and wrap the artifacts with
/// [`ShardedModel::from_artifacts`].
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Representation of every shard.
    pub backend: Backend,
    /// Grammar encoding (compressed backends).
    pub encoding: Encoding,
    /// Grammar-stage policy (compressed backends). `None` keeps the
    /// legacy RePair build with no per-shard grammar metadata, so
    /// containers stay byte-identical to pre-grammar-stage builds.
    pub grammar: Option<GrammarChoice>,
    /// Number of row shards (clamped to `1..=rows`).
    pub shards: usize,
    /// Row blocks *inside* each shard (`blocked` / `parcsrv` backends).
    pub blocks: usize,
    /// Optional column reordering (§5) applied before compression —
    /// [`ReorderMode::Global`] (one whole-matrix permutation) or
    /// [`ReorderMode::PerShard`] (each shard computes its own, §5.3).
    /// The permutations are recorded in the container for provenance.
    pub reorder: Option<ReorderMode>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            backend: Backend::Compressed,
            encoding: Encoding::ReAns,
            grammar: None,
            shards: 1,
            blocks: 4,
            reorder: None,
        }
    }
}

impl BuildOptions {
    /// The pipeline configuration these options describe.
    pub fn to_build_config(&self) -> BuildConfig {
        BuildConfig {
            backend: self.backend,
            encoding: EncodingChoice::Fixed(self.encoding),
            grammar: self.grammar,
            shards: self.shards,
            blocks: self.blocks,
            reorder: self.reorder,
        }
    }
}

/// Serving-time options: how a loaded model is prewarmed.
///
/// Kept separate from [`BuildOptions`] because they describe the
/// *process*, not the artifact — the same container can be served
/// planned on a latency-critical replica and unplanned on a
/// memory-constrained one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeOptions {
    /// Compile [`ModelPlan`]s for every shard at prewarm (see
    /// [`gcm_core::plan`]). Opt-in: a plan costs `O(|C| + |R|)` words
    /// per shard on top of the encoded matrix —
    /// [`ShardedModel::plan_heap_bytes`] reports the price — and buys a
    /// branchless, division-free, decode-free multiply. Plans are
    /// compiled concurrently on the persistent pool.
    pub plans: bool,
    /// Compile the plans in **single precision**
    /// ([`gcm_core::KernelPlanF32`]): half the plan heap, twice the
    /// SIMD lanes per vector register, `f32` accumulation (outputs
    /// round-trip through `f64` panels at the interface). Only
    /// meaningful together with [`plans`](Self::plans).
    pub plan_f32: bool,
}

impl ServeOptions {
    /// Options with plan compilation enabled.
    pub fn planned() -> Self {
        Self {
            plans: true,
            plan_f32: false,
        }
    }

    /// Options with single-precision plan compilation enabled.
    pub fn planned_f32() -> Self {
        Self {
            plans: true,
            plan_f32: true,
        }
    }
}

/// One shard: its model, its reorder provenance (per-shard column
/// permutations are first-class — shards may disagree), and the serving
/// state the engine reuses across requests (workspace and
/// left-reduction partial buffer).
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) model: Model,
    pub(crate) row_offset: usize,
    /// Column permutation this shard was compressed with, if any.
    pub(crate) col_order: Option<Vec<u32>>,
    /// Algorithm that produced [`col_order`](Self::col_order), when
    /// known (build-time provenance; `GCMSERV1` v2 persists it).
    pub(crate) reorder: Option<ReorderAlgorithm>,
    /// Grammar stage that compressed this shard, when recorded
    /// (`GCMSERV1` v5 persists it; `None` on legacy builds).
    pub(crate) grammar: Option<GrammarStage>,
    /// Fingerprint of the shard's build-time input rows
    /// ([`gcm_pipeline::shard_fingerprint`]), when recorded — the
    /// handle incremental rebuilds match unchanged shards by.
    pub(crate) fingerprint: Option<u64>,
    /// Compiled execution plan, set once by a plan-enabled prewarm
    /// (`None` inside = backend has nothing to plan). Read-only after
    /// initialisation, so the serving hot path pays one atomic load.
    plan: OnceLock<Option<ModelPlan>>,
    ws: Mutex<Workspace>,
    partial: Mutex<Vec<f64>>,
}

impl Shard {
    /// The shard's compiled plan, when one has been built (the
    /// container writer persists these as the `GCMSERV1` v4 plan
    /// section).
    pub(crate) fn plan(&self) -> Option<&ModelPlan> {
        self.plan.get().and_then(Option::as_ref)
    }
}

/// A matrix split row-wise across shards, served from the persistent
/// thread pool. Build one with [`ShardedModel::from_dense`] /
/// [`from_csrv`](ShardedModel::from_csrv), or load one from a container
/// ([`ShardedModel::load`]).
#[derive(Debug)]
pub struct ShardedModel {
    shards: Vec<Shard>,
    rows: usize,
    cols: usize,
    /// Serialises concurrent multi-shard left multiplies: the
    /// fill-partials broadcast and the reduction that reads every
    /// shard's partial must be atomic per model, or two concurrent
    /// requests through one shared registry `Arc` would mix each
    /// other's partials.
    left_gate: Mutex<()>,
}

/// Shared raw base pointer for disjoint per-shard output slices.
struct SendPtr(*mut f64);
// SAFETY: only used to derive disjoint row-range slices per shard.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// The split begin/accumulate protocol both plan precisions expose
/// (see [`gcm_core::plan`]), so the single-shard row-parallel right
/// path below is written once.
trait RowSplitPlan: Sync {
    fn scratch_len(&self, k: usize) -> usize;
    fn begin_right_panel(
        &self,
        k: usize,
        x_panel: &[f64],
        buf: &mut [f64],
    ) -> Result<(), MatrixError>;
    fn accumulate_rows_panel(
        &self,
        rows: std::ops::Range<usize>,
        k: usize,
        buf: &[f64],
        y_chunk: &mut [f64],
    );
}

impl RowSplitPlan for gcm_core::KernelPlan {
    fn scratch_len(&self, k: usize) -> usize {
        gcm_core::KernelPlan::scratch_len(self, k)
    }

    fn begin_right_panel(
        &self,
        k: usize,
        x_panel: &[f64],
        buf: &mut [f64],
    ) -> Result<(), MatrixError> {
        gcm_core::KernelPlan::begin_right_panel(self, k, x_panel, buf)
    }

    fn accumulate_rows_panel(
        &self,
        rows: std::ops::Range<usize>,
        k: usize,
        buf: &[f64],
        y_chunk: &mut [f64],
    ) {
        gcm_core::KernelPlan::accumulate_rows_panel(self, rows, k, buf, y_chunk);
    }
}

impl RowSplitPlan for gcm_core::KernelPlanF32 {
    fn scratch_len(&self, k: usize) -> usize {
        gcm_core::KernelPlanF32::scratch_len(self, k)
    }

    fn begin_right_panel(
        &self,
        k: usize,
        x_panel: &[f64],
        buf: &mut [f64],
    ) -> Result<(), MatrixError> {
        gcm_core::KernelPlanF32::begin_right_panel(self, k, x_panel, buf)
    }

    fn accumulate_rows_panel(
        &self,
        rows: std::ops::Range<usize>,
        k: usize,
        buf: &[f64],
        y_chunk: &mut [f64],
    ) {
        gcm_core::KernelPlanF32::accumulate_rows_panel(self, rows, k, buf, y_chunk);
    }
}

/// Planned right product restricted to one shard-local row range: the
/// rule pass fills the scratch buffer once, then only the descriptors
/// of the requested rows accumulate (the plan's CSR `row_ptr` makes the
/// slice O(descriptors-touched)). Allocation-free once the workspace
/// holds a `scratch_len(k)` buffer — a planned prewarm warms exactly
/// that.
fn subset_right<P: RowSplitPlan>(
    plan: &P,
    rows: std::ops::Range<usize>,
    k: usize,
    x_panel: &[f64],
    y_chunk: &mut [f64],
    ws: &mut Workspace,
) -> Result<(), MatrixError> {
    let mut buf = ws.take(plan.scratch_len(k));
    let result = plan.begin_right_panel(k, x_panel, &mut buf);
    if result.is_ok() {
        plan.accumulate_rows_panel(rows, k, &buf, y_chunk);
    }
    ws.put(buf);
    result
}

/// Row-range parallel planned right product for a single compressed
/// shard: one rule pass fills the scratch buffer, then disjoint row
/// chunks of `C` accumulate concurrently via `broadcast_indexed` (the
/// same primitive the multi-shard path uses one level up, so sharding
/// and row ranges compose rather than compete).
fn row_parallel_right<P: RowSplitPlan>(
    plan: &P,
    rows: usize,
    chunks: usize,
    k: usize,
    x_panel: &[f64],
    y_panel: &mut [f64],
    ws: &mut Workspace,
) -> Result<(), MatrixError> {
    let mut buf = ws.take(plan.scratch_len(k));
    let result = plan.begin_right_panel(k, x_panel, &mut buf);
    if result.is_ok() {
        let base = SendPtr(y_panel.as_mut_ptr());
        let base = &base;
        let buf_ref = &buf;
        rayon::broadcast_indexed(chunks, &|i| {
            let lo = rows * i / chunks;
            let hi = rows * (i + 1) / chunks;
            // SAFETY: the `lo..hi` ranges partition `0..rows`
            // disjointly, so every task writes a non-overlapping
            // region of y_panel, which outlives the broadcast (it
            // blocks until completion).
            let y = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo * k), (hi - lo) * k) };
            plan.accumulate_rows_panel(lo..hi, k, buf_ref, y);
        });
    }
    // The warmed buffer goes back even on an error, or one Err would
    // shrink the zero-alloc buffer pool.
    ws.put(buf);
    result
}

impl ShardedModel {
    /// Builds from a dense matrix per `opts`.
    ///
    /// # Errors
    /// Fails if the matrix has more distinct values than the CSRV symbol
    /// alphabet can address.
    pub fn from_dense(dense: &DenseMatrix, opts: &BuildOptions) -> Result<Self, MatrixError> {
        Self::from_csrv(&CsrvMatrix::from_dense(dense)?, opts)
    }

    /// Builds from a CSRV matrix per `opts` through the staged
    /// `gcm-pipeline`: shards run reorder → RePair → encode concurrently
    /// on the persistent pool (thin wrapper over
    /// [`gcm_pipeline::global`]'s pipeline; outputs are bit-identical to
    /// a sequential build).
    ///
    /// # Errors
    /// Currently infallible (the signature leaves room for backends with
    /// fallible construction).
    pub fn from_csrv(csrv: &CsrvMatrix, opts: &BuildOptions) -> Result<Self, MatrixError> {
        Ok(Self::from_artifacts(
            gcm_pipeline::global().build(csrv, &opts.to_build_config()),
        ))
    }

    /// Wraps a pipeline build's [`BuildArtifacts`] as a ready-to-serve
    /// model, keeping every shard's column permutation and reorder
    /// provenance.
    ///
    /// # Panics
    /// Panics if a shard disagrees on the column count (pipeline
    /// artifacts are consistent by construction).
    pub fn from_artifacts(artifacts: BuildArtifacts) -> Self {
        let cols = artifacts.cols;
        Self::from_shards(
            artifacts
                .shards
                .into_iter()
                .map(|s| {
                    (
                        Model::from(s.artifact),
                        s.col_order,
                        s.reorder,
                        s.grammar,
                        s.fingerprint,
                    )
                })
                .collect(),
            cols,
        )
    }

    /// Assembles a sharded model from per-shard models that share one
    /// column order (row offsets are cumulative in order). Used by the
    /// bare `GCMMAT1`/`GCMMAT2` container compatibility path and tests.
    ///
    /// # Panics
    /// Panics if a shard disagrees on the column count.
    pub(crate) fn from_parts(models: Vec<Model>, cols: usize, col_order: Option<Vec<u32>>) -> Self {
        Self::from_shards(
            models
                .into_iter()
                .map(|m| (m, col_order.clone(), None, None, None))
                .collect(),
            cols,
        )
    }

    /// Assembles a sharded model from per-shard `(model, column order,
    /// reorder algorithm, grammar stage, input fingerprint)` tuples —
    /// the general constructor behind
    /// [`from_artifacts`](Self::from_artifacts) and the container
    /// loader, where every shard carries its own metadata.
    ///
    /// # Panics
    /// Panics if a shard disagrees on the column count.
    #[allow(clippy::type_complexity)]
    pub(crate) fn from_shards(
        parts: Vec<(
            Model,
            Option<Vec<u32>>,
            Option<ReorderAlgorithm>,
            Option<GrammarStage>,
            Option<u64>,
        )>,
        cols: usize,
    ) -> Self {
        let mut shards = Vec::with_capacity(parts.len());
        let mut rows = 0usize;
        for (model, col_order, reorder, grammar, fingerprint) in parts {
            assert_eq!(model.cols(), cols, "shard column mismatch");
            let model_rows = model.rows();
            shards.push(Shard {
                model,
                row_offset: rows,
                col_order,
                reorder,
                grammar,
                fingerprint,
                plan: OnceLock::new(),
                ws: Mutex::new(Workspace::new()),
                partial: Mutex::new(Vec::new()),
            });
            rows += model_rows;
        }
        Self {
            shards,
            rows,
            cols,
            left_gate: Mutex::new(()),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of row shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Row count of shard `i`.
    pub fn shard_rows(&self, i: usize) -> usize {
        self.shards[i].model.rows()
    }

    /// The model of shard `i` (read-only; `gcm inspect`'s per-shard
    /// table reads sizes and grammar statistics through it).
    pub fn shard_model(&self, i: usize) -> &Model {
        &self.shards[i].model
    }

    /// The shard models, in row order.
    pub(crate) fn shard_slice(&self) -> &[Shard] {
        &self.shards
    }

    /// The backend kind (uniform across shards).
    pub fn backend(&self) -> Backend {
        self.shards
            .first()
            .map_or(Backend::Csrv, |s| s.model.backend())
    }

    /// The grammar encoding, for compressed backends.
    pub fn encoding(&self) -> Option<Encoding> {
        self.shards.first().and_then(|s| s.model.encoding())
    }

    /// The **uniform** column-reorder permutation the model was
    /// compressed with — `Some` only when every shard shares one order
    /// (a global reorder, or a single shard). Per-shard-reordered
    /// models return `None` here; use
    /// [`shard_col_order`](Self::shard_col_order) for those.
    /// (Provenance metadata; CSRV pairs keep their original column
    /// indices, so serving needs no inverse permutation.)
    pub fn col_order(&self) -> Option<&[u32]> {
        let first = self.shards.first()?.col_order.as_deref()?;
        self.shards
            .iter()
            .all(|s| s.col_order.as_deref() == Some(first))
            .then_some(first)
    }

    /// The column permutation shard `i` was compressed with, if any
    /// (per-shard orders are first-class: shards may disagree).
    pub fn shard_col_order(&self, i: usize) -> Option<&[u32]> {
        self.shards[i].col_order.as_deref()
    }

    /// The reorder algorithm shard `i` was built with, when recorded
    /// (build provenance, persisted by `GCMSERV1` version 2).
    pub fn shard_reorder(&self, i: usize) -> Option<ReorderAlgorithm> {
        self.shards[i].reorder
    }

    /// The grammar stage shard `i` was compressed with, when recorded
    /// (build provenance, persisted by `GCMSERV1` version 5).
    pub fn shard_grammar(&self, i: usize) -> Option<GrammarStage> {
        self.shards[i].grammar
    }

    /// The build-time input fingerprint of shard `i`, when recorded
    /// ([`gcm_pipeline::shard_fingerprint`]; persisted by `GCMSERV1`
    /// version 5 for incremental rebuilds).
    pub fn shard_fingerprint(&self, i: usize) -> Option<u64> {
        self.shards[i].fingerprint
    }

    /// Total representation size across shards (container framing
    /// excluded).
    pub fn stored_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.model.stored_bytes()).sum()
    }

    /// Installs a deserialized plan on shard `i` (the `GCMSERV1` v4
    /// cast-on-load path). Returns `false` when the shard already
    /// carries a plan — first writer wins, matching the `OnceLock`
    /// semantics `prewarm_with` relies on; a later plan-enabled prewarm
    /// then validates budgets instead of recompiling.
    pub(crate) fn install_plan(&self, i: usize, plan: ModelPlan) -> bool {
        self.shards[i].plan.set(Some(plan)).is_ok()
    }

    /// Warms every shard's workspace and partial buffer for batch widths
    /// up to `k` and runs dummy passes through both kernels, so the first
    /// real request after a restart allocates nothing (and the worker
    /// pool is already spun up). Equivalent to
    /// [`prewarm_with`](Self::prewarm_with) under default
    /// [`ServeOptions`] (no plan compilation).
    pub fn prewarm(&self, k: usize) {
        self.prewarm_with(k, &ServeOptions::default());
    }

    /// [`prewarm`](Self::prewarm) with explicit [`ServeOptions`]. With
    /// `opts.plans` set, every shard's [`ModelPlan`] is compiled here —
    /// concurrently on the persistent pool, one shard per worker, the
    /// same `par_map` machinery the container loader decodes shards
    /// with — and all later requests dispatch through the planned
    /// kernels. Plan compilation is once-per-model: a second prewarm
    /// reuses the existing plans.
    pub fn prewarm_with(&self, k: usize, opts: &ServeOptions) {
        let k = k.max(1);
        // Force every pool worker through one job first, so one-time
        // lazy per-thread runtime allocations land here rather than in
        // whichever later request first wakes a cold worker.
        rayon::prewarm_workers();
        // Build plans and warm shard workspaces through the same pool
        // stage machinery the pipeline builds and loads with (shards
        // run concurrently; with one shard this runs inline).
        gcm_pipeline::par_map(self.shards.len(), |i| {
            let shard = &self.shards[i];
            let plan = if opts.plans {
                shard
                    .plan
                    .get_or_init(|| ModelPlan::compile_with(&shard.model, opts.plan_f32))
                    .as_ref()
            } else {
                // A plan built by an earlier prewarm keeps serving.
                shard.plan()
            };
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            let (count, max_len) = shard.model.workspace_budget(k);
            ws.warm(count, max_len);
            if let Some(plan) = plan {
                let (count, max_len) = shard.model.planned_workspace_budget(k, plan);
                ws.warm(count, max_len);
            }
            drop(ws);
            let mut partial = shard.partial.lock().expect("shard partial poisoned");
            if partial.capacity() < self.cols * k {
                let grow = self.cols * k - partial.len();
                partial.reserve(grow);
            }
        });
        for width in [k, 1] {
            let x = vec![0.0; self.cols * width];
            let mut y = vec![0.0; self.rows * width];
            self.right_multiply_panel(width, &x, &mut y)
                .expect("prewarm dimensions are consistent");
            let yv = vec![0.0; self.rows * width];
            let mut xo = vec![0.0; self.cols * width];
            self.left_multiply_panel(width, &yv, &mut xo)
                .expect("prewarm dimensions are consistent");
        }
        // One throwaway sparse pass so the sparse path's scratch (the
        // unplanned backends' dense staging vector in particular, which
        // the panel budgets above don't cover) lands in the shard
        // workspaces now rather than on the first live request.
        let x_nnz: Vec<(u32, f64)> = (0..self.cols.min(1)).map(|j| (j as u32, 0.0)).collect();
        let mut y = vec![0.0; self.rows];
        self.right_multiply_sparse(&x_nnz, &mut y)
            .expect("prewarm dimensions are consistent");
    }

    /// Whether any shard serves through a compiled plan.
    pub fn is_planned(&self) -> bool {
        self.shards.iter().any(|s| s.plan().is_some())
    }

    /// Whether any shard serves through a **single-precision** plan
    /// (compiled by a [`ServeOptions::planned_f32`] prewarm).
    pub fn is_planned_f32(&self) -> bool {
        self.shards
            .iter()
            .filter_map(Shard::plan)
            .any(ModelPlan::is_f32)
    }

    /// Heap bytes held by the compiled plans across all shards (0 until
    /// a plan-enabled prewarm) — the price of the planned kernels,
    /// reported so capacity planning can weigh it against the encoded
    /// model size.
    pub fn plan_heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(Shard::plan)
            .map(HeapSize::heap_bytes)
            .sum()
    }

    /// Batched right product `Y = M·X` over row-major `k`-wide panel
    /// slices: shards run concurrently on the persistent pool, each
    /// writing its disjoint rows of `y_panel`.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn right_multiply_panel(
        &self,
        k: usize,
        x_panel: &[f64],
        y_panel: &mut [f64],
    ) -> Result<(), MatrixError> {
        check_panels(self.rows, self.cols, k, x_panel.len(), y_panel.len())?;
        if k == 0 || self.rows == 0 {
            return Ok(());
        }
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            // A single-shard planned compressed model parallelises
            // *inside* the shard instead: the plan's CSR row index
            // makes disjoint row ranges of `C` independent once the
            // rule pass has filled the scratch buffer (either
            // precision; see `row_parallel_right`).
            let threads = rayon::current_num_threads();
            if threads > 1 && self.rows >= 2 * threads {
                match shard.plan() {
                    Some(ModelPlan::Compressed(plan)) => {
                        return row_parallel_right(
                            plan, self.rows, threads, k, x_panel, y_panel, &mut ws,
                        );
                    }
                    Some(ModelPlan::CompressedF32(plan)) => {
                        return row_parallel_right(
                            plan, self.rows, threads, k, x_panel, y_panel, &mut ws,
                        );
                    }
                    _ => {}
                }
            }
            if let Some(plan) = shard.plan() {
                return shard
                    .model
                    .right_multiply_panel_planned(plan, k, x_panel, y_panel, &mut ws);
            }
            return shard
                .model
                .right_multiply_panel_into(k, x_panel, y_panel, &mut ws);
        }
        let base = SendPtr(y_panel.as_mut_ptr());
        let base = &base;
        rayon::broadcast_indexed(self.shards.len(), &|i| {
            let shard = &self.shards[i];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            let len = shard.model.rows() * k;
            // SAFETY: shard row ranges partition `0..rows` disjointly,
            // so every task writes a non-overlapping region of y_panel,
            // which outlives the broadcast (it blocks until completion).
            let y =
                unsafe { std::slice::from_raw_parts_mut(base.0.add(shard.row_offset * k), len) };
            match shard.plan() {
                Some(plan) => shard
                    .model
                    .right_multiply_panel_planned(plan, k, x_panel, y, &mut ws),
                None => shard
                    .model
                    .right_multiply_panel_into(k, x_panel, y, &mut ws),
            }
            .expect("shard dimensions are consistent by construction");
        });
        Ok(())
    }

    /// Right product `y = M·x` from the non-zeroes of `x` alone:
    /// `x_nnz` holds `(column, value)` pairs with strictly increasing
    /// in-range indices (validated up front, like the wire layer's
    /// `multiply_sparse` verb). Planned shards take the
    /// activity-propagation sparse kernel — per-request cost scales
    /// with the slice of the grammar the non-zeroes reach instead of
    /// the whole plan — and unplanned shards scatter into a
    /// workspace-owned dense vector. Shards run concurrently on the
    /// persistent pool, each writing its disjoint rows of `y`; the
    /// sparse indices are original column positions even under column
    /// reordering (CSRV pairs keep their original indices), so no
    /// inverse permutation is applied.
    ///
    /// # Errors
    /// Fails on malformed `x_nnz` (out-of-range, unsorted, or
    /// duplicate indices; more pairs than columns) or a wrong `y`
    /// length.
    pub fn right_multiply_sparse(
        &self,
        x_nnz: &[(u32, f64)],
        y: &mut [f64],
    ) -> Result<(), MatrixError> {
        gcm_core::validate_sparse_x(self.cols, x_nnz)?;
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        if self.rows == 0 {
            return Ok(());
        }
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            return match shard.plan() {
                Some(plan) => shard
                    .model
                    .right_multiply_sparse_planned(plan, x_nnz, y, &mut ws),
                None => shard.model.right_multiply_sparse_into(x_nnz, y, &mut ws),
            };
        }
        let base = SendPtr(y.as_mut_ptr());
        let base = &base;
        rayon::broadcast_indexed(self.shards.len(), &|i| {
            let shard = &self.shards[i];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            let len = shard.model.rows();
            // SAFETY: shard row ranges partition `0..rows` disjointly,
            // so every task writes a non-overlapping region of y, which
            // outlives the broadcast (it blocks until completion).
            let y = unsafe { std::slice::from_raw_parts_mut(base.0.add(shard.row_offset), len) };
            match shard.plan() {
                Some(plan) => shard
                    .model
                    .right_multiply_sparse_planned(plan, x_nnz, y, &mut ws),
                None => shard.model.right_multiply_sparse_into(x_nnz, y, &mut ws),
            }
            .expect("shard dimensions are consistent by construction");
        });
        Ok(())
    }

    /// Right product restricted to a contiguous row range:
    /// `y_chunk = (M·X)[a..b]` over row-major `k`-wide panels
    /// (`x_panel` is `cols × k`, `y_chunk` is `(b-a) × k`). Only the
    /// shards intersecting the range run; a planned compressed shard
    /// serves its slice through the plan's CSR row index — one rule
    /// pass plus O(descriptors-touched) accumulation, so asking for 10
    /// rows of a huge model never walks the other rows — and
    /// allocation-free after a plan-enabled prewarm. Unplanned or
    /// block-parallel shards fall back to the full shard product into
    /// workspace memory and copy the requested slice out.
    ///
    /// # Errors
    /// Fails if the range exceeds the row count or either panel length
    /// is inconsistent with `k`.
    pub fn right_multiply_rows(
        &self,
        rows: std::ops::Range<usize>,
        k: usize,
        x_panel: &[f64],
        y_chunk: &mut [f64],
    ) -> Result<(), MatrixError> {
        if rows.start > rows.end || rows.end > self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: rows.end.max(rows.start),
                what: "row range",
            });
        }
        check_panels(rows.len(), self.cols, k, x_panel.len(), y_chunk.len())?;
        if k == 0 || rows.is_empty() {
            return Ok(());
        }
        for shard in &self.shards {
            let lo = shard.row_offset;
            let hi = lo + shard.model.rows();
            let begin = rows.start.max(lo);
            let end = rows.end.min(hi);
            if begin >= end {
                continue;
            }
            let local = (begin - lo)..(end - lo);
            let out = &mut y_chunk[(begin - rows.start) * k..(end - rows.start) * k];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            match shard.plan() {
                Some(ModelPlan::Compressed(plan)) => {
                    subset_right(plan, local, k, x_panel, out, &mut ws)?;
                }
                Some(ModelPlan::CompressedF32(plan)) => {
                    subset_right(plan, local, k, x_panel, out, &mut ws)?;
                }
                plan => {
                    // No row index to slice: produce the whole shard
                    // into workspace memory, copy the range out.
                    let mut y_full = ws.take(shard.model.rows() * k);
                    let result = match plan {
                        Some(p) => shard.model.right_multiply_panel_planned(
                            p,
                            k,
                            x_panel,
                            &mut y_full,
                            &mut ws,
                        ),
                        None => {
                            shard
                                .model
                                .right_multiply_panel_into(k, x_panel, &mut y_full, &mut ws)
                        }
                    };
                    if result.is_ok() {
                        out.copy_from_slice(&y_full[local.start * k..local.end * k]);
                    }
                    ws.put(y_full);
                    result?;
                }
            }
        }
        Ok(())
    }

    /// Batched left product `X = Mᵗ·Y` over row-major panel slices:
    /// shards fill their persistent partial panels concurrently, then the
    /// partials are reduced into `x_panel` (§4.1's reduction, lifted to
    /// the shard level).
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn left_multiply_panel(
        &self,
        k: usize,
        y_panel: &[f64],
        x_panel: &mut [f64],
    ) -> Result<(), MatrixError> {
        check_panels(self.rows, self.cols, k, x_panel.len(), y_panel.len())?;
        if k == 0 {
            return Ok(());
        }
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            return match shard.plan() {
                Some(plan) => shard
                    .model
                    .left_multiply_panel_planned(plan, k, y_panel, x_panel, &mut ws),
                None => shard
                    .model
                    .left_multiply_panel_into(k, y_panel, x_panel, &mut ws),
            };
        }
        // Hold the gate across fill + reduce: see `left_gate`.
        let _gate = self.left_gate.lock().expect("left gate poisoned");
        rayon::broadcast_indexed(self.shards.len(), &|i| {
            let shard = &self.shards[i];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            let mut partial = shard.partial.lock().expect("shard partial poisoned");
            partial.resize(self.cols * k, 0.0);
            let off = shard.row_offset * k;
            let y_slice = &y_panel[off..off + shard.model.rows() * k];
            match shard.plan() {
                Some(plan) => {
                    shard
                        .model
                        .left_multiply_panel_planned(plan, k, y_slice, &mut partial, &mut ws)
                }
                None => shard
                    .model
                    .left_multiply_panel_into(k, y_slice, &mut partial, &mut ws),
            }
            .expect("shard dimensions are consistent by construction");
        });
        x_panel.fill(0.0);
        for shard in &self.shards {
            let partial = shard.partial.lock().expect("shard partial poisoned");
            for (acc, &p) in x_panel.iter_mut().zip(partial.iter()) {
                *acc += p;
            }
        }
        Ok(())
    }

    /// Batched right product into a preallocated dense panel.
    ///
    /// # Errors
    /// Fails on shape mismatches.
    pub fn right_multiply_batch(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        check_right_batch(self.rows, self.cols, b, out)?;
        self.right_multiply_panel(b.cols(), b.as_slice(), out.as_mut_slice())
    }

    /// Batched left product into a preallocated dense panel.
    ///
    /// # Errors
    /// Fails on shape mismatches.
    pub fn left_multiply_batch(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        check_left_batch(self.rows, self.cols, b, out)?;
        self.left_multiply_panel(b.cols(), b.as_slice(), out.as_mut_slice())
    }
}

impl MatVec for ShardedModel {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    /// The workspace argument is unused: shards own their serving state.
    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.right_multiply_panel(1, x, y)
    }

    /// The workspace argument is unused: shards own their serving state.
    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.left_multiply_panel(1, y, x)
    }

    fn right_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.right_multiply_batch(b, out)
    }

    fn left_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.left_multiply_batch(b, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * 5 + c * 2) % 3 != 0 {
                    m.set(r, c, (((r + c) % 7) + 1) as f64 * 0.25);
                }
            }
        }
        m
    }

    #[test]
    fn sharded_matches_dense_for_every_backend_and_shard_count() {
        let dense = sample(83, 9);
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.5 - 2.0).collect();
        let yv: Vec<f64> = (0..83).map(|i| ((i % 6) as f64) - 2.5).collect();
        let mut y_ref = vec![0.0; 83];
        let mut x_ref = vec![0.0; 9];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        dense.left_multiply(&yv, &mut x_ref).unwrap();
        for backend in Backend::ALL {
            for shards in [1usize, 2, 3, 7] {
                let opts = BuildOptions {
                    backend,
                    shards,
                    blocks: 2,
                    ..BuildOptions::default()
                };
                let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                assert_eq!(model.num_shards(), shards);
                assert_eq!(model.rows(), 83);
                let mut y = vec![0.0; 83];
                model.right_multiply_panel(1, &x, &mut y).unwrap();
                for (a, b) in y.iter().zip(&y_ref) {
                    assert!((a - b).abs() < 1e-9, "{} s={shards} right", backend.name());
                }
                let mut xo = vec![0.0; 9];
                model.left_multiply_panel(1, &yv, &mut xo).unwrap();
                for (a, b) in xo.iter().zip(&x_ref) {
                    assert!((a - b).abs() < 1e-9, "{} s={shards} left", backend.name());
                }
            }
        }
    }

    #[test]
    fn sharded_batch_equals_independent_columns() {
        let dense = sample(40, 7);
        let opts = BuildOptions {
            shards: 3,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        model.prewarm(4);
        let k = 4;
        let mut b = DenseMatrix::zeros(7, k);
        for i in 0..7 {
            for j in 0..k {
                b.set(i, j, (i * k + j) as f64 * 0.25 - 1.5);
            }
        }
        let mut out = DenseMatrix::zeros(40, k);
        model.right_multiply_batch(&b, &mut out).unwrap();
        for j in 0..k {
            let x: Vec<f64> = (0..7).map(|i| b.get(i, j)).collect();
            let mut y = vec![0.0; 40];
            model.right_multiply_panel(1, &x, &mut y).unwrap();
            for (i, &yi) in y.iter().enumerate() {
                assert!((out.get(i, j) - yi).abs() < 1e-9, "col {j}");
            }
        }

        let mut by = DenseMatrix::zeros(40, k);
        for i in 0..40 {
            for j in 0..k {
                by.set(i, j, ((i + 3 * j) % 5) as f64 - 2.0);
            }
        }
        let mut outl = DenseMatrix::zeros(7, k);
        model.left_multiply_batch(&by, &mut outl).unwrap();
        for j in 0..k {
            let y: Vec<f64> = (0..40).map(|i| by.get(i, j)).collect();
            let mut xo = vec![0.0; 7];
            model.left_multiply_panel(1, &y, &mut xo).unwrap();
            for (i, &xi) in xo.iter().enumerate() {
                assert!((outl.get(i, j) - xi).abs() < 1e-9, "col {j}");
            }
        }
    }

    #[test]
    fn reorder_is_recorded_and_preserves_products() {
        let dense = sample(24, 8);
        let opts = BuildOptions {
            shards: 2,
            reorder: Some(ReorderMode::Global(ReorderAlgorithm::PathCover)),
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        let order = model.col_order().expect("order recorded");
        let mut seen = [false; 8];
        for &c in order {
            assert!(!seen[c as usize]);
            seen[c as usize] = true;
        }
        assert_eq!(model.shard_reorder(0), Some(ReorderAlgorithm::PathCover));
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let mut y_ref = vec![0.0; 24];
        let mut y = vec![0.0; 24];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        model.right_multiply_panel(1, &x, &mut y).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn per_shard_reorder_gives_each_shard_its_own_permutation() {
        // Rows 0..12 correlate columns (0,4); rows 12..24 correlate
        // (1,5): a per-shard reorder should be free to disagree.
        let mut dense = DenseMatrix::zeros(24, 8);
        for r in 0..24 {
            let v = ((r * 5 % 7) + 1) as f64;
            let w = ((r * 3 % 9) + 30) as f64;
            if r < 12 {
                dense.set(r, 0, v);
                dense.set(r, 4, v);
                dense.set(r, 2, w);
            } else {
                dense.set(r, 1, v);
                dense.set(r, 5, v);
                dense.set(r, 3, w);
            }
        }
        let opts = BuildOptions {
            shards: 2,
            reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        assert_eq!(model.num_shards(), 2);
        for i in 0..2 {
            let order = model.shard_col_order(i).expect("per-shard order");
            let mut seen = [false; 8];
            for &c in order {
                assert!(!seen[c as usize]);
                seen[c as usize] = true;
            }
            assert_eq!(model.shard_reorder(i), Some(ReorderAlgorithm::PathCover));
        }
        // Products still match the oracle regardless of the orders.
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 2.0).collect();
        let mut y_ref = vec![0.0; 24];
        let mut y = vec![0.0; 24];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        model.right_multiply_panel(1, &x, &mut y).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn planned_serving_matches_streaming_for_every_backend() {
        let dense = sample(83, 9);
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.5 - 2.0).collect();
        let yv: Vec<f64> = (0..83).map(|i| ((i % 6) as f64) - 2.5).collect();
        let k = 4usize;
        let x_panel: Vec<f64> = (0..9 * k).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
        let y_in: Vec<f64> = (0..83 * k).map(|i| ((i * 3) % 5) as f64 - 2.0).collect();
        for backend in Backend::ALL {
            for shards in [1usize, 3] {
                let opts = BuildOptions {
                    backend,
                    shards,
                    blocks: 2,
                    ..BuildOptions::default()
                };
                let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                // Streaming products first…
                let mut y_stream = vec![0.0; 83];
                let mut x_stream = vec![0.0; 9];
                let mut yp_stream = vec![0.0; 83 * k];
                let mut xp_stream = vec![0.0; 9 * k];
                model.right_multiply_panel(1, &x, &mut y_stream).unwrap();
                model.left_multiply_panel(1, &yv, &mut x_stream).unwrap();
                model
                    .right_multiply_panel(k, &x_panel, &mut yp_stream)
                    .unwrap();
                model.left_multiply_panel(k, &y_in, &mut xp_stream).unwrap();
                // …then flip the same model to planned dispatch.
                model.prewarm_with(k, &ServeOptions::planned());
                let grammar = matches!(backend, Backend::Compressed | Backend::Blocked);
                assert_eq!(model.is_planned(), grammar, "{}", backend.name());
                assert_eq!(model.plan_heap_bytes() > 0, grammar, "{}", backend.name());
                let mut y_plan = vec![0.0; 83];
                let mut x_plan = vec![0.0; 9];
                let mut yp_plan = vec![0.0; 83 * k];
                let mut xp_plan = vec![0.0; 9 * k];
                model.right_multiply_panel(1, &x, &mut y_plan).unwrap();
                model.left_multiply_panel(1, &yv, &mut x_plan).unwrap();
                model
                    .right_multiply_panel(k, &x_panel, &mut yp_plan)
                    .unwrap();
                model.left_multiply_panel(k, &y_in, &mut xp_plan).unwrap();
                // Planned and streaming kernels are bit-exact.
                assert_eq!(y_stream, y_plan, "{} s={shards} right", backend.name());
                assert_eq!(x_stream, x_plan, "{} s={shards} left", backend.name());
                assert_eq!(yp_stream, yp_plan, "{} s={shards} right k", backend.name());
                assert_eq!(xp_stream, xp_plan, "{} s={shards} left k", backend.name());
            }
        }
    }

    #[test]
    fn f32_planned_serving_tracks_streaming_for_every_backend() {
        let dense = sample(83, 9);
        let k = 4usize;
        let x_panel: Vec<f64> = (0..9 * k).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
        let y_in: Vec<f64> = (0..83 * k).map(|i| ((i * 3) % 5) as f64 - 2.0).collect();
        for backend in Backend::ALL {
            for shards in [1usize, 3] {
                let opts = BuildOptions {
                    backend,
                    shards,
                    blocks: 2,
                    ..BuildOptions::default()
                };
                let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                let mut yp_stream = vec![0.0; 83 * k];
                let mut xp_stream = vec![0.0; 9 * k];
                model
                    .right_multiply_panel(k, &x_panel, &mut yp_stream)
                    .unwrap();
                model.left_multiply_panel(k, &y_in, &mut xp_stream).unwrap();
                model.prewarm_with(k, &ServeOptions::planned_f32());
                let grammar = matches!(backend, Backend::Compressed | Backend::Blocked);
                assert_eq!(model.is_planned(), grammar, "{}", backend.name());
                assert_eq!(model.is_planned_f32(), grammar, "{}", backend.name());
                let mut yp_plan = vec![0.0; 83 * k];
                let mut xp_plan = vec![0.0; 9 * k];
                model
                    .right_multiply_panel(k, &x_panel, &mut yp_plan)
                    .unwrap();
                model.left_multiply_panel(k, &y_in, &mut xp_plan).unwrap();
                // f32 accumulation: match within single-precision slack.
                for (a, b) in yp_plan.iter().zip(&yp_stream) {
                    assert!(
                        (a - b).abs() < 1e-3,
                        "{} s={shards} right k",
                        backend.name()
                    );
                }
                for (a, b) in xp_plan.iter().zip(&xp_stream) {
                    assert!((a - b).abs() < 1e-3, "{} s={shards} left k", backend.name());
                }
            }
        }
    }

    #[test]
    fn plan_prewarm_is_idempotent_and_sticky() {
        let dense = sample(30, 6);
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(!model.is_planned());
        assert_eq!(model.plan_heap_bytes(), 0);
        model.prewarm_with(2, &ServeOptions::planned());
        let bytes = model.plan_heap_bytes();
        assert!(bytes > 0);
        // A later default prewarm neither drops nor rebuilds the plans.
        model.prewarm(2);
        assert!(model.is_planned());
        assert_eq!(model.plan_heap_bytes(), bytes);
        let mut y = vec![0.0; 30];
        let mut y_ref = vec![0.0; 30];
        model.right_multiply_panel(1, &[1.0; 6], &mut y).unwrap();
        dense.right_multiply(&[1.0; 6], &mut y_ref).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn more_shards_than_rows_clamps() {
        let dense = sample(3, 4);
        let opts = BuildOptions {
            shards: 9,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        assert_eq!(model.num_shards(), 3);
        let mut y = vec![0.0; 3];
        model.right_multiply_panel(1, &[1.0; 4], &mut y).unwrap();
        let mut y_ref = vec![0.0; 3];
        dense.right_multiply(&[1.0; 4], &mut y_ref).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dimension_checks() {
        let dense = sample(10, 4);
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let mut y = vec![0.0; 10];
        assert!(model.right_multiply_panel(1, &[0.0; 3], &mut y).is_err());
        let mut x = vec![0.0; 4];
        assert!(model.left_multiply_panel(1, &[0.0; 9], &mut x).is_err());
    }

    #[test]
    fn empty_matrix_serves_zeroes() {
        let dense = DenseMatrix::zeros(6, 3);
        for backend in Backend::ALL {
            let model = ShardedModel::from_dense(
                &dense,
                &BuildOptions {
                    backend,
                    shards: 2,
                    ..BuildOptions::default()
                },
            )
            .unwrap();
            let mut y = vec![1.0; 6];
            model.right_multiply_panel(1, &[1.0; 3], &mut y).unwrap();
            assert_eq!(y, vec![0.0; 6], "{}", backend.name());
        }
    }
}
