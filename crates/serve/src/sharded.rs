//! The sharded serving engine: one matrix, split row-wise across N
//! shards, multiplied on the persistent thread pool with per-shard
//! workspace reuse.
//!
//! Sharding composes with the backend's own structure: each shard is any
//! [`Model`] — uncompressed, grammar-compressed, or itself row-block
//! parallel. A batched right product hands every shard its disjoint
//! `rows_i × k` sub-panel of the output; a batched left product has each
//! shard fill a persistent partial `cols × k` panel, then reduces them.
//!
//! Dispatch uses [`rayon::broadcast_indexed`], the pool's allocation-free
//! parallel for-each, and every shard owns a [`Workspace`] (plus a
//! persistent partial buffer) behind a mutex. After
//! [`ShardedModel::prewarm`], a steady-state serving loop over
//! single-threaded shard backends (`csrv` / `compressed`) performs
//! **zero heap allocation** — from the *first* request on, the guarantee
//! `crates/serve/tests/zero_alloc_serve.rs` locks in with the tracking
//! allocator. (Shards that are themselves pool-parallel — `blocked` /
//! `parcsrv` with more than one block — still allocate small per-task
//! control structures when they fan out internally.)

use std::sync::Mutex;

use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_matrix::matvec::{check_left_batch, check_panels, check_right_batch};
use gcm_matrix::{
    CsrvMatrix, DenseMatrix, MatVec, MatrixError, ParallelCsrv, RowBlocks, Workspace,
};
use gcm_reorder::{reorder_columns, CsmConfig, ReorderAlgorithm};

use crate::model::{Backend, Model};

/// How to build a [`ShardedModel`] from a matrix.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Representation of every shard.
    pub backend: Backend,
    /// Grammar encoding (compressed backends).
    pub encoding: Encoding,
    /// Number of row shards (clamped to `1..=rows`).
    pub shards: usize,
    /// Row blocks *inside* each shard (`blocked` / `parcsrv` backends).
    pub blocks: usize,
    /// Optional column reordering (§5) applied before compression; the
    /// permutation is recorded in the container for provenance.
    pub reorder: Option<ReorderAlgorithm>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            backend: Backend::Compressed,
            encoding: Encoding::ReAns,
            shards: 1,
            blocks: 4,
            reorder: None,
        }
    }
}

/// One shard: its model plus the serving state the engine reuses across
/// requests (workspace and left-reduction partial buffer).
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) model: Model,
    pub(crate) row_offset: usize,
    ws: Mutex<Workspace>,
    partial: Mutex<Vec<f64>>,
}

/// A matrix split row-wise across shards, served from the persistent
/// thread pool. Build one with [`ShardedModel::from_dense`] /
/// [`from_csrv`](ShardedModel::from_csrv), or load one from a container
/// ([`ShardedModel::load`]).
#[derive(Debug)]
pub struct ShardedModel {
    shards: Vec<Shard>,
    rows: usize,
    cols: usize,
    col_order: Option<Vec<u32>>,
    /// Serialises concurrent multi-shard left multiplies: the
    /// fill-partials broadcast and the reduction that reads every
    /// shard's partial must be atomic per model, or two concurrent
    /// requests through one shared registry `Arc` would mix each
    /// other's partials.
    left_gate: Mutex<()>,
}

/// Shared raw base pointer for disjoint per-shard output slices.
struct SendPtr(*mut f64);
// SAFETY: only used to derive disjoint row-range slices per shard.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl ShardedModel {
    /// Builds from a dense matrix per `opts`.
    ///
    /// # Errors
    /// Fails if the matrix has more distinct values than the CSRV symbol
    /// alphabet can address.
    pub fn from_dense(dense: &DenseMatrix, opts: &BuildOptions) -> Result<Self, MatrixError> {
        Self::from_csrv(&CsrvMatrix::from_dense(dense)?, opts)
    }

    /// Builds from a CSRV matrix per `opts`, applying the column
    /// reordering first when requested.
    ///
    /// # Errors
    /// Currently infallible (the signature leaves room for backends with
    /// fallible construction).
    pub fn from_csrv(csrv: &CsrvMatrix, opts: &BuildOptions) -> Result<Self, MatrixError> {
        let (csrv, col_order) = match opts.reorder {
            Some(algo) => {
                let order = reorder_columns(csrv, algo, CsmConfig::exact(), 8);
                let reordered = csrv.with_column_order(&order);
                (reordered, Some(order.iter().map(|&c| c as u32).collect()))
            }
            None => (csrv.clone(), None),
        };
        let parts = RowBlocks::split(&csrv, opts.shards.max(1));
        let models = parts
            .blocks()
            .iter()
            .map(|block| match opts.backend {
                Backend::Csrv => Model::Csrv(block.clone()),
                Backend::ParCsrv => Model::ParCsrv(ParallelCsrv::split(block, opts.blocks.max(1))),
                Backend::Compressed => {
                    Model::Compressed(CompressedMatrix::compress(block, opts.encoding))
                }
                Backend::Blocked => Model::Blocked(BlockedMatrix::compress(
                    block,
                    opts.encoding,
                    opts.blocks.max(1),
                )),
            })
            .collect();
        Ok(Self::from_parts(models, csrv.cols(), col_order))
    }

    /// Assembles a sharded model from per-shard models (row offsets are
    /// cumulative in order). Used by the container loader.
    ///
    /// # Panics
    /// Panics if a shard disagrees on the column count.
    pub(crate) fn from_parts(models: Vec<Model>, cols: usize, col_order: Option<Vec<u32>>) -> Self {
        let mut shards = Vec::with_capacity(models.len());
        let mut rows = 0usize;
        for model in models {
            assert_eq!(model.cols(), cols, "shard column mismatch");
            let model_rows = model.rows();
            shards.push(Shard {
                model,
                row_offset: rows,
                ws: Mutex::new(Workspace::new()),
                partial: Mutex::new(Vec::new()),
            });
            rows += model_rows;
        }
        Self {
            shards,
            rows,
            cols,
            col_order,
            left_gate: Mutex::new(()),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of row shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Row count of shard `i`.
    pub fn shard_rows(&self, i: usize) -> usize {
        self.shards[i].model.rows()
    }

    /// The shard models, in row order.
    pub(crate) fn shard_slice(&self) -> &[Shard] {
        &self.shards
    }

    /// The backend kind (uniform across shards).
    pub fn backend(&self) -> Backend {
        self.shards
            .first()
            .map_or(Backend::Csrv, |s| s.model.backend())
    }

    /// The grammar encoding, for compressed backends.
    pub fn encoding(&self) -> Option<Encoding> {
        self.shards.first().and_then(|s| s.model.encoding())
    }

    /// The column-reorder permutation the model was compressed with, if
    /// any (provenance metadata; CSRV pairs keep their original column
    /// indices, so serving needs no inverse permutation).
    pub fn col_order(&self) -> Option<&[u32]> {
        self.col_order.as_deref()
    }

    /// Total representation size across shards (container framing
    /// excluded).
    pub fn stored_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.model.stored_bytes()).sum()
    }

    /// Warms every shard's workspace and partial buffer for batch widths
    /// up to `k` and runs dummy passes through both kernels, so the first
    /// real request after a restart allocates nothing (and the worker
    /// pool is already spun up).
    pub fn prewarm(&self, k: usize) {
        let k = k.max(1);
        for shard in &self.shards {
            let (count, max_len) = shard.model.workspace_budget(k);
            shard
                .ws
                .lock()
                .expect("shard workspace poisoned")
                .warm(count, max_len);
            let mut partial = shard.partial.lock().expect("shard partial poisoned");
            if partial.capacity() < self.cols * k {
                let grow = self.cols * k - partial.len();
                partial.reserve(grow);
            }
        }
        for width in [k, 1] {
            let x = vec![0.0; self.cols * width];
            let mut y = vec![0.0; self.rows * width];
            self.right_multiply_panel(width, &x, &mut y)
                .expect("prewarm dimensions are consistent");
            let yv = vec![0.0; self.rows * width];
            let mut xo = vec![0.0; self.cols * width];
            self.left_multiply_panel(width, &yv, &mut xo)
                .expect("prewarm dimensions are consistent");
        }
    }

    /// Batched right product `Y = M·X` over row-major `k`-wide panel
    /// slices: shards run concurrently on the persistent pool, each
    /// writing its disjoint rows of `y_panel`.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn right_multiply_panel(
        &self,
        k: usize,
        x_panel: &[f64],
        y_panel: &mut [f64],
    ) -> Result<(), MatrixError> {
        check_panels(self.rows, self.cols, k, x_panel.len(), y_panel.len())?;
        if k == 0 || self.rows == 0 {
            return Ok(());
        }
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            return shard
                .model
                .right_multiply_panel_into(k, x_panel, y_panel, &mut ws);
        }
        let base = SendPtr(y_panel.as_mut_ptr());
        let base = &base;
        rayon::broadcast_indexed(self.shards.len(), &|i| {
            let shard = &self.shards[i];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            let len = shard.model.rows() * k;
            // SAFETY: shard row ranges partition `0..rows` disjointly,
            // so every task writes a non-overlapping region of y_panel,
            // which outlives the broadcast (it blocks until completion).
            let y =
                unsafe { std::slice::from_raw_parts_mut(base.0.add(shard.row_offset * k), len) };
            shard
                .model
                .right_multiply_panel_into(k, x_panel, y, &mut ws)
                .expect("shard dimensions are consistent by construction");
        });
        Ok(())
    }

    /// Batched left product `X = Mᵗ·Y` over row-major panel slices:
    /// shards fill their persistent partial panels concurrently, then the
    /// partials are reduced into `x_panel` (§4.1's reduction, lifted to
    /// the shard level).
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn left_multiply_panel(
        &self,
        k: usize,
        y_panel: &[f64],
        x_panel: &mut [f64],
    ) -> Result<(), MatrixError> {
        check_panels(self.rows, self.cols, k, x_panel.len(), y_panel.len())?;
        if k == 0 {
            return Ok(());
        }
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            return shard
                .model
                .left_multiply_panel_into(k, y_panel, x_panel, &mut ws);
        }
        // Hold the gate across fill + reduce: see `left_gate`.
        let _gate = self.left_gate.lock().expect("left gate poisoned");
        rayon::broadcast_indexed(self.shards.len(), &|i| {
            let shard = &self.shards[i];
            let mut ws = shard.ws.lock().expect("shard workspace poisoned");
            let mut partial = shard.partial.lock().expect("shard partial poisoned");
            partial.resize(self.cols * k, 0.0);
            let off = shard.row_offset * k;
            let y_slice = &y_panel[off..off + shard.model.rows() * k];
            shard
                .model
                .left_multiply_panel_into(k, y_slice, &mut partial, &mut ws)
                .expect("shard dimensions are consistent by construction");
        });
        x_panel.fill(0.0);
        for shard in &self.shards {
            let partial = shard.partial.lock().expect("shard partial poisoned");
            for (acc, &p) in x_panel.iter_mut().zip(partial.iter()) {
                *acc += p;
            }
        }
        Ok(())
    }

    /// Batched right product into a preallocated dense panel.
    ///
    /// # Errors
    /// Fails on shape mismatches.
    pub fn right_multiply_batch(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        check_right_batch(self.rows, self.cols, b, out)?;
        self.right_multiply_panel(b.cols(), b.as_slice(), out.as_mut_slice())
    }

    /// Batched left product into a preallocated dense panel.
    ///
    /// # Errors
    /// Fails on shape mismatches.
    pub fn left_multiply_batch(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        check_left_batch(self.rows, self.cols, b, out)?;
        self.left_multiply_panel(b.cols(), b.as_slice(), out.as_mut_slice())
    }
}

impl MatVec for ShardedModel {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    /// The workspace argument is unused: shards own their serving state.
    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.right_multiply_panel(1, x, y)
    }

    /// The workspace argument is unused: shards own their serving state.
    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.left_multiply_panel(1, y, x)
    }

    fn right_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.right_multiply_batch(b, out)
    }

    fn left_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.left_multiply_batch(b, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * 5 + c * 2) % 3 != 0 {
                    m.set(r, c, (((r + c) % 7) + 1) as f64 * 0.25);
                }
            }
        }
        m
    }

    #[test]
    fn sharded_matches_dense_for_every_backend_and_shard_count() {
        let dense = sample(83, 9);
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.5 - 2.0).collect();
        let yv: Vec<f64> = (0..83).map(|i| ((i % 6) as f64) - 2.5).collect();
        let mut y_ref = vec![0.0; 83];
        let mut x_ref = vec![0.0; 9];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        dense.left_multiply(&yv, &mut x_ref).unwrap();
        for backend in Backend::ALL {
            for shards in [1usize, 2, 3, 7] {
                let opts = BuildOptions {
                    backend,
                    shards,
                    blocks: 2,
                    ..BuildOptions::default()
                };
                let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                assert_eq!(model.num_shards(), shards);
                assert_eq!(model.rows(), 83);
                let mut y = vec![0.0; 83];
                model.right_multiply_panel(1, &x, &mut y).unwrap();
                for (a, b) in y.iter().zip(&y_ref) {
                    assert!((a - b).abs() < 1e-9, "{} s={shards} right", backend.name());
                }
                let mut xo = vec![0.0; 9];
                model.left_multiply_panel(1, &yv, &mut xo).unwrap();
                for (a, b) in xo.iter().zip(&x_ref) {
                    assert!((a - b).abs() < 1e-9, "{} s={shards} left", backend.name());
                }
            }
        }
    }

    #[test]
    fn sharded_batch_equals_independent_columns() {
        let dense = sample(40, 7);
        let opts = BuildOptions {
            shards: 3,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        model.prewarm(4);
        let k = 4;
        let mut b = DenseMatrix::zeros(7, k);
        for i in 0..7 {
            for j in 0..k {
                b.set(i, j, (i * k + j) as f64 * 0.25 - 1.5);
            }
        }
        let mut out = DenseMatrix::zeros(40, k);
        model.right_multiply_batch(&b, &mut out).unwrap();
        for j in 0..k {
            let x: Vec<f64> = (0..7).map(|i| b.get(i, j)).collect();
            let mut y = vec![0.0; 40];
            model.right_multiply_panel(1, &x, &mut y).unwrap();
            for (i, &yi) in y.iter().enumerate() {
                assert!((out.get(i, j) - yi).abs() < 1e-9, "col {j}");
            }
        }

        let mut by = DenseMatrix::zeros(40, k);
        for i in 0..40 {
            for j in 0..k {
                by.set(i, j, ((i + 3 * j) % 5) as f64 - 2.0);
            }
        }
        let mut outl = DenseMatrix::zeros(7, k);
        model.left_multiply_batch(&by, &mut outl).unwrap();
        for j in 0..k {
            let y: Vec<f64> = (0..40).map(|i| by.get(i, j)).collect();
            let mut xo = vec![0.0; 7];
            model.left_multiply_panel(1, &y, &mut xo).unwrap();
            for (i, &xi) in xo.iter().enumerate() {
                assert!((outl.get(i, j) - xi).abs() < 1e-9, "col {j}");
            }
        }
    }

    #[test]
    fn reorder_is_recorded_and_preserves_products() {
        let dense = sample(24, 8);
        let opts = BuildOptions {
            shards: 2,
            reorder: Some(ReorderAlgorithm::PathCover),
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        let order = model.col_order().expect("order recorded");
        let mut seen = [false; 8];
        for &c in order {
            assert!(!seen[c as usize]);
            seen[c as usize] = true;
        }
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let mut y_ref = vec![0.0; 24];
        let mut y = vec![0.0; 24];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        model.right_multiply_panel(1, &x, &mut y).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn more_shards_than_rows_clamps() {
        let dense = sample(3, 4);
        let opts = BuildOptions {
            shards: 9,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        assert_eq!(model.num_shards(), 3);
        let mut y = vec![0.0; 3];
        model.right_multiply_panel(1, &[1.0; 4], &mut y).unwrap();
        let mut y_ref = vec![0.0; 3];
        dense.right_multiply(&[1.0; 4], &mut y_ref).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dimension_checks() {
        let dense = sample(10, 4);
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let mut y = vec![0.0; 10];
        assert!(model.right_multiply_panel(1, &[0.0; 3], &mut y).is_err());
        let mut x = vec![0.0; 4];
        assert!(model.left_multiply_panel(1, &[0.0; 9], &mut x).is_err());
    }

    #[test]
    fn empty_matrix_serves_zeroes() {
        let dense = DenseMatrix::zeros(6, 3);
        for backend in Backend::ALL {
            let model = ShardedModel::from_dense(
                &dense,
                &BuildOptions {
                    backend,
                    shards: 2,
                    ..BuildOptions::default()
                },
            )
            .unwrap();
            let mut y = vec![1.0; 6];
            model.right_multiply_panel(1, &[1.0; 3], &mut y).unwrap();
            assert_eq!(y, vec![0.0; 6], "{}", backend.name());
        }
    }
}
