//! Incremental container rebuilds: `gcm compress --base OLD.gcms`.
//!
//! A version-5 container records, per shard, the FNV-64 fingerprint of
//! the shard's build-time input rows ([`shard_fingerprint`]). An
//! incremental rebuild replays only the *planning* split on the new
//! matrix, fingerprints each shard's input slice, and then:
//!
//! * **splices** every unchanged shard — the encoded payload bytes and
//!   any persisted `GCMPLAN1` blobs are copied straight out of the base
//!   container through its [`ShardTable`] byte ranges, with no grammar
//!   decode, no re-encode, and no plan recompilation;
//! * **rebuilds** every changed shard through the ordinary per-shard
//!   stage chain (reorder → grammar → encode, plus plan compilation
//!   when the base persists plans).
//!
//! Because the per-shard stages are deterministic and independent, the
//! spliced container is **byte-identical** to a from-scratch rebuild of
//! the same input under the same configuration — the tests pin this
//! down, and `gcm_repair::grammar_builds()` proves that exactly the
//! changed shards paid for grammar construction.
//!
//! The splice path needs a base that actually carries fingerprints and
//! a configuration whose shards are independent; anything else falls
//! back to a full rebuild with the reason recorded in the returned
//! [`RebuildReport`] (never silently). In particular
//! [`ReorderMode::Global`] couples every shard to the whole-matrix
//! permutation, so a single changed row invalidates all shards.
//!
//! One cross-shard coupling is inherent to the format and handled by
//! the fingerprint itself: row shards share the whole-matrix **value
//! dictionary**, and every serialized shard payload embeds it. An edit
//! that only moves existing values around invalidates just the shards
//! whose rows changed; an edit that changes the dictionary (a new
//! distinct value, or a removed/reordered one) changes what *every*
//! payload embeds, and the fingerprint — which covers the shard's
//! symbol stream *and* the shared dictionary — correctly invalidates
//! them all.

use gcm_encodings::varint;
use gcm_matrix::CsrvMatrix;
use gcm_pipeline::{shard_fingerprint, BuildConfig, GrammarStage, Plan, ReorderMode};
use gcm_reorder::ReorderAlgorithm;

use crate::container::{
    self, fnv1a64, grammar_tag, plan_blobs, reorder_tag, shard_payload, ServeError, ShardTable,
    MAGIC, VERSION_GRAMMAR,
};
use crate::model::Backend;
use crate::sharded::{ServeOptions, ShardedModel};

/// How one output shard of an incremental rebuild was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardProvenance {
    /// The input fingerprint matched the base container: payload bytes
    /// and persisted plan blobs were spliced verbatim.
    Spliced,
    /// The input changed (or the base recorded no fingerprint for this
    /// shard): the full per-shard stage chain re-ran.
    Rebuilt,
}

impl ShardProvenance {
    /// Short display name (`spliced` / `rebuilt`).
    pub fn name(self) -> &'static str {
        match self {
            ShardProvenance::Spliced => "spliced",
            ShardProvenance::Rebuilt => "rebuilt",
        }
    }
}

/// What [`compress_incremental`] did, shard by shard.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// Per-shard provenance, in row order.
    pub shards: Vec<ShardProvenance>,
    /// Why the splice path was abandoned for a full rebuild (`None`
    /// when splicing ran). The fallback is never silent: callers
    /// surface this to the user.
    pub full_reason: Option<String>,
}

impl RebuildReport {
    /// Number of shards spliced from the base container.
    pub fn spliced(&self) -> usize {
        self.shards
            .iter()
            .filter(|p| **p == ShardProvenance::Spliced)
            .count()
    }

    /// Number of shards rebuilt from their input rows.
    pub fn rebuilt(&self) -> usize {
        self.shards
            .iter()
            .filter(|p| **p == ShardProvenance::Rebuilt)
            .count()
    }
}

/// The serialized pieces of one output shard, either spliced out of the
/// base container or freshly built.
struct Segment {
    reorder: Option<ReorderAlgorithm>,
    grammar: Option<GrammarStage>,
    fingerprint: Option<u64>,
    payload: Vec<u8>,
    /// `(kind, blobs)` for the plan section; `None` writes kind `0`.
    plan: Option<(u8, Vec<Vec<u8>>)>,
}

/// Rebuilds `csrv` against the base container bytes, splicing every
/// shard whose input fingerprint is unchanged and re-running the stage
/// chain only for the rest. Whether the output carries a plan section
/// follows the *base* (an incremental rebuild never changes the plan
/// policy mid-flight). The result is byte-identical to the
/// corresponding full rebuild.
///
/// Falls back to a full rebuild — with the reason in the report — when
/// the base or the configuration cannot support splicing: a pre-v5
/// base, a backend that records no fingerprints, no grammar-stage
/// policy, a global reorder, or a changed shard count.
///
/// # Errors
/// Fails if `base` is not a structurally valid container.
pub fn compress_incremental(
    csrv: &CsrvMatrix,
    config: &BuildConfig,
    base: &[u8],
) -> Result<(Vec<u8>, RebuildReport), ServeError> {
    let table = ShardTable::parse(base)?;
    let planned = plan_policy(&table);
    if let Some(reason) = splice_blocker(csrv, config, &table) {
        return Ok(full_rebuild(csrv, config, planned, Some(reason)));
    }
    let plan = Plan::new(csrv, config);
    let mut segments = Vec::with_capacity(plan.shards.len());
    let mut provenance = Vec::with_capacity(plan.shards.len());
    for (i, sp) in plan.shards.iter().enumerate() {
        let fp = shard_fingerprint(&sp.csrv);
        if table.fingerprints[i] == Some(fp) {
            segments.push(splice_segment(&table, base, i));
            provenance.push(ShardProvenance::Spliced);
        } else {
            segments.push(rebuild_segment(&sp.csrv, config, planned));
            provenance.push(ShardProvenance::Rebuilt);
        }
    }
    let bytes = assemble(config.backend, csrv.rows(), csrv.cols(), &segments);
    Ok((
        bytes,
        RebuildReport {
            shards: provenance,
            full_reason: None,
        },
    ))
}

/// The base container's plan policy: `Some(opts)` when it persists
/// plans (f32 when any shard's plans are single-precision).
fn plan_policy(table: &ShardTable) -> Option<ServeOptions> {
    if table.plan_ranges.iter().all(Vec::is_empty) {
        return None;
    }
    Some(if table.plan_f32.iter().any(|&f| f) {
        ServeOptions::planned_f32()
    } else {
        ServeOptions::planned()
    })
}

/// Why this build cannot splice from this base (`None` = it can).
fn splice_blocker(csrv: &CsrvMatrix, config: &BuildConfig, table: &ShardTable) -> Option<String> {
    if config.grammar.is_none() {
        return Some(
            "no grammar-stage policy (--grammar): fingerprints are only recorded under one".into(),
        );
    }
    if !matches!(config.backend, Backend::Compressed | Backend::Blocked) {
        return Some(format!(
            "backend {} records no fingerprints",
            config.backend.name()
        ));
    }
    if matches!(config.reorder, Some(ReorderMode::Global(_))) {
        return Some("global reorder couples every shard to the whole-matrix permutation".into());
    }
    if table.version < VERSION_GRAMMAR {
        return Some(format!(
            "base container is version {} and records no fingerprints",
            table.version
        ));
    }
    if table.backend != config.backend {
        return Some(format!(
            "backend changed ({} in base, {} requested)",
            table.backend.name(),
            config.backend.name()
        ));
    }
    if table.cols != csrv.cols() {
        return Some(format!(
            "column count changed ({} in base, {} now)",
            table.cols,
            csrv.cols()
        ));
    }
    let shards = config.shards.clamp(1, csrv.rows().max(1));
    if table.shard_ranges.len() != shards {
        return Some(format!(
            "shard count changed ({} in base, {} requested)",
            table.shard_ranges.len(),
            shards
        ));
    }
    None
}

/// Copies shard `i`'s on-disk pieces out of the base container without
/// decoding them.
fn splice_segment(table: &ShardTable, base: &[u8], i: usize) -> Segment {
    let plan = if table.plan_ranges[i].is_empty() {
        None
    } else {
        let kind = if table.plan_f32[i] { 2 } else { 1 };
        let blobs = table.plan_ranges[i]
            .iter()
            .map(|r| base[r.clone()].to_vec())
            .collect();
        Some((kind, blobs))
    };
    Segment {
        reorder: table.reorder_algos[i],
        grammar: table.grammar_stages[i],
        fingerprint: table.fingerprints[i],
        payload: base[table.shard_ranges[i].clone()].to_vec(),
        plan,
    }
}

/// Re-runs the per-shard stage chain on one shard's input rows. The
/// stages are deterministic and see exactly what they would see in a
/// full rebuild (the shard's own rows, the same per-shard
/// configuration), so the segment bytes match the full rebuild's.
fn rebuild_segment(
    shard_csrv: &CsrvMatrix,
    config: &BuildConfig,
    planned: Option<ServeOptions>,
) -> Segment {
    let config_one = BuildConfig {
        shards: 1,
        ..*config
    };
    let artifacts = gcm_pipeline::global().build(shard_csrv, &config_one);
    let model = ShardedModel::from_artifacts(artifacts);
    if let Some(opts) = planned {
        model.prewarm_with(1, &opts);
    }
    let shard = &model.shard_slice()[0];
    Segment {
        reorder: shard.reorder,
        grammar: shard.grammar,
        fingerprint: shard.fingerprint,
        payload: shard_payload(&shard.model, shard.col_order.as_deref()),
        plan: shard.plan().map(plan_blobs),
    }
}

/// Writes the version-5 container from per-shard segments — the same
/// byte layout `container::to_bytes` produces for a grammar-stage
/// build, pinned against it by the byte-identity tests.
fn assemble(backend: Backend, rows: usize, cols: usize, segments: &[Segment]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION_GRAMMAR);
    out.push(backend.tag());
    varint::write_u64(&mut out, rows as u64);
    varint::write_u64(&mut out, cols as u64);
    varint::write_u64(&mut out, segments.len() as u64);
    for seg in segments {
        out.push(reorder_tag(seg.reorder));
        let tag = grammar_tag(seg.grammar);
        out.push(tag);
        if tag != 0 {
            out.extend_from_slice(&seg.fingerprint.unwrap_or(0).to_le_bytes());
        }
        varint::write_u64(&mut out, seg.payload.len() as u64);
        out.extend_from_slice(&seg.payload);
    }
    for seg in segments {
        match &seg.plan {
            None => out.push(0),
            Some((kind, blobs)) => {
                out.push(*kind);
                varint::write_u64(&mut out, blobs.len() as u64);
                for blob in blobs {
                    varint::write_u64(&mut out, blob.len() as u64);
                    out.extend_from_slice(blob);
                }
            }
        }
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// The non-splicing path: build everything, with the base's plan
/// policy, and report why.
fn full_rebuild(
    csrv: &CsrvMatrix,
    config: &BuildConfig,
    planned: Option<ServeOptions>,
    reason: Option<String>,
) -> (Vec<u8>, RebuildReport) {
    let artifacts = gcm_pipeline::global().build(csrv, config);
    let n = artifacts.shards.len();
    let model = ShardedModel::from_artifacts(artifacts);
    let bytes = if let Some(opts) = planned {
        model.prewarm_with(1, &opts);
        container::to_bytes_with_plans(&model)
    } else {
        container::to_bytes(&model)
    };
    (
        bytes,
        RebuildReport {
            shards: vec![ShardProvenance::Rebuilt; n],
            full_reason: reason,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container;
    use gcm_core::Encoding;
    use gcm_matrix::DenseMatrix;
    use gcm_pipeline::{EncodingChoice, GrammarChoice};

    fn sample(rows: usize, cols: usize, salt: u64) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = match ((r as u64 + salt) % 4, c % 3) {
                    (0, 0) => 1.5,
                    (1, 1) => 2.5,
                    (2, _) => 0.5,
                    (3, 2) => 7.25,
                    _ => 0.0,
                };
                m.set(r, c, v);
            }
        }
        m
    }

    fn grammar_config(shards: usize) -> BuildConfig {
        BuildConfig {
            backend: Backend::Compressed,
            encoding: EncodingChoice::Fixed(Encoding::ReAns),
            grammar: Some(GrammarChoice::MrRePair),
            shards,
            blocks: 2,
            reorder: None,
        }
    }

    fn build_full(csrv: &CsrvMatrix, config: &BuildConfig, plans: bool) -> Vec<u8> {
        let model = ShardedModel::from_artifacts(gcm_pipeline::global().build(csrv, config));
        if plans {
            model.prewarm_with(1, &ServeOptions::planned());
            container::to_bytes_with_plans(&model)
        } else {
            container::to_bytes(&model)
        }
    }

    #[test]
    fn unchanged_input_splices_every_shard_and_matches_full_rebuild() {
        let dense = sample(48, 9, 0);
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let config = grammar_config(4);
        for plans in [false, true] {
            let base = build_full(&csrv, &config, plans);
            let before = gcm_repair::grammar_builds();
            let (bytes, report) = compress_incremental(&csrv, &config, &base).unwrap();
            assert_eq!(
                gcm_repair::grammar_builds() - before,
                0,
                "no grammar stage may run when nothing changed (plans={plans})"
            );
            assert_eq!(report.full_reason, None);
            assert_eq!(report.spliced(), 4);
            assert_eq!(report.rebuilt(), 0);
            assert_eq!(bytes, base, "splice-all must reproduce the base bytes");
        }
    }

    #[test]
    fn changed_shards_rebuild_exactly_and_output_matches_full_rebuild() {
        let dense = sample(48, 9, 0);
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let config = grammar_config(4);
        for plans in [false, true] {
            let base = build_full(&csrv, &config, plans);
            // Perturb one row in shard 2 (rows 24..36 of the 4-way
            // split) with a value the dictionary already holds — a
            // *new* distinct value would rewrite the shared dictionary
            // every shard payload embeds, correctly invalidating all
            // fingerprints.
            let mut changed = sample(48, 9, 0);
            changed.set(30, 4, 7.25);
            let changed_csrv = CsrvMatrix::from_dense(&changed).unwrap();
            let before = gcm_repair::grammar_builds();
            let (bytes, report) = compress_incremental(&changed_csrv, &config, &base).unwrap();
            // Compressed backend, fixed MR stage: one grammar build per
            // rebuilt shard, so the counter pins "exactly k re-ran".
            assert_eq!(
                gcm_repair::grammar_builds() - before,
                1,
                "exactly the one changed shard re-runs its grammar stage (plans={plans})"
            );
            assert_eq!(report.full_reason, None);
            assert_eq!(report.spliced(), 3);
            assert_eq!(
                report.shards[2],
                ShardProvenance::Rebuilt,
                "the perturbed row lives in shard 2"
            );
            let full = build_full(&changed_csrv, &config, plans);
            assert_eq!(
                bytes, full,
                "incremental output must be byte-identical to a full rebuild (plans={plans})"
            );
            // And it still loads and serves.
            let model = container::from_bytes(&bytes).unwrap();
            let x = vec![1.0; 9];
            let mut y = vec![0.0; 48];
            model.right_multiply_panel(1, &x, &mut y).unwrap();
            let mut y_ref = vec![0.0; 48];
            changed.right_multiply(&x, &mut y_ref).unwrap();
            for (a, b) in y.iter().zip(&y_ref) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn auto_grammar_and_per_shard_reorder_splice_too() {
        let dense = sample(40, 8, 3);
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let config = BuildConfig {
            backend: Backend::Blocked,
            encoding: EncodingChoice::Auto,
            grammar: Some(GrammarChoice::Auto),
            shards: 4,
            blocks: 2,
            reorder: Some(ReorderMode::PerShard(
                gcm_reorder::ReorderAlgorithm::PathCover,
            )),
        };
        let base = build_full(&csrv, &config, false);
        let mut changed = sample(40, 8, 3);
        changed.set(5, 2, 2.5);
        let changed_csrv = CsrvMatrix::from_dense(&changed).unwrap();
        let (bytes, report) = compress_incremental(&changed_csrv, &config, &base).unwrap();
        assert_eq!(report.full_reason, None);
        assert_eq!(report.rebuilt(), 1);
        assert_eq!(report.shards[0], ShardProvenance::Rebuilt);
        assert_eq!(bytes, build_full(&changed_csrv, &config, false));
    }

    #[test]
    fn unusable_bases_fall_back_to_a_full_rebuild_with_a_reason() {
        let dense = sample(32, 8, 1);
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let config = grammar_config(2);
        // Pre-v5 base: no fingerprints to match against.
        let legacy = build_full(
            &csrv,
            &BuildConfig {
                grammar: None,
                ..config
            },
            false,
        );
        let (bytes, report) = compress_incremental(&csrv, &config, &legacy).unwrap();
        assert_eq!(report.rebuilt(), 2);
        let reason = report.full_reason.expect("fallback must carry a reason");
        assert!(reason.contains("version"), "{reason}");
        assert_eq!(bytes, build_full(&csrv, &config, false));
        // Shard-count change.
        let base = build_full(&csrv, &config, false);
        let (_, report) = compress_incremental(&csrv, &grammar_config(3), &base).unwrap();
        assert!(
            report.full_reason.expect("reason").contains("shard count"),
            "changed shard split must be reported"
        );
        // Global reorder couples shards.
        let global = BuildConfig {
            reorder: Some(ReorderMode::Global(
                gcm_reorder::ReorderAlgorithm::PathCover,
            )),
            ..config
        };
        let global_base = build_full(&csrv, &global, false);
        let (_, report) = compress_incremental(&csrv, &global, &global_base).unwrap();
        assert!(
            report
                .full_reason
                .expect("reason")
                .contains("global reorder"),
            "global reorder must refuse to splice"
        );
        // A corrupt base is an error, not a silent full rebuild.
        assert!(compress_incremental(&csrv, &config, b"GCMSERV1junk").is_err());
    }
}
