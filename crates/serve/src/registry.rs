//! Named model persistence and in-memory serving registry.
//!
//! [`ModelStore`] is the on-disk side: a directory of
//! `<name>.gcms` containers with atomic writes. [`Registry`] is the
//! serving side: a name → [`ShardedModel`] cache that loads from the
//! store on first use and prewarms each model so steady-state requests
//! hit warm shards. Both are what a long-running `gcm serve` process
//! (the batched TCP front-end in [`crate::server`]) holds onto.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use crate::container::ServeError;
use crate::sharded::{ServeOptions, ShardedModel};

/// File extension of model containers.
pub const MODEL_EXT: &str = "gcms";

fn validate_name(name: &str) -> Result<(), ServeError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(ServeError::BadName(format!(
            "{name:?} (allowed: ascii alphanumerics plus . _ -, not starting with '.')"
        )))
    }
}

/// A directory of named model containers.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the container for `name`.
    ///
    /// # Errors
    /// Fails on invalid names (path traversal is rejected wholesale).
    pub fn path(&self, name: &str) -> Result<PathBuf, ServeError> {
        validate_name(name)?;
        Ok(self.dir.join(format!("{name}.{MODEL_EXT}")))
    }

    /// Persists `model` under `name`, returning the container path.
    ///
    /// # Errors
    /// Fails on invalid names or filesystem errors.
    pub fn save(&self, name: &str, model: &ShardedModel) -> Result<PathBuf, ServeError> {
        let path = self.path(name)?;
        model.save(&path)?;
        Ok(path)
    }

    /// Loads the model stored under `name`.
    ///
    /// # Errors
    /// Fails if the name is invalid, missing, or the container corrupt.
    pub fn load(&self, name: &str) -> Result<ShardedModel, ServeError> {
        ShardedModel::load(&self.path(name)?)
    }

    /// Whether a container exists for `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.path(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Names of every stored model, sorted.
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn list(&self) -> Result<Vec<String>, ServeError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(MODEL_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if validate_name(stem).is_ok() {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Deletes the container for `name`.
    ///
    /// # Errors
    /// Fails on invalid names or filesystem errors.
    pub fn remove(&self, name: &str) -> Result<(), ServeError> {
        std::fs::remove_file(self.path(name)?)?;
        Ok(())
    }
}

/// In-memory registry of loaded models over a [`ModelStore`].
///
/// `get` loads (and prewarms) a model on first use and then serves the
/// cached `Arc` — the amortise-compression-across-restarts path the
/// serve layer exists for. Both steps run through the staged pipeline
/// machinery: the container loader decodes shards concurrently via the
/// `ShardTable` on the persistent pool, and prewarm touches every pool
/// worker and warms shard workspaces the same way, so a cold `get` of a
/// many-shard model costs one pool-parallel pass, not a serial walk.
#[derive(Debug)]
pub struct Registry {
    store: ModelStore,
    /// Batch width models are prewarmed for on load.
    prewarm_width: usize,
    /// Serving options applied to every load (plan compilation).
    serve_options: ServeOptions,
    cache: RwLock<HashMap<String, Arc<ShardedModel>>>,
    /// Single-flight gates: one per name currently being loaded, so N
    /// concurrent first requests decode the container once (the fleet
    /// restart thundering-herd path).
    inflight: Mutex<HashMap<String, Arc<LoadGate>>>,
    /// Containers actually decoded from disk (not cache hits) — lets
    /// tests pin the single-flight guarantee.
    loads: AtomicUsize,
}

/// A gate concurrent loaders of the same name rendezvous on: the
/// loader that created it does the work; the rest wait for `done`.
#[derive(Debug, Default)]
struct LoadGate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LoadGate {
    fn wait(&self) {
        let mut done = self.done.lock().expect("load gate poisoned");
        while !*done {
            done = self.cv.wait(done).expect("load gate poisoned");
        }
    }

    fn complete(&self) {
        *self.done.lock().expect("load gate poisoned") = true;
        self.cv.notify_all();
    }
}

/// Removes and completes the leader's gate on scope exit — including a
/// panicking load — so followers always wake. The leader caches the
/// model *before* this runs, keeping the cache-then-uncork ordering the
/// double-check in [`Registry::get`] relies on.
struct GateGuard<'a> {
    registry: &'a Registry,
    name: &'a str,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let gate = self
            .registry
            .inflight
            .lock()
            .expect("registry inflight poisoned")
            .remove(self.name);
        if let Some(gate) = gate {
            gate.complete();
        }
    }
}

impl Registry {
    /// A registry over `store`, prewarming loaded models for batch width
    /// `prewarm_width` (clamped to at least 1) under default
    /// [`ServeOptions`].
    pub fn new(store: ModelStore, prewarm_width: usize) -> Self {
        Self::with_options(store, prewarm_width, ServeOptions::default())
    }

    /// A registry that prewarms every loaded model under `options` —
    /// e.g. [`ServeOptions::planned`] to compile kernel plans on load,
    /// paying the plan memory once per model for faster steady-state
    /// multiplies.
    pub fn with_options(store: ModelStore, prewarm_width: usize, options: ServeOptions) -> Self {
        Self {
            store,
            prewarm_width: prewarm_width.max(1),
            serve_options: options,
            cache: RwLock::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            loads: AtomicUsize::new(0),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The serving options applied on load.
    pub fn serve_options(&self) -> ServeOptions {
        self.serve_options
    }

    /// Persists `model` under `name` and caches it (prewarmed).
    ///
    /// # Errors
    /// Fails on invalid names or filesystem errors.
    pub fn publish(
        &self,
        name: &str,
        model: ShardedModel,
    ) -> Result<Arc<ShardedModel>, ServeError> {
        self.store.save(name, &model)?;
        model.prewarm_with(self.prewarm_width, &self.serve_options);
        let arc = Arc::new(model);
        self.cache
            .write()
            .expect("registry cache poisoned")
            .insert(name.to_string(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Returns the cached model for `name`, loading and prewarming it
    /// from the store on first use.
    ///
    /// Concurrent first requests for the same name are **single-flight**:
    /// one caller decodes and prewarms the container, the rest block on
    /// its gate and then take the cached `Arc` — a fleet restart's worth
    /// of simultaneous cold requests costs one load, not N.
    ///
    /// # Errors
    /// Fails if the model is missing or its container corrupt. A failed
    /// load is not cached: waiters (and later callers) retry it.
    pub fn get(&self, name: &str) -> Result<Arc<ShardedModel>, ServeError> {
        loop {
            if let Some(model) = self
                .cache
                .read()
                .expect("registry cache poisoned")
                .get(name)
            {
                return Ok(Arc::clone(model));
            }
            // Join the in-progress load, or become its leader.
            let gate = {
                let mut inflight = self.inflight.lock().expect("registry inflight poisoned");
                // The previous leader caches before dropping its gate,
                // so a second cache check here closes the window where
                // we would reload a model that just finished.
                if let Some(model) = self
                    .cache
                    .read()
                    .expect("registry cache poisoned")
                    .get(name)
                {
                    return Ok(Arc::clone(model));
                }
                match inflight.get(name) {
                    Some(gate) => Some(Arc::clone(gate)),
                    None => {
                        inflight.insert(name.to_string(), Arc::new(LoadGate::default()));
                        None
                    }
                }
            };
            if let Some(gate) = gate {
                // Follower: wait, then re-check the cache (the leader
                // may have failed — in that case we retry the load).
                gate.wait();
                continue;
            }
            // Leader: the guard completes the gate even on panic, so
            // followers never hang.
            let _guard = GateGuard {
                registry: self,
                name,
            };
            let model = self.store.load(name)?;
            model.prewarm_with(self.prewarm_width, &self.serve_options);
            self.loads.fetch_add(1, Ordering::Relaxed);
            let arc = Arc::new(model);
            self.cache
                .write()
                .expect("registry cache poisoned")
                .insert(name.to_string(), Arc::clone(&arc));
            return Ok(arc);
        }
    }

    /// How many containers `get` has actually decoded from disk (cache
    /// hits and waiters on another caller's load do not count).
    pub fn loads_performed(&self) -> usize {
        self.loads.load(Ordering::Relaxed)
    }

    /// Drops the cached entry for `name` (the container stays on disk).
    /// Returns whether an entry was cached.
    pub fn evict(&self, name: &str) -> bool {
        self.cache
            .write()
            .expect("registry cache poisoned")
            .remove(name)
            .is_some()
    }

    /// Names currently cached, sorted.
    pub fn loaded(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .cache
            .read()
            .expect("registry cache poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::BuildOptions;
    use gcm_matrix::DenseMatrix;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gcm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_model(shards: usize) -> ShardedModel {
        let mut m = DenseMatrix::zeros(20, 5);
        for r in 0..20 {
            for c in 0..5 {
                if (r + c) % 2 == 0 {
                    m.set(r, c, (c + 1) as f64);
                }
            }
        }
        ShardedModel::from_dense(
            &m,
            &BuildOptions {
                shards,
                ..BuildOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn store_save_list_load_remove() {
        let dir = tmp_dir("store");
        let store = ModelStore::open(&dir).unwrap();
        assert_eq!(store.list().unwrap(), Vec::<String>::new());
        store.save("alpha", &sample_model(2)).unwrap();
        store.save("beta.v2", &sample_model(1)).unwrap();
        assert_eq!(store.list().unwrap(), vec!["alpha", "beta.v2"]);
        assert!(store.contains("alpha"));
        let back = store.load("alpha").unwrap();
        assert_eq!(back.num_shards(), 2);
        store.remove("alpha").unwrap();
        assert!(!store.contains("alpha"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_rejects_traversal_names() {
        let dir = tmp_dir("names");
        let store = ModelStore::open(&dir).unwrap();
        for bad in ["", "../evil", "a/b", ".hidden", "nul\0byte", "sp ace"] {
            assert!(store.path(bad).is_err(), "{bad:?} must be rejected");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_caches_across_gets() {
        let dir = tmp_dir("registry");
        let store = ModelStore::open(&dir).unwrap();
        let registry = Registry::new(store, 4);
        registry.publish("m", sample_model(3)).unwrap();
        let a = registry.get("m").unwrap();
        let b = registry.get("m").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second get must hit the cache");
        assert_eq!(registry.loaded(), vec!["m"]);
        assert!(registry.evict("m"));
        assert!(!registry.evict("m"));
        // Still loadable from disk after eviction.
        let c = registry.get("m").unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(registry.get("missing").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_first_gets_decode_the_container_once() {
        let dir = tmp_dir("single-flight");
        let store = ModelStore::open(&dir).unwrap();
        let registry = Arc::new(Registry::new(store, 4));
        registry.store().save("m", &sample_model(3)).unwrap();
        assert_eq!(registry.loads_performed(), 0);

        let threads = 8;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    registry.get("m").unwrap()
                })
            })
            .collect();
        let models: Vec<Arc<ShardedModel>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_eq!(
            registry.loads_performed(),
            1,
            "single-flight: 8 racing gets must decode the container once"
        );
        for model in &models {
            assert!(
                Arc::ptr_eq(model, &models[0]),
                "every caller must receive the same cached instance"
            );
        }
        // A failing load is not cached: waiters retry, and the counter
        // only moves on success.
        assert!(registry.get("missing").is_err());
        assert_eq!(registry.loads_performed(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn planned_registry_prewarms_plans_on_load() {
        let dir = tmp_dir("planned");
        let store = ModelStore::open(&dir).unwrap();
        let registry = Registry::with_options(store, 4, ServeOptions::planned());
        assert!(registry.serve_options().plans);
        let published = registry.publish("m", sample_model(2)).unwrap();
        assert!(published.is_planned(), "publish must prewarm with plans");
        registry.evict("m");
        // A fresh load from disk compiles plans too.
        let loaded = registry.get("m").unwrap();
        assert!(loaded.is_planned());
        assert!(loaded.plan_heap_bytes() > 0);
        let mut y = vec![0.0; loaded.rows()];
        loaded.right_multiply_panel(1, &[1.0; 5], &mut y).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
