//! Named model persistence and in-memory serving registry.
//!
//! [`ModelStore`] is the on-disk side: a directory of
//! `<name>.gcms` containers with atomic writes. [`Registry`] is the
//! serving side: a name → [`ShardedModel`] cache that loads from the
//! store on first use and prewarms each model so steady-state requests
//! hit warm shards. Both are what a long-running `gcm-serve` process (or
//! the future async front-end recorded in `ROADMAP.md`) holds onto.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use crate::container::ServeError;
use crate::sharded::{ServeOptions, ShardedModel};

/// File extension of model containers.
pub const MODEL_EXT: &str = "gcms";

fn validate_name(name: &str) -> Result<(), ServeError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(ServeError::BadName(format!(
            "{name:?} (allowed: ascii alphanumerics plus . _ -, not starting with '.')"
        )))
    }
}

/// A directory of named model containers.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the container for `name`.
    ///
    /// # Errors
    /// Fails on invalid names (path traversal is rejected wholesale).
    pub fn path(&self, name: &str) -> Result<PathBuf, ServeError> {
        validate_name(name)?;
        Ok(self.dir.join(format!("{name}.{MODEL_EXT}")))
    }

    /// Persists `model` under `name`, returning the container path.
    ///
    /// # Errors
    /// Fails on invalid names or filesystem errors.
    pub fn save(&self, name: &str, model: &ShardedModel) -> Result<PathBuf, ServeError> {
        let path = self.path(name)?;
        model.save(&path)?;
        Ok(path)
    }

    /// Loads the model stored under `name`.
    ///
    /// # Errors
    /// Fails if the name is invalid, missing, or the container corrupt.
    pub fn load(&self, name: &str) -> Result<ShardedModel, ServeError> {
        ShardedModel::load(&self.path(name)?)
    }

    /// Whether a container exists for `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.path(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Names of every stored model, sorted.
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn list(&self) -> Result<Vec<String>, ServeError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(MODEL_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if validate_name(stem).is_ok() {
                        names.push(stem.to_string());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Deletes the container for `name`.
    ///
    /// # Errors
    /// Fails on invalid names or filesystem errors.
    pub fn remove(&self, name: &str) -> Result<(), ServeError> {
        std::fs::remove_file(self.path(name)?)?;
        Ok(())
    }
}

/// In-memory registry of loaded models over a [`ModelStore`].
///
/// `get` loads (and prewarms) a model on first use and then serves the
/// cached `Arc` — the amortise-compression-across-restarts path the
/// serve layer exists for. Both steps run through the staged pipeline
/// machinery: the container loader decodes shards concurrently via the
/// `ShardTable` on the persistent pool, and prewarm touches every pool
/// worker and warms shard workspaces the same way, so a cold `get` of a
/// many-shard model costs one pool-parallel pass, not a serial walk.
#[derive(Debug)]
pub struct Registry {
    store: ModelStore,
    /// Batch width models are prewarmed for on load.
    prewarm_width: usize,
    /// Serving options applied to every load (plan compilation).
    serve_options: ServeOptions,
    cache: RwLock<HashMap<String, Arc<ShardedModel>>>,
}

impl Registry {
    /// A registry over `store`, prewarming loaded models for batch width
    /// `prewarm_width` (clamped to at least 1) under default
    /// [`ServeOptions`].
    pub fn new(store: ModelStore, prewarm_width: usize) -> Self {
        Self::with_options(store, prewarm_width, ServeOptions::default())
    }

    /// A registry that prewarms every loaded model under `options` —
    /// e.g. [`ServeOptions::planned`] to compile kernel plans on load,
    /// paying the plan memory once per model for faster steady-state
    /// multiplies.
    pub fn with_options(store: ModelStore, prewarm_width: usize, options: ServeOptions) -> Self {
        Self {
            store,
            prewarm_width: prewarm_width.max(1),
            serve_options: options,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The serving options applied on load.
    pub fn serve_options(&self) -> ServeOptions {
        self.serve_options
    }

    /// Persists `model` under `name` and caches it (prewarmed).
    ///
    /// # Errors
    /// Fails on invalid names or filesystem errors.
    pub fn publish(
        &self,
        name: &str,
        model: ShardedModel,
    ) -> Result<Arc<ShardedModel>, ServeError> {
        self.store.save(name, &model)?;
        model.prewarm_with(self.prewarm_width, &self.serve_options);
        let arc = Arc::new(model);
        self.cache
            .write()
            .expect("registry cache poisoned")
            .insert(name.to_string(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Returns the cached model for `name`, loading and prewarming it
    /// from the store on first use.
    ///
    /// # Errors
    /// Fails if the model is missing or its container corrupt.
    pub fn get(&self, name: &str) -> Result<Arc<ShardedModel>, ServeError> {
        if let Some(model) = self
            .cache
            .read()
            .expect("registry cache poisoned")
            .get(name)
        {
            return Ok(Arc::clone(model));
        }
        let model = self.store.load(name)?;
        model.prewarm_with(self.prewarm_width, &self.serve_options);
        let arc = Arc::new(model);
        let mut cache = self.cache.write().expect("registry cache poisoned");
        // A racing loader may have beaten us; keep the first.
        let entry = cache
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&arc));
        Ok(Arc::clone(entry))
    }

    /// Drops the cached entry for `name` (the container stays on disk).
    /// Returns whether an entry was cached.
    pub fn evict(&self, name: &str) -> bool {
        self.cache
            .write()
            .expect("registry cache poisoned")
            .remove(name)
            .is_some()
    }

    /// Names currently cached, sorted.
    pub fn loaded(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .cache
            .read()
            .expect("registry cache poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::BuildOptions;
    use gcm_matrix::DenseMatrix;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gcm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_model(shards: usize) -> ShardedModel {
        let mut m = DenseMatrix::zeros(20, 5);
        for r in 0..20 {
            for c in 0..5 {
                if (r + c) % 2 == 0 {
                    m.set(r, c, (c + 1) as f64);
                }
            }
        }
        ShardedModel::from_dense(
            &m,
            &BuildOptions {
                shards,
                ..BuildOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn store_save_list_load_remove() {
        let dir = tmp_dir("store");
        let store = ModelStore::open(&dir).unwrap();
        assert_eq!(store.list().unwrap(), Vec::<String>::new());
        store.save("alpha", &sample_model(2)).unwrap();
        store.save("beta.v2", &sample_model(1)).unwrap();
        assert_eq!(store.list().unwrap(), vec!["alpha", "beta.v2"]);
        assert!(store.contains("alpha"));
        let back = store.load("alpha").unwrap();
        assert_eq!(back.num_shards(), 2);
        store.remove("alpha").unwrap();
        assert!(!store.contains("alpha"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_rejects_traversal_names() {
        let dir = tmp_dir("names");
        let store = ModelStore::open(&dir).unwrap();
        for bad in ["", "../evil", "a/b", ".hidden", "nul\0byte", "sp ace"] {
            assert!(store.path(bad).is_err(), "{bad:?} must be rejected");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_caches_across_gets() {
        let dir = tmp_dir("registry");
        let store = ModelStore::open(&dir).unwrap();
        let registry = Registry::new(store, 4);
        registry.publish("m", sample_model(3)).unwrap();
        let a = registry.get("m").unwrap();
        let b = registry.get("m").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second get must hit the cache");
        assert_eq!(registry.loaded(), vec!["m"]);
        assert!(registry.evict("m"));
        assert!(!registry.evict("m"));
        // Still loadable from disk after eviction.
        let c = registry.get("m").unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(registry.get("missing").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn planned_registry_prewarms_plans_on_load() {
        let dir = tmp_dir("planned");
        let store = ModelStore::open(&dir).unwrap();
        let registry = Registry::with_options(store, 4, ServeOptions::planned());
        assert!(registry.serve_options().plans);
        let published = registry.publish("m", sample_model(2)).unwrap();
        assert!(published.is_planned(), "publish must prewarm with plans");
        registry.evict("m");
        // A fresh load from disk compiles plans too.
        let loaded = registry.get("m").unwrap();
        assert!(loaded.is_planned());
        assert!(loaded.plan_heap_bytes() > 0);
        let mut y = vec![0.0; loaded.rows()];
        loaded.right_multiply_panel(1, &[1.0; 5], &mut y).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
