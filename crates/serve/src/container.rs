//! The versioned on-disk model container (`GCMSERV1`).
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "GCMSERV1" | u8 container version | u8 backend tag
//! rows | cols | num_shards
//! per shard: [u8 reorder algorithm tag   -- versions 2 and up]
//!            [u8 grammar stage tag,      -- version 5
//!             u64 LE fingerprint if tag != 0]
//!            payload_len | payload bytes
//! [plan section                          -- versions 4 and 5
//!  per shard: u8 plan kind (0 none, 1 f64, 2 f32)
//!             if kind != 0: blob_count | blob_count × (len | blob)]
//! u64 LE FNV-1a checksum of every preceding byte
//! ```
//!
//! **Version 1** requires every shard to agree on the column reorder
//! (the permutation is embedded redundantly in each payload, and the
//! loader treats disagreement as corruption). **Version 2** makes
//! per-shard permutations first-class — each shard carries its own
//! order plus a one-byte tag naming the reorder algorithm that produced
//! it (build provenance for `gcm inspect`). **Version 3** shares the
//! version-2 layout but marks that at least one shard payload uses a
//! post-paper encoding (`re_fse`), so readers that predate the encoding
//! reject the file at the header instead of deep inside a payload.
//! **Version 4** appends an optional **plan section**: the compiled
//! [`gcm_core::KernelPlan`] / [`gcm_core::KernelPlanF32`] descriptor
//! arrays of every planned shard, persisted in the fixed
//! little-endian `GCMPLAN1` blob form (one blob per row block), so a
//! loader restores them with a validated cast — no RePair decode, no
//! recompilation ([`gcm_core::plan_compiles`] stays flat), load time
//! independent of grammar size. **Version 5** adds per-shard **grammar
//! provenance**: a stage tag naming the grammar construction (RePair or
//! MR-RePair) plus the FNV-64 fingerprint of the shard's build-time
//! input rows — the handle `gcm compress --base` matches unchanged
//! shards by (see [`compress_incremental`](crate::incremental)). The
//! writer emits the lowest version that can represent the model (plain
//! containers stay byte-identical with pre-v2 writers; the plan section
//! is opt-in via [`to_bytes_with_plans`]; grammar metadata appears only
//! under an explicit grammar-stage policy); the reader accepts all
//! five.
//!
//! Shard payloads by backend:
//!
//! * `csrv` — a column-order prefix (varint len + u32 LE entries, `0` =
//!   none) then a `GCMCSRV1` section
//!   ([`gcm_matrix::io::write_csrv_bytes`]);
//! * `parcsrv` — the same column-order prefix, a varint block count,
//!   then a `GCMCSRV1` section of the reassembled whole shard;
//! * `compressed` — a single-block `GCMMAT2` bundle
//!   ([`gcm_core::serial::bundle_to_bytes`]), which also carries the
//!   column-reorder permutation;
//! * `blocked` — a multi-block `GCMMAT2` bundle (block structure +
//!   permutation).
//!
//! The shard table makes the container *mmap-style*: a reader can locate
//! and decode one shard's byte range without touching the others
//! ([`ShardTable`]), which is how a multi-process deployment would map
//! one file and fault in only the shards it serves.
//!
//! Loading is validating end to end: the checksum rejects bit rot and
//! truncation outright, and every payload then passes the structural
//! validation of its section format, so a corrupt file can never panic a
//! kernel. Bare `GCMMAT1` / `GCMMAT2` files (the `mmr` CLI's output) are
//! accepted as single-shard compressed containers for compatibility.

use std::fmt;
use std::path::Path;

use gcm_core::serial;
use gcm_core::{BlockedMatrix, KernelPlan, KernelPlanF32};
use gcm_encodings::varint;
use gcm_matrix::{io as mio, MatrixError, ParallelCsrv};
use gcm_pipeline::GrammarStage;
use gcm_reorder::ReorderAlgorithm;

use crate::model::{Backend, Model, ModelPlan};
use crate::sharded::ShardedModel;

/// Container magic.
pub const MAGIC: &[u8; 8] = b"GCMSERV1";
/// Baseline container version: shards agree on the column reorder.
pub const VERSION: u8 = 1;
/// Container version with first-class per-shard reorder metadata (one
/// permutation and one algorithm tag per shard).
pub const VERSION_PER_SHARD: u8 = 2;
/// Container version whose shard payloads may use post-paper encodings
/// (currently `re_fse`). Same layout as version 2; the bump exists so a
/// pre-`re_fse` reader fails fast with "unsupported container version"
/// instead of deep inside a payload decode.
pub const VERSION_ENCODINGS: u8 = 3;
/// Container version with an optional persisted **plan section** after
/// the shard payloads: per-shard compiled kernel-plan blobs
/// (`GCMPLAN1`), loaded back by validated cast instead of being
/// recompiled from the grammar. Emitted only by
/// [`to_bytes_with_plans`] on models that hold compiled plans.
pub const VERSION_PLANS: u8 = 4;
/// Container version with per-shard **grammar provenance**: a stage tag
/// (which grammar construction compressed the shard — RePair or
/// MR-RePair) and the u64 FNV fingerprint of the shard's build-time
/// input rows, written between the reorder tag and the payload length.
/// The fingerprint is what `gcm compress --base` matches unchanged
/// shards by. Version 5 always carries the v4 plan section (per-shard
/// kind bytes; `0` = no plan). Emitted only when a build ran with an
/// explicit grammar-stage policy — legacy builds keep emitting v1–v4
/// byte-identically.
pub const VERSION_GRAMMAR: u8 = 5;

/// Stable on-disk tag of a reorder algorithm (version 2 provenance
/// byte); `0` = no reorder recorded.
pub(crate) fn reorder_tag(algo: Option<ReorderAlgorithm>) -> u8 {
    match algo {
        None => 0,
        Some(ReorderAlgorithm::Lkh) => 1,
        Some(ReorderAlgorithm::PathCover) => 2,
        Some(ReorderAlgorithm::PathCoverPlus) => 3,
        Some(ReorderAlgorithm::Mwm) => 4,
    }
}

/// Inverse of [`reorder_tag`]; outer `None` = invalid tag.
fn tag_reorder(t: u8) -> Option<Option<ReorderAlgorithm>> {
    match t {
        0 => Some(None),
        1 => Some(Some(ReorderAlgorithm::Lkh)),
        2 => Some(Some(ReorderAlgorithm::PathCover)),
        3 => Some(Some(ReorderAlgorithm::PathCoverPlus)),
        4 => Some(Some(ReorderAlgorithm::Mwm)),
        _ => None,
    }
}

/// Stable on-disk tag of a grammar stage (version 5 provenance byte);
/// `0` = no stage recorded (legacy shard spliced into a v5 container).
pub(crate) fn grammar_tag(stage: Option<GrammarStage>) -> u8 {
    match stage {
        None => 0,
        Some(GrammarStage::RePair) => 1,
        Some(GrammarStage::MrRePair) => 2,
    }
}

/// Inverse of [`grammar_tag`]; outer `None` = invalid tag.
fn tag_grammar(t: u8) -> Option<Option<GrammarStage>> {
    match t {
        0 => Some(None),
        1 => Some(Some(GrammarStage::RePair)),
        2 => Some(Some(GrammarStage::MrRePair)),
        _ => None,
    }
}

/// Errors of the serve layer (store, container, registry).
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid container or payload.
    Corrupt(String),
    /// Dimension or construction failure from the matrix layer.
    Matrix(MatrixError),
    /// Invalid model name or unknown model.
    BadName(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            ServeError::Matrix(e) => write!(f, "matrix error: {e}"),
            ServeError::BadName(msg) => write!(f, "bad model name: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<MatrixError> for ServeError {
    fn from(e: MatrixError) -> Self {
        ServeError::Matrix(e)
    }
}

fn corrupt(msg: impl Into<String>) -> ServeError {
    ServeError::Corrupt(msg.into())
}

/// FNV-1a 64 over `data` — the container's integrity checksum.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Writes the optional column-reorder permutation prefix of the csrv /
/// parcsrv payloads (`varint len` + u32 LE entries; `0` = none). The
/// compressed backends instead carry the order inside their `GCMMAT2`
/// bundle, so *every* backend round-trips the provenance metadata.
fn write_col_order(out: &mut Vec<u8>, col_order: Option<&[u32]>) {
    let order = col_order.unwrap_or(&[]);
    varint::write_u64(out, order.len() as u64);
    for &c in order {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

/// Inverse of [`write_col_order`], validating the permutation via the
/// shared `serial` helpers.
fn read_col_order(
    data: &[u8],
    pos: &mut usize,
    cols: usize,
) -> Result<Option<Vec<u32>>, ServeError> {
    // Bounds run on the raw u64 *before* the narrowing cast: on 32-bit
    // targets `as usize` would truncate a forged length silently and the
    // checks below would then pass on the wrong value.
    let len = varint::read_u64(data, pos).ok_or_else(|| corrupt("missing column order length"))?;
    if len == 0 {
        return Ok(None);
    }
    if len != cols as u64 {
        return Err(corrupt("column order length mismatch"));
    }
    // Bound the declared length by the bytes actually present *before*
    // any reservation sized from it: a forged-checksum container must
    // not be able to request an absurd allocation.
    if len > (data.len().saturating_sub(*pos) / 4) as u64 {
        return Err(corrupt("column order length exceeds remaining payload"));
    }
    let len = len as usize;
    let order =
        serial::read_exact_u32s(data, pos, len).ok_or_else(|| corrupt("truncated column order"))?;
    if !serial::is_permutation(&order, cols) {
        return Err(corrupt("column order is not a permutation"));
    }
    Ok(Some(order))
}

pub(crate) fn shard_payload(model: &Model, col_order: Option<&[u32]>) -> Vec<u8> {
    let mut out = Vec::new();
    match model {
        Model::Csrv(m) => {
            write_col_order(&mut out, col_order);
            mio::write_csrv_bytes(m, &mut out);
        }
        Model::ParCsrv(m) => {
            write_col_order(&mut out, col_order);
            varint::write_u64(&mut out, m.num_blocks() as u64);
            mio::write_csrv_bytes(&m.to_csrv(), &mut out);
        }
        Model::Compressed(m) => {
            out = serial::bundle_to_bytes(std::slice::from_ref(m), col_order);
        }
        Model::Blocked(m) => {
            out = serial::bundle_to_bytes(m.blocks(), col_order);
        }
    }
    out
}

fn decode_shard(
    backend: Backend,
    cols: usize,
    payload: &[u8],
) -> Result<(Model, Option<Vec<u32>>), ServeError> {
    match backend {
        Backend::Csrv => {
            let mut pos = 0usize;
            let order = read_col_order(payload, &mut pos, cols)?;
            let m = mio::read_csrv_bytes(payload, &mut pos)
                .ok_or_else(|| corrupt("invalid csrv shard payload"))?;
            Ok((Model::Csrv(m), order))
        }
        Backend::ParCsrv => {
            let mut pos = 0usize;
            let order = read_col_order(payload, &mut pos, cols)?;
            let blocks = varint::read_u64(payload, &mut pos)
                .ok_or_else(|| corrupt("missing parcsrv block count"))?;
            // Every block needs at least one payload byte behind it, so
            // the remaining length bounds any plausible count — tighter
            // than a fixed cap, and checked (on the raw u64, before the
            // narrowing cast) before the count sizes anything.
            if blocks == 0 || blocks > payload.len().saturating_sub(pos) as u64 {
                return Err(corrupt("implausible parcsrv block count"));
            }
            let blocks = blocks as usize;
            let m = mio::read_csrv_bytes(payload, &mut pos)
                .ok_or_else(|| corrupt("invalid parcsrv shard payload"))?;
            Ok((Model::ParCsrv(ParallelCsrv::split(&m, blocks)), order))
        }
        Backend::Compressed => {
            let (mut blocks, order) = serial::bundle_from_bytes(payload)
                .ok_or_else(|| corrupt("invalid compressed shard bundle"))?;
            if blocks.len() != 1 {
                return Err(corrupt("compressed shard must hold exactly one block"));
            }
            let m = blocks.pop().expect("length checked");
            if m.cols() != cols {
                return Err(corrupt("shard column count mismatches header"));
            }
            Ok((Model::Compressed(m), order))
        }
        Backend::Blocked => {
            let (blocks, order) = serial::bundle_from_bytes(payload)
                .ok_or_else(|| corrupt("invalid blocked shard bundle"))?;
            if blocks.iter().any(|b| b.cols() != cols) {
                return Err(corrupt("shard column count mismatches header"));
            }
            Ok((
                Model::Blocked(BlockedMatrix::from_blocks(blocks, cols)),
                order,
            ))
        }
    }
}

/// Serialises a sharded model as a `GCMSERV1` container, at the lowest
/// version that can represent it: the baseline when no shard carries
/// reorder metadata (those bytes are identical to the pre-v2 writer's),
/// version 2 for per-shard permutations plus algorithm provenance, and
/// version 3 when any shard uses a post-paper encoding (`re_fse`).
/// Compiled plans are **not** persisted here (see
/// [`to_bytes_with_plans`]), so existing outputs stay byte-identical.
pub fn to_bytes(model: &ShardedModel) -> Vec<u8> {
    encode(model, false)
}

/// As [`to_bytes`], additionally persisting every compiled shard plan
/// in a version-4 plan section, so the next load restores the plans by
/// validated cast — zero RePair decode, zero recompilation — and
/// `prewarm` becomes a cheap validation-and-warm pass. Falls back to
/// the plain layout (and its lower version byte) when no shard holds a
/// compiled plan, so output is readable by older readers whenever it
/// can be.
pub fn to_bytes_with_plans(model: &ShardedModel) -> Vec<u8> {
    encode(model, true)
}

/// One plan's on-disk form: the kind byte (1 = `f64`, 2 = `f32`) and
/// one `GCMPLAN1` blob per row block.
pub(crate) fn plan_blobs(plan: &ModelPlan) -> (u8, Vec<Vec<u8>>) {
    match plan {
        ModelPlan::Compressed(p) => (1, vec![p.to_bytes()]),
        ModelPlan::Blocked(ps) => (1, ps.iter().map(KernelPlan::to_bytes).collect()),
        ModelPlan::CompressedF32(p) => (2, vec![p.to_bytes()]),
        ModelPlan::BlockedF32(ps) => (2, ps.iter().map(KernelPlanF32::to_bytes).collect()),
    }
}

fn encode(model: &ShardedModel, with_plans: bool) -> Vec<u8> {
    let with_plans = with_plans && model.shard_slice().iter().any(|s| s.plan().is_some());
    let with_grammar = model
        .shard_slice()
        .iter()
        .any(|s| s.grammar.is_some() || s.fingerprint.is_some());
    let new_encoding = model
        .shard_slice()
        .iter()
        .any(|s| s.model.encoding() == Some(gcm_core::Encoding::ReFse));
    let per_shard = model
        .shard_slice()
        .iter()
        .any(|s| s.col_order.is_some() || s.reorder.is_some());
    let version = if with_grammar {
        VERSION_GRAMMAR
    } else if with_plans {
        VERSION_PLANS
    } else if new_encoding {
        VERSION_ENCODINGS
    } else if per_shard {
        VERSION_PER_SHARD
    } else {
        VERSION
    };
    let mut out = Vec::with_capacity(model.stored_bytes() + 128);
    out.extend_from_slice(MAGIC);
    out.push(version);
    out.push(model.backend().tag());
    varint::write_u64(&mut out, model.rows() as u64);
    varint::write_u64(&mut out, model.cols() as u64);
    varint::write_u64(&mut out, model.num_shards() as u64);
    for shard in model.shard_slice() {
        if version >= VERSION_PER_SHARD {
            out.push(reorder_tag(shard.reorder));
        }
        if version >= VERSION_GRAMMAR {
            let tag = grammar_tag(shard.grammar);
            out.push(tag);
            if tag != 0 {
                out.extend_from_slice(&shard.fingerprint.unwrap_or(0).to_le_bytes());
            }
        }
        let payload = shard_payload(&shard.model, shard.col_order.as_deref());
        varint::write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
    if version >= VERSION_PLANS {
        for shard in model.shard_slice() {
            // A grammar-bearing container is v5 regardless of the plan
            // policy, so gate the blobs on the caller's request rather
            // than the version.
            match shard.plan().filter(|_| with_plans) {
                None => out.push(0),
                Some(plan) => {
                    let (kind, blobs) = plan_blobs(plan);
                    out.push(kind);
                    varint::write_u64(&mut out, blobs.len() as u64);
                    for blob in &blobs {
                        varint::write_u64(&mut out, blob.len() as u64);
                        out.extend_from_slice(blob);
                    }
                }
            }
        }
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// The parsed header and shard byte ranges of a container — everything a
/// reader needs to decode shards selectively (the mmap-style access
/// path) or to inspect a model without materialising it.
#[derive(Debug, Clone)]
pub struct ShardTable {
    /// Container version ([`VERSION`] through [`VERSION_GRAMMAR`]).
    pub version: u8,
    /// Backend of every shard.
    pub backend: Backend,
    /// Total rows (validated against the decoded shards on full load).
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Byte range of each shard payload within the container.
    pub shard_ranges: Vec<std::ops::Range<usize>>,
    /// Per-shard reorder algorithm provenance (all `None` for version 1,
    /// which does not record it).
    pub reorder_algos: Vec<Option<ReorderAlgorithm>>,
    /// Byte ranges of shard `i`'s persisted plan blobs, one per row
    /// block — empty when the shard carries no persisted plan (always
    /// empty for versions below [`VERSION_PLANS`]). A non-empty entry
    /// means this container loads its plans by validated cast instead
    /// of compiling them.
    pub plan_ranges: Vec<Vec<std::ops::Range<usize>>>,
    /// Whether shard `i`'s persisted plans are single-precision
    /// (`f32`); meaningful only where
    /// [`plan_ranges`](Self::plan_ranges) is non-empty.
    pub plan_f32: Vec<bool>,
    /// Per-shard grammar-stage provenance (all `None` below
    /// [`VERSION_GRAMMAR`], and for shards written without a
    /// grammar-stage policy).
    pub grammar_stages: Vec<Option<GrammarStage>>,
    /// Per-shard input fingerprints for incremental rebuilds; recorded
    /// exactly where [`grammar_stages`](Self::grammar_stages) is `Some`.
    pub fingerprints: Vec<Option<u64>>,
}

impl ShardTable {
    /// Parses and checksum-verifies a container, returning its shard
    /// table without decoding any payload.
    ///
    /// # Errors
    /// Fails on bad magic/version/tag, truncation, or checksum mismatch.
    pub fn parse(data: &[u8]) -> Result<ShardTable, ServeError> {
        if data.len() < MAGIC.len() + 2 + 8 || &data[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let body_len = data.len() - 8;
        let stored = u64::from_le_bytes(data[body_len..].try_into().expect("8 bytes"));
        let actual = fnv1a64(&data[..body_len]);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:016x}, computed {actual:016x})"
            )));
        }
        let version = data[8];
        if !(VERSION..=VERSION_GRAMMAR).contains(&version) {
            return Err(corrupt(format!("unsupported container version {version}")));
        }
        let backend = Backend::from_tag(data[9]).ok_or_else(|| corrupt("unknown backend tag"))?;
        let mut pos = 10usize;
        let rows = varint::read_u64(data, &mut pos).ok_or_else(|| corrupt("bad rows"))?;
        let cols = varint::read_u64(data, &mut pos).ok_or_else(|| corrupt("bad cols"))?;
        // Plausibility bounds on the header dimensions, before either
        // value can size a downstream reservation — run on the raw u64
        // values so a 32-bit `as usize` cannot truncate a forged header
        // under the check (both row and column indices are u32
        // throughout the formats and the plan section).
        if cols > u64::from(u32::MAX) {
            return Err(corrupt("implausible column count"));
        }
        if rows > u64::from(u32::MAX) {
            return Err(corrupt("implausible row count"));
        }
        let (rows, cols) = (rows as usize, cols as usize);
        let num_shards =
            varint::read_u64(data, &mut pos).ok_or_else(|| corrupt("bad shard count"))?;
        if num_shards == 0 || num_shards > body_len as u64 {
            return Err(corrupt("implausible shard count"));
        }
        let num_shards = num_shards as usize;
        let mut shard_ranges = Vec::with_capacity(num_shards);
        let mut reorder_algos = Vec::with_capacity(num_shards);
        let mut grammar_stages = Vec::with_capacity(num_shards);
        let mut fingerprints = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            if version >= VERSION_PER_SHARD {
                let tag = *data
                    .get(pos)
                    .filter(|_| pos < body_len)
                    .ok_or_else(|| corrupt(format!("missing shard {i} reorder tag")))?;
                reorder_algos.push(
                    tag_reorder(tag)
                        .ok_or_else(|| corrupt(format!("unknown shard {i} reorder tag {tag}")))?,
                );
                pos += 1;
            } else {
                reorder_algos.push(None);
            }
            if version >= VERSION_GRAMMAR {
                let tag = *data
                    .get(pos)
                    .filter(|_| pos < body_len)
                    .ok_or_else(|| corrupt(format!("missing shard {i} grammar tag")))?;
                let stage = tag_grammar(tag)
                    .ok_or_else(|| corrupt(format!("unknown shard {i} grammar tag {tag}")))?;
                pos += 1;
                if stage.is_some() {
                    let end = pos
                        .checked_add(8)
                        .filter(|&e| e <= body_len)
                        .ok_or_else(|| corrupt(format!("missing shard {i} fingerprint")))?;
                    let fp =
                        u64::from_le_bytes(data[pos..end].try_into().expect("8 bytes checked"));
                    fingerprints.push(Some(fp));
                    pos = end;
                } else {
                    fingerprints.push(None);
                }
                grammar_stages.push(stage);
            } else {
                grammar_stages.push(None);
                fingerprints.push(None);
            }
            let len = varint::read_u64(data, &mut pos)
                .ok_or_else(|| corrupt(format!("bad shard {i} length")))?;
            // Bounded against the remaining body as u64, so the cast
            // below cannot truncate a forged length into range.
            if len > body_len.saturating_sub(pos) as u64 {
                return Err(corrupt(format!("shard {i} overruns container")));
            }
            let end = pos + len as usize;
            shard_ranges.push(pos..end);
            pos = end;
        }
        let mut plan_ranges = vec![Vec::new(); num_shards];
        let mut plan_f32 = vec![false; num_shards];
        if version >= VERSION_PLANS {
            for i in 0..num_shards {
                let kind = *data
                    .get(pos)
                    .filter(|_| pos < body_len)
                    .ok_or_else(|| corrupt(format!("missing shard {i} plan kind")))?;
                pos += 1;
                if kind == 0 {
                    continue;
                }
                if kind > 2 {
                    return Err(corrupt(format!("unknown shard {i} plan kind {kind}")));
                }
                plan_f32[i] = kind == 2;
                let count = varint::read_u64(data, &mut pos)
                    .ok_or_else(|| corrupt(format!("bad shard {i} plan count")))?;
                // Every blob needs bytes behind it, so the remaining
                // body bounds any plausible count — checked on the raw
                // u64 before the count sizes anything.
                if count == 0 || count > body_len.saturating_sub(pos) as u64 {
                    return Err(corrupt(format!("implausible shard {i} plan count")));
                }
                let mut ranges = Vec::with_capacity(count as usize);
                for j in 0..count {
                    let len = varint::read_u64(data, &mut pos)
                        .ok_or_else(|| corrupt(format!("bad shard {i} plan {j} length")))?;
                    if len > body_len.saturating_sub(pos) as u64 {
                        return Err(corrupt(format!("shard {i} plan {j} overruns container")));
                    }
                    let end = pos + len as usize;
                    ranges.push(pos..end);
                    pos = end;
                }
                plan_ranges[i] = ranges;
            }
        }
        if pos != body_len {
            return Err(corrupt("trailing bytes after shard table"));
        }
        Ok(ShardTable {
            version,
            backend,
            rows,
            cols,
            shard_ranges,
            reorder_algos,
            plan_ranges,
            plan_f32,
            grammar_stages,
            fingerprints,
        })
    }

    /// Decodes the single shard `i` from the container bytes the table
    /// was parsed from.
    ///
    /// # Errors
    /// Fails if the payload is structurally invalid.
    pub fn decode_shard(&self, data: &[u8], i: usize) -> Result<Model, ServeError> {
        self.decode_shard_with_order(data, i).map(|(m, _)| m)
    }

    /// As [`decode_shard`](Self::decode_shard), also returning the
    /// column permutation the shard was compressed with.
    ///
    /// # Errors
    /// Fails if the payload is structurally invalid.
    pub fn decode_shard_with_order(
        &self,
        data: &[u8],
        i: usize,
    ) -> Result<(Model, Option<Vec<u32>>), ServeError> {
        let range = self
            .shard_ranges
            .get(i)
            .ok_or_else(|| corrupt(format!("shard {i} out of range")))?
            .clone();
        decode_shard(self.backend, self.cols, &data[range])
    }

    /// Total bytes of the persisted plan section (0 when the container
    /// carries none) — what `gcm inspect` reports as the cast-on-load
    /// footprint.
    pub fn plan_bytes(&self) -> usize {
        self.plan_ranges
            .iter()
            .flatten()
            .map(std::ops::Range::len)
            .sum()
    }
}

/// Deserialises shard `i`'s persisted plan blobs and checks them
/// against the decoded shard `model` (one blob per row block, matching
/// rows/cols/rule counts — a mismatched plan would compute the wrong
/// product). Pure cast-and-validate: no grammar decode, no
/// compilation.
fn decode_shard_plan(
    table: &ShardTable,
    data: &[u8],
    i: usize,
    model: &Model,
) -> Result<ModelPlan, ServeError> {
    let ranges = &table.plan_ranges[i];
    let dims: Vec<(usize, usize, usize)> = match model {
        Model::Compressed(m) => vec![(m.rows(), m.cols(), m.lowered_rules())],
        Model::Blocked(m) => m
            .blocks()
            .iter()
            .map(|b| (b.rows(), b.cols(), b.lowered_rules()))
            .collect(),
        _ => {
            return Err(corrupt(format!(
                "shard {i} persists plans for an unplannable backend"
            )))
        }
    };
    if ranges.len() != dims.len() {
        return Err(corrupt(format!(
            "shard {i} plan count mismatches its row blocks"
        )));
    }
    let f32 = table.plan_f32[i];
    let mut plans64 = Vec::with_capacity(if f32 { 0 } else { ranges.len() });
    let mut plans32 = Vec::with_capacity(if f32 { ranges.len() } else { 0 });
    for (j, (range, &(rows, cols, rules))) in ranges.iter().zip(&dims).enumerate() {
        let blob = &data[range.clone()];
        let got = if f32 {
            let p = KernelPlanF32::from_bytes(blob)
                .ok_or_else(|| corrupt(format!("invalid shard {i} plan blob {j}")))?;
            let got = (p.rows(), p.cols(), p.num_rules());
            plans32.push(p);
            got
        } else {
            let p = KernelPlan::from_bytes(blob)
                .ok_or_else(|| corrupt(format!("invalid shard {i} plan blob {j}")))?;
            let got = (p.rows(), p.cols(), p.num_rules());
            plans64.push(p);
            got
        };
        if got != (rows, cols, rules) {
            return Err(corrupt(format!("shard {i} plan {j} mismatches its matrix")));
        }
    }
    Ok(match (model, f32) {
        (Model::Compressed(_), false) => ModelPlan::Compressed(plans64.pop().expect("one blob")),
        (Model::Compressed(_), true) => ModelPlan::CompressedF32(plans32.pop().expect("one blob")),
        (Model::Blocked(_), false) => ModelPlan::Blocked(plans64),
        (_, true) => ModelPlan::BlockedF32(plans32),
        _ => unreachable!("unplannable backends rejected above"),
    })
}

/// Deserialises a container into a ready-to-serve [`ShardedModel`],
/// decoding shards **concurrently** on the persistent pool via the
/// [`ShardTable`] (each worker decodes its shard's byte range
/// independently — the mmap-style selective access path, driven by the
/// same stage machinery the build pipeline uses). Single-shard
/// containers decode inline.
///
/// Bare `GCMMAT1` / `GCMMAT2` payloads are accepted as single-shard
/// compressed models.
///
/// # Errors
/// Fails on any structural violation; never panics on corrupt input.
pub fn from_bytes(data: &[u8]) -> Result<ShardedModel, ServeError> {
    decode(data, true)
}

/// As [`from_bytes`], decoding every shard sequentially on the calling
/// thread — the reference path the parallel loader is benchmarked and
/// differentially tested against.
///
/// # Errors
/// As [`from_bytes`].
pub fn from_bytes_sequential(data: &[u8]) -> Result<ShardedModel, ServeError> {
    decode(data, false)
}

fn decode(data: &[u8], parallel: bool) -> Result<ShardedModel, ServeError> {
    if data.len() >= 8 && &data[..8] == b"GCMMAT1\0" {
        let m = serial::from_bytes(data).ok_or_else(|| corrupt("invalid GCMMAT1 payload"))?;
        let cols = m.cols();
        return Ok(ShardedModel::from_parts(
            vec![Model::Compressed(m)],
            cols,
            None,
        ));
    }
    if data.len() >= 8 && &data[..8] == b"GCMMAT2\0" {
        let (blocks, order) =
            serial::bundle_from_bytes(data).ok_or_else(|| corrupt("invalid GCMMAT2 payload"))?;
        let cols = blocks[0].cols();
        let model = if blocks.len() == 1 {
            Model::Compressed(blocks.into_iter().next().expect("one block"))
        } else {
            Model::Blocked(BlockedMatrix::from_blocks(blocks, cols))
        };
        return Ok(ShardedModel::from_parts(vec![model], cols, order));
    }
    let table = ShardTable::parse(data)?;
    let n = table.shard_ranges.len();
    type Decoded = Result<(Model, Option<Vec<u32>>), ServeError>;
    let decoded: Vec<Decoded> = if parallel {
        gcm_pipeline::par_map(n, |i| table.decode_shard_with_order(data, i))
    } else {
        (0..n)
            .map(|i| table.decode_shard_with_order(data, i))
            .collect()
    };
    let mut parts = Vec::with_capacity(n);
    let mut first_order: Option<Option<Vec<u32>>> = None;
    for (i, result) in decoded.into_iter().enumerate() {
        let (model, order) = result?;
        if model.cols() != table.cols {
            return Err(corrupt(format!("shard {i} column count mismatch")));
        }
        if let Some(order) = &order {
            if order.len() != table.cols {
                return Err(corrupt("column order length mismatch"));
            }
        }
        if table.version == VERSION {
            // Version 1 embeds the one model-wide permutation
            // redundantly in every shard; the redundancy exists to catch
            // exactly this inconsistency.
            match &first_order {
                None => first_order = Some(order.clone()),
                Some(first) => {
                    if order != *first {
                        return Err(corrupt(format!(
                            "shard {i} disagrees with shard 0 on the column reorder"
                        )));
                    }
                }
            }
        }
        parts.push((
            model,
            order,
            table.reorder_algos[i],
            table.grammar_stages[i],
            table.fingerprints[i],
        ));
    }
    let model = ShardedModel::from_shards(parts, table.cols);
    if model.rows() != table.rows {
        return Err(corrupt(format!(
            "header promises {} rows, shards hold {}",
            table.rows,
            model.rows()
        )));
    }
    // Version 4 plan section: deserialize each persisted plan and
    // install it — a validated cast, not a recompilation, so load time
    // stays flat in grammar size and the first prewarm is a cheap
    // budget-warming pass.
    for (i, ranges) in table.plan_ranges.iter().enumerate() {
        if ranges.is_empty() {
            continue;
        }
        let plan = decode_shard_plan(&table, data, i, model.shard_model(i))?;
        model.install_plan(i, plan);
    }
    Ok(model)
}

impl ShardedModel {
    /// Serialises this model as a `GCMSERV1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Serialises this model with its compiled plans persisted as the
    /// version-4 plan section (see [`to_bytes_with_plans`]); identical
    /// to [`to_bytes`](Self::to_bytes) when no shard carries a plan.
    pub fn to_bytes_with_plans(&self) -> Vec<u8> {
        to_bytes_with_plans(self)
    }

    /// Deserialises a container (see [`from_bytes`]).
    ///
    /// # Errors
    /// Fails on any structural violation.
    pub fn from_bytes(data: &[u8]) -> Result<ShardedModel, ServeError> {
        from_bytes(data)
    }

    /// Writes the container to `path` (atomically via a sibling temp
    /// file, so readers never observe a half-written model).
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        Self::write_atomic(path, &self.to_bytes())
    }

    /// As [`save`](Self::save), persisting compiled plans (`gcm
    /// compress --emit-plans` writes containers through this).
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn save_with_plans(&self, path: &Path) -> Result<(), ServeError> {
        Self::write_atomic(path, &self.to_bytes_with_plans())
    }

    pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a container from `path`.
    ///
    /// # Errors
    /// Fails on filesystem errors or a corrupt container.
    pub fn load(path: &Path) -> Result<ShardedModel, ServeError> {
        let bytes = std::fs::read(path)?;
        from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::BuildOptions;
    use gcm_core::Encoding;
    use gcm_matrix::{DenseMatrix, MatVec};

    fn sample() -> DenseMatrix {
        let mut m = DenseMatrix::zeros(37, 8);
        for r in 0..37 {
            for c in 0..8 {
                if (r + c) % 3 != 0 {
                    m.set(r, c, (((r * 2 + c) % 6) + 1) as f64 * 0.5);
                }
            }
        }
        m
    }

    #[test]
    fn container_roundtrips_every_backend() {
        let dense = sample();
        for backend in Backend::ALL {
            for shards in [1usize, 3] {
                let opts = BuildOptions {
                    backend,
                    shards,
                    blocks: 2,
                    encoding: Encoding::ReIv,
                    ..BuildOptions::default()
                };
                let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                let bytes = model.to_bytes();
                let back = ShardedModel::from_bytes(&bytes).expect("roundtrip");
                assert_eq!(back.backend(), backend);
                assert_eq!(back.num_shards(), shards);
                assert_eq!(back.rows(), 37);
                assert_eq!(back.cols(), 8);
                let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
                let mut y_a = vec![0.0; 37];
                let mut y_b = vec![0.0; 37];
                model.right_multiply_panel(1, &x, &mut y_a).unwrap();
                back.right_multiply_panel(1, &x, &mut y_b).unwrap();
                assert_eq!(y_a, y_b, "{} s={shards}", backend.name());
            }
        }
    }

    #[test]
    fn container_preserves_reorder_metadata_for_every_backend() {
        let dense = sample();
        for backend in Backend::ALL {
            let opts = BuildOptions {
                backend,
                shards: 2,
                reorder: Some(crate::ReorderMode::Global(
                    gcm_reorder::ReorderAlgorithm::PathCover,
                )),
                ..BuildOptions::default()
            };
            let model = ShardedModel::from_dense(&dense, &opts).unwrap();
            let order = model.col_order().unwrap().to_vec();
            let bytes = model.to_bytes();
            assert_eq!(bytes[8], VERSION_PER_SHARD, "reorder metadata => v2");
            let back = ShardedModel::from_bytes(&bytes).unwrap();
            assert_eq!(back.col_order(), Some(&order[..]), "{}", backend.name());
            for i in 0..back.num_shards() {
                assert_eq!(
                    back.shard_reorder(i),
                    Some(gcm_reorder::ReorderAlgorithm::PathCover),
                    "{} shard {i} provenance",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn per_shard_orders_roundtrip_with_version_bump() {
        // Two shards with *different* correlated column pairs: per-shard
        // reordering records distinct permutations, and the container
        // must round-trip each shard's own order.
        let mut dense = DenseMatrix::zeros(24, 8);
        for r in 0..24 {
            let v = ((r * 5 % 7) + 1) as f64;
            if r < 12 {
                dense.set(r, 0, v);
                dense.set(r, 4, v);
            } else {
                dense.set(r, 1, v);
                dense.set(r, 5, v);
            }
        }
        for backend in [Backend::Compressed, Backend::Blocked, Backend::Csrv] {
            let opts = BuildOptions {
                backend,
                shards: 2,
                blocks: 2,
                reorder: Some(crate::ReorderMode::PerShard(
                    gcm_reorder::ReorderAlgorithm::PathCover,
                )),
                ..BuildOptions::default()
            };
            let model = ShardedModel::from_dense(&dense, &opts).unwrap();
            let bytes = model.to_bytes();
            assert_eq!(bytes[8], VERSION_PER_SHARD);
            let back = ShardedModel::from_bytes(&bytes).expect("per-shard orders must load");
            for i in 0..2 {
                assert_eq!(
                    back.shard_col_order(i),
                    model.shard_col_order(i),
                    "{} shard {i}",
                    backend.name()
                );
            }
            // Distinct per-shard permutations survive the round-trip
            // (shard 0 pairs (0,4); shard 1 pairs (1,5)).
            assert_ne!(back.shard_col_order(0), back.shard_col_order(1));
            assert_eq!(back.col_order(), None, "no uniform order to report");
            let x = vec![1.0; 8];
            let mut y_a = vec![0.0; 24];
            let mut y_b = vec![0.0; 24];
            model.right_multiply_panel(1, &x, &mut y_a).unwrap();
            back.right_multiply_panel(1, &x, &mut y_b).unwrap();
            assert_eq!(y_a, y_b, "{}", backend.name());
        }
    }

    #[test]
    fn version1_containers_still_load() {
        // Synthesise a version-1 container from a version-2 one (strip
        // the per-shard reorder tags, reset the version byte) and check
        // it loads with the order attributed to every shard — the
        // backward-compatibility contract for pre-v2 files.
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 3,
                reorder: Some(crate::ReorderMode::Global(
                    gcm_reorder::ReorderAlgorithm::Mwm,
                )),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let v2 = model.to_bytes();
        let table = ShardTable::parse(&v2).unwrap();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.push(VERSION);
        v1.push(model.backend().tag());
        varint::write_u64(&mut v1, model.rows() as u64);
        varint::write_u64(&mut v1, model.cols() as u64);
        varint::write_u64(&mut v1, model.num_shards() as u64);
        for range in &table.shard_ranges {
            varint::write_u64(&mut v1, range.len() as u64);
            v1.extend_from_slice(&v2[range.clone()]);
        }
        let sum = fnv1a64(&v1);
        v1.extend_from_slice(&sum.to_le_bytes());

        let back = ShardedModel::from_bytes(&v1).expect("v1 container must load");
        assert_eq!(back.num_shards(), 3);
        assert_eq!(back.col_order(), model.col_order());
        // v1 records no algorithm provenance.
        assert_eq!(back.shard_reorder(0), None);
        let x = vec![1.0; 8];
        let mut y_a = vec![0.0; 37];
        let mut y_b = vec![0.0; 37];
        model.right_multiply_panel(1, &x, &mut y_a).unwrap();
        back.right_multiply_panel(1, &x, &mut y_b).unwrap();
        assert_eq!(y_a, y_b);

        // A v1 container whose shards disagree on the order is corrupt
        // (the old redundancy check stays for old files): flip the
        // version byte back on a v2 per-shard container and watch it be
        // rejected. Build one with genuinely distinct orders first.
        let mut split = DenseMatrix::zeros(24, 8);
        for r in 0..24 {
            let v = ((r * 5 % 7) + 1) as f64;
            if r < 12 {
                split.set(r, 0, v);
                split.set(r, 4, v);
            } else {
                split.set(r, 1, v);
                split.set(r, 5, v);
            }
        }
        let per_shard = ShardedModel::from_dense(
            &split,
            &BuildOptions {
                shards: 2,
                reorder: Some(crate::ReorderMode::PerShard(
                    gcm_reorder::ReorderAlgorithm::PathCover,
                )),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert_ne!(
            per_shard.shard_col_order(0),
            per_shard.shard_col_order(1),
            "test needs genuinely distinct orders"
        );
        let v2 = per_shard.to_bytes();
        let table = ShardTable::parse(&v2).unwrap();
        let mut forged_v1 = Vec::new();
        forged_v1.extend_from_slice(MAGIC);
        forged_v1.push(VERSION);
        forged_v1.push(per_shard.backend().tag());
        varint::write_u64(&mut forged_v1, per_shard.rows() as u64);
        varint::write_u64(&mut forged_v1, per_shard.cols() as u64);
        varint::write_u64(&mut forged_v1, per_shard.num_shards() as u64);
        for range in &table.shard_ranges {
            varint::write_u64(&mut forged_v1, range.len() as u64);
            forged_v1.extend_from_slice(&v2[range.clone()]);
        }
        let sum = fnv1a64(&forged_v1);
        forged_v1.extend_from_slice(&sum.to_le_bytes());
        let err = ShardedModel::from_bytes(&forged_v1).expect_err("v1 disagreement is corrupt");
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn forged_length_headers_are_rejected_without_panicking() {
        // Huge varint length fields must not overflow the slice
        // arithmetic (debug: add-overflow panic; release: inverted
        // range) anywhere in the loading stack.
        use gcm_encodings::varint;
        // GCMCSRV1 with n_values = 2^61 - 1.
        let mut forged = b"GCMCSRV1".to_vec();
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, 1); // cols
        varint::write_u64(&mut forged, (1u64 << 61) - 1); // |V|
        let mut pos = 0;
        assert!(gcm_matrix::io::read_csrv_bytes(&forged, &mut pos).is_none());
        // Bare GCMMAT2 with cols = 2^63 (first_nt multiply overflow).
        let mut forged = b"GCMMAT2\0".to_vec();
        forged.push(0); // re_32 tag
        varint::write_u64(&mut forged, 1u64 << 63); // cols
        varint::write_u64(&mut forged, 0); // no order
        varint::write_u64(&mut forged, 2); // |V|
        forged.extend_from_slice(&[0u8; 16]);
        assert!(gcm_core::serial::bundle_from_bytes(&forged).is_none());
        assert!(ShardedModel::from_bytes(&forged).is_err());
        // Bare GCMMAT1 with n_values = 2^61 - 1.
        let mut forged = b"GCMMAT1\0".to_vec();
        forged.push(0); // re_32 tag
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, 1); // cols
        varint::write_u64(&mut forged, 2); // first_nt
        varint::write_u64(&mut forged, (1u64 << 61) - 1); // |V|
        assert!(gcm_core::serial::from_bytes(&forged).is_none());
        assert!(ShardedModel::from_bytes(&forged).is_err());
        // GCMCSRV1 with |V| = 0 and an absurd column count: would pass
        // the terminal-limit check (limit = 1) yet explode every
        // cols-proportional allocation downstream (prewarm, inspect).
        let mut forged = b"GCMCSRV1".to_vec();
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, 1u64 << 62); // cols
        varint::write_u64(&mut forged, 0); // |V|
        varint::write_u64(&mut forged, 1); // |S|
        forged.extend_from_slice(&0u32.to_le_bytes()); // one separator
        let mut pos = 0;
        assert!(gcm_matrix::io::read_csrv_bytes(&forged, &mut pos).is_none());
        // GCMCSRV1 whose |V|·cols product lands exactly on u64::MAX, so
        // the +1 in the terminal limit overflows if unchecked.
        let mut forged = b"GCMCSRV1".to_vec();
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, u64::MAX / 5); // cols (rejected: > u32::MAX)
        varint::write_u64(&mut forged, 5); // |V|
        forged.extend_from_slice(&[0u8; 40]);
        let mut pos = 0;
        assert!(gcm_matrix::io::read_csrv_bytes(&forged, &mut pos).is_none());
        // A GCMMAT2 claiming one block per remaining byte is rejected by
        // the block-count plausibility bound before any reservation.
        let mut forged = b"GCMMAT2\0".to_vec();
        forged.push(0); // re_32 tag
        varint::write_u64(&mut forged, 1); // cols
        varint::write_u64(&mut forged, 0); // no order
        varint::write_u64(&mut forged, 0); // |V|
        varint::write_u64(&mut forged, 1 << 40); // num_blocks
        assert!(gcm_core::serial::bundle_from_bytes(&forged).is_none());
    }

    #[test]
    fn shard_table_decodes_single_shards() {
        let dense = sample();
        let opts = BuildOptions {
            shards: 4,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        let bytes = model.to_bytes();
        let table = ShardTable::parse(&bytes).unwrap();
        assert_eq!(table.shard_ranges.len(), 4);
        let mut rows = 0usize;
        for i in 0..4 {
            let shard = table.decode_shard(&bytes, i).unwrap();
            assert_eq!(shard.cols(), 8);
            rows += shard.rows();
        }
        assert_eq!(rows, 37);
        assert!(table.decode_shard(&bytes, 4).is_err());
    }

    #[test]
    fn accepts_bare_gcmmat1_files() {
        let dense = sample();
        let csrv = gcm_matrix::CsrvMatrix::from_dense(&dense).unwrap();
        let cm = gcm_core::CompressedMatrix::compress(&csrv, Encoding::ReAns);
        let bytes = gcm_core::serial::to_bytes(&cm);
        let model = ShardedModel::from_bytes(&bytes).expect("GCMMAT1 compat");
        assert_eq!(model.backend(), Backend::Compressed);
        assert_eq!(model.rows(), 37);
        let x = vec![1.0; 8];
        let mut y_a = vec![0.0; 37];
        let mut y_b = vec![0.0; 37];
        cm.right_multiply(&x, &mut y_a).unwrap();
        model.right_multiply_panel(1, &x, &mut y_b).unwrap();
        assert_eq!(y_a, y_b);
    }

    #[test]
    fn checksum_rejects_any_single_byte_flip() {
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let bytes = model.to_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(ShardedModel::from_bytes(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn plan_section_roundtrips_without_recompiling() {
        use crate::sharded::ServeOptions;
        let dense = sample();
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        for backend in [Backend::Compressed, Backend::Blocked] {
            for shards in [1usize, 3] {
                for f32_plans in [false, true] {
                    let opts = BuildOptions {
                        backend,
                        shards,
                        blocks: 2,
                        encoding: Encoding::ReIv,
                        ..BuildOptions::default()
                    };
                    let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                    let serve = if f32_plans {
                        ServeOptions::planned_f32()
                    } else {
                        ServeOptions::planned()
                    };
                    model.prewarm_with(2, &serve);
                    let bytes = model.to_bytes_with_plans();
                    assert_eq!(bytes[8], VERSION_PLANS, "{} s={shards}", backend.name());
                    let table = ShardTable::parse(&bytes).unwrap();
                    assert!(table.plan_bytes() > 0, "{} s={shards}", backend.name());
                    assert_eq!(table.plan_f32, vec![f32_plans; shards]);

                    // Loading must cast the plans back in, not compile.
                    let before = gcm_core::plan_compiles();
                    let back = ShardedModel::from_bytes(&bytes).expect("v4 roundtrip");
                    assert_eq!(
                        gcm_core::plan_compiles(),
                        before,
                        "{} s={shards}: load must not compile",
                        backend.name()
                    );
                    assert!(back.is_planned(), "{} s={shards}", backend.name());
                    assert_eq!(back.is_planned_f32(), f32_plans);
                    // Deserialized plans are exact-capacity; compiled
                    // ones may carry growth slack, so compare loosely.
                    let loaded = back.plan_heap_bytes();
                    assert!(loaded > 0 && loaded <= model.plan_heap_bytes());

                    // The restored plans serve bit-identically.
                    let mut y_a = vec![0.0; 37];
                    let mut y_b = vec![0.0; 37];
                    model.right_multiply_panel(1, &x, &mut y_a).unwrap();
                    back.right_multiply_panel(1, &x, &mut y_b).unwrap();
                    assert_eq!(y_a, y_b, "{} s={shards}", backend.name());

                    // A plan-enabled prewarm on the loaded model is a
                    // validation pass: it must reuse the installed
                    // plans, not rebuild them.
                    let before = gcm_core::plan_compiles();
                    back.prewarm_with(2, &serve);
                    assert_eq!(
                        gcm_core::plan_compiles(),
                        before,
                        "{} s={shards}: prewarm after v4 load must not compile",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn plan_section_is_omitted_when_nothing_is_planned() {
        use crate::sharded::ServeOptions;
        let dense = sample();
        // No prewarm: no plans, so the with-plans writer emits the
        // byte-identical lower-version container.
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert_eq!(model.to_bytes_with_plans(), model.to_bytes());
        // Unplannable backends stay below v4 even after a planned
        // prewarm (`compile_with` has nothing to build for them).
        let csrv = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                backend: Backend::Csrv,
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        csrv.prewarm_with(2, &ServeOptions::planned());
        assert!(!csrv.is_planned());
        let bytes = csrv.to_bytes_with_plans();
        assert_eq!(bytes, csrv.to_bytes());
        assert!(bytes[8] < VERSION_PLANS);
        assert_eq!(ShardTable::parse(&bytes).unwrap().plan_bytes(), 0);
    }

    #[test]
    fn forged_plan_sections_are_rejected() {
        use crate::sharded::ServeOptions;
        fn refresh_checksum(bytes: &mut [u8]) {
            let body = bytes.len() - 8;
            let sum = fnv1a64(&bytes[..body]);
            bytes[body..].copy_from_slice(&sum.to_le_bytes());
        }
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 1,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        model.prewarm_with(2, &ServeOptions::planned());
        let bytes = model.to_bytes_with_plans();
        let table = ShardTable::parse(&bytes).unwrap();
        // The shard 0 kind byte sits right after its payload.
        let kind_pos = table.shard_ranges[0].end;
        assert_eq!(bytes[kind_pos], 1, "f64 plan kind");

        // Unknown plan kind.
        let mut bad = bytes.clone();
        bad[kind_pos] = 3;
        refresh_checksum(&mut bad);
        let err = ShardedModel::from_bytes(&bad).expect_err("kind 3 is corrupt");
        assert!(err.to_string().contains("plan kind"), "{err}");

        // Claiming `f32` for an `f64` blob trips the precision tag.
        let mut bad = bytes.clone();
        bad[kind_pos] = 2;
        refresh_checksum(&mut bad);
        assert!(ShardedModel::from_bytes(&bad).is_err());

        // A corrupted blob magic is caught even with a valid container
        // checksum.
        let blob_start = table.plan_ranges[0][0].start;
        let mut bad = bytes.clone();
        bad[blob_start] ^= 0xFF;
        refresh_checksum(&mut bad);
        let err = ShardedModel::from_bytes(&bad).expect_err("bad blob magic is corrupt");
        assert!(err.to_string().contains("plan blob"), "{err}");

        // Truncating the plan section leaves trailing-length garbage.
        let mut bad = bytes[..table.plan_ranges[0][0].end - 4].to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        refresh_checksum(&mut bad);
        assert!(ShardedModel::from_bytes(&bad).is_err());
    }

    #[test]
    fn row_subset_matches_full_product_after_v4_load() {
        use crate::sharded::ServeOptions;
        let dense = sample();
        for backend in [Backend::Compressed, Backend::Blocked] {
            let model = ShardedModel::from_dense(
                &dense,
                &BuildOptions {
                    backend,
                    shards: 3,
                    blocks: 2,
                    ..BuildOptions::default()
                },
            )
            .unwrap();
            model.prewarm_with(2, &ServeOptions::planned());
            let back = ShardedModel::from_bytes(&model.to_bytes_with_plans()).unwrap();
            let k = 2usize;
            let x: Vec<f64> = (0..8 * k).map(|i| (i % 5) as f64 * 0.5 - 1.0).collect();
            let mut y_full = vec![0.0; 37 * k];
            back.right_multiply_panel(k, &x, &mut y_full).unwrap();
            for range in [0..5usize, 10..25, 36..37, 0..37, 12..12] {
                let mut y_sub = vec![0.0; range.len() * k];
                back.right_multiply_rows(range.clone(), k, &x, &mut y_sub)
                    .unwrap();
                assert_eq!(
                    y_sub,
                    y_full[range.start * k..range.end * k].to_vec(),
                    "{} rows {range:?}",
                    backend.name()
                );
            }
            let mut y_sub = vec![0.0; 2 * 2];
            assert!(back.right_multiply_rows(36..38, 2, &x, &mut y_sub).is_err());
        }
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("gcm-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gcms");
        model.save(&path).unwrap();
        let back = ShardedModel::load(&path).unwrap();
        assert_eq!(back.rows(), model.rows());
        assert_eq!(back.stored_bytes(), model.stored_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grammar_metadata_roundtrips_in_version5_containers() {
        use crate::sharded::ServeOptions;
        use gcm_pipeline::GrammarChoice;
        let dense = sample();
        for backend in [Backend::Compressed, Backend::Blocked] {
            for grammar in [
                GrammarChoice::RePair,
                GrammarChoice::MrRePair,
                GrammarChoice::Auto,
            ] {
                for plans in [false, true] {
                    let model = ShardedModel::from_dense(
                        &dense,
                        &BuildOptions {
                            backend,
                            shards: 2,
                            blocks: 2,
                            grammar: Some(grammar),
                            ..BuildOptions::default()
                        },
                    )
                    .unwrap();
                    let bytes = if plans {
                        model.prewarm_with(1, &ServeOptions::planned());
                        model.to_bytes_with_plans()
                    } else {
                        model.to_bytes()
                    };
                    let tag = format!("{} {grammar:?} plans={plans}", backend.name());
                    assert_eq!(bytes[8], VERSION_GRAMMAR, "{tag}: grammar metadata => v5");
                    let table = ShardTable::parse(&bytes).unwrap();
                    assert_eq!(table.plan_bytes() > 0, plans, "{tag}");
                    for i in 0..2 {
                        assert!(table.grammar_stages[i].is_some(), "{tag} shard {i}");
                        assert!(table.fingerprints[i].is_some(), "{tag} shard {i}");
                    }
                    let back = ShardedModel::from_bytes(&bytes).expect("v5 roundtrip");
                    for i in 0..2 {
                        assert_eq!(back.shard_grammar(i), model.shard_grammar(i), "{tag}");
                        assert_eq!(
                            back.shard_fingerprint(i),
                            model.shard_fingerprint(i),
                            "{tag}"
                        );
                    }
                    // Re-serialising the loaded model reproduces the
                    // container byte-for-byte: nothing is lost in the
                    // v5 round-trip.
                    let again = if plans {
                        back.to_bytes_with_plans()
                    } else {
                        back.to_bytes()
                    };
                    assert_eq!(again, bytes, "{tag}: reserialise");
                    let x = vec![1.0; 8];
                    let mut y_a = vec![0.0; 37];
                    let mut y_b = vec![0.0; 37];
                    model.right_multiply_panel(1, &x, &mut y_a).unwrap();
                    back.right_multiply_panel(1, &x, &mut y_b).unwrap();
                    assert_eq!(y_a, y_b, "{tag}");
                }
            }
        }
    }

    #[test]
    fn legacy_builds_keep_emitting_pre_v5_bytes() {
        // `grammar: None` is the compatibility path: no per-shard
        // metadata, and the writer picks the same pre-grammar version.
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let bytes = model.to_bytes();
        assert!(bytes[8] < VERSION_GRAMMAR);
        let table = ShardTable::parse(&bytes).unwrap();
        assert_eq!(table.grammar_stages, vec![None, None]);
        assert_eq!(table.fingerprints, vec![None, None]);
        let back = ShardedModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.shard_grammar(0), None);
        assert_eq!(back.shard_fingerprint(0), None);
    }

    #[test]
    fn version5_accepts_metadata_free_shards() {
        // A v5 container may carry stage tag 0 for shards spliced from
        // legacy builds: synthesise one from a plain v1 container (its
        // dims are small enough that every header varint is one byte).
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let plain = model.to_bytes();
        let table = ShardTable::parse(&plain).unwrap();
        let mut v5 = Vec::new();
        v5.extend_from_slice(MAGIC);
        v5.push(VERSION_GRAMMAR);
        v5.push(model.backend().tag());
        varint::write_u64(&mut v5, model.rows() as u64);
        varint::write_u64(&mut v5, model.cols() as u64);
        varint::write_u64(&mut v5, model.num_shards() as u64);
        for range in &table.shard_ranges {
            v5.push(0); // no reorder
            v5.push(0); // no grammar stage, so no fingerprint either
            varint::write_u64(&mut v5, range.len() as u64);
            v5.extend_from_slice(&plain[range.clone()]);
        }
        v5.extend_from_slice(&[0, 0]); // plan kinds: v5 always has them
        let sum = fnv1a64(&v5);
        v5.extend_from_slice(&sum.to_le_bytes());
        let back = ShardedModel::from_bytes(&v5).expect("metadata-free v5 must load");
        assert_eq!(back.num_shards(), 2);
        assert_eq!(back.shard_grammar(0), None);
        assert_eq!(back.shard_fingerprint(0), None);
        let x = vec![1.0; 8];
        let mut y_a = vec![0.0; 37];
        let mut y_b = vec![0.0; 37];
        model.right_multiply_panel(1, &x, &mut y_a).unwrap();
        back.right_multiply_panel(1, &x, &mut y_b).unwrap();
        assert_eq!(y_a, y_b);
    }

    #[test]
    fn forged_grammar_metadata_is_rejected() {
        use gcm_pipeline::GrammarChoice;
        fn refresh_checksum(bytes: &mut [u8]) {
            let body = bytes.len() - 8;
            let sum = fnv1a64(&bytes[..body]);
            bytes[body..].copy_from_slice(&sum.to_le_bytes());
        }
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                grammar: Some(GrammarChoice::MrRePair),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let bytes = model.to_bytes();
        // Header varints (37 rows, 8 cols, 2 shards) are one byte each,
        // so shard 0's reorder tag is at 13 and its grammar tag at 14.
        assert_eq!(bytes[13], 0, "no reorder recorded");
        assert_eq!(bytes[14], 2, "mr-repair stage tag");

        // Unknown stage tag.
        let mut bad = bytes.clone();
        bad[14] = 9;
        refresh_checksum(&mut bad);
        let err = ShardedModel::from_bytes(&bad).expect_err("tag 9 is corrupt");
        assert!(err.to_string().contains("grammar tag"), "{err}");

        // A container truncated inside the fingerprint is rejected at
        // the bounds check, before anything is sized from it.
        let mut truncated = bytes[..18].to_vec(); // tag + 3 of 8 fp bytes
        truncated.extend_from_slice(&[0u8; 8]);
        refresh_checksum(&mut truncated);
        let err = ShardedModel::from_bytes(&truncated).expect_err("truncated fp is corrupt");
        assert!(
            err.to_string().contains("fingerprint") || err.to_string().contains("shard"),
            "{err}"
        );

        // Flipping a fingerprint byte still parses (the fingerprint is
        // provenance, not a structural field) but changes the recorded
        // value — and the checksum catches the flip without the refresh.
        let mut flipped = bytes.clone();
        flipped[15] ^= 0xFF;
        assert!(ShardedModel::from_bytes(&flipped).is_err(), "checksum");
        refresh_checksum(&mut flipped);
        let back = ShardedModel::from_bytes(&flipped).expect("fp is not structural");
        assert_ne!(back.shard_fingerprint(0), model.shard_fingerprint(0));
    }
}
