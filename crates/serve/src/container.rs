//! The versioned on-disk model container (`GCMSERV1`).
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "GCMSERV1" | u8 container version | u8 backend tag
//! rows | cols | num_shards
//! per shard: payload_len | payload bytes
//! u64 LE FNV-1a checksum of every preceding byte
//! ```
//!
//! Shard payloads by backend:
//!
//! * `csrv` — a column-order prefix (varint len + u32 LE entries, `0` =
//!   none) then a `GCMCSRV1` section
//!   ([`gcm_matrix::io::write_csrv_bytes`]);
//! * `parcsrv` — the same column-order prefix, a varint block count,
//!   then a `GCMCSRV1` section of the reassembled whole shard;
//! * `compressed` — a single-block `GCMMAT2` bundle
//!   ([`gcm_core::serial::bundle_to_bytes`]), which also carries the
//!   column-reorder permutation;
//! * `blocked` — a multi-block `GCMMAT2` bundle (block structure +
//!   permutation).
//!
//! The shard table makes the container *mmap-style*: a reader can locate
//! and decode one shard's byte range without touching the others
//! ([`ShardTable`]), which is how a multi-process deployment would map
//! one file and fault in only the shards it serves.
//!
//! Loading is validating end to end: the checksum rejects bit rot and
//! truncation outright, and every payload then passes the structural
//! validation of its section format, so a corrupt file can never panic a
//! kernel. Bare `GCMMAT1` / `GCMMAT2` files (the `mmr` CLI's output) are
//! accepted as single-shard compressed containers for compatibility.

use std::fmt;
use std::path::Path;

use gcm_core::serial;
use gcm_core::BlockedMatrix;
use gcm_encodings::varint;
use gcm_matrix::{io as mio, MatrixError, ParallelCsrv};

use crate::model::{Backend, Model};
use crate::sharded::ShardedModel;

/// Container magic.
pub const MAGIC: &[u8; 8] = b"GCMSERV1";
/// Current container version.
pub const VERSION: u8 = 1;

/// Errors of the serve layer (store, container, registry).
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid container or payload.
    Corrupt(String),
    /// Dimension or construction failure from the matrix layer.
    Matrix(MatrixError),
    /// Invalid model name or unknown model.
    BadName(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            ServeError::Matrix(e) => write!(f, "matrix error: {e}"),
            ServeError::BadName(msg) => write!(f, "bad model name: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<MatrixError> for ServeError {
    fn from(e: MatrixError) -> Self {
        ServeError::Matrix(e)
    }
}

fn corrupt(msg: impl Into<String>) -> ServeError {
    ServeError::Corrupt(msg.into())
}

/// FNV-1a 64 over `data` — the container's integrity checksum.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Writes the optional column-reorder permutation prefix of the csrv /
/// parcsrv payloads (`varint len` + u32 LE entries; `0` = none). The
/// compressed backends instead carry the order inside their `GCMMAT2`
/// bundle, so *every* backend round-trips the provenance metadata.
fn write_col_order(out: &mut Vec<u8>, col_order: Option<&[u32]>) {
    let order = col_order.unwrap_or(&[]);
    varint::write_u64(out, order.len() as u64);
    for &c in order {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

/// Inverse of [`write_col_order`], validating the permutation via the
/// shared `serial` helpers.
fn read_col_order(
    data: &[u8],
    pos: &mut usize,
    cols: usize,
) -> Result<Option<Vec<u32>>, ServeError> {
    let len =
        varint::read_u64(data, pos).ok_or_else(|| corrupt("missing column order length"))? as usize;
    if len == 0 {
        return Ok(None);
    }
    if len != cols {
        return Err(corrupt("column order length mismatch"));
    }
    let order =
        serial::read_exact_u32s(data, pos, len).ok_or_else(|| corrupt("truncated column order"))?;
    if !serial::is_permutation(&order, cols) {
        return Err(corrupt("column order is not a permutation"));
    }
    Ok(Some(order))
}

fn shard_payload(model: &Model, col_order: Option<&[u32]>) -> Vec<u8> {
    let mut out = Vec::new();
    match model {
        Model::Csrv(m) => {
            write_col_order(&mut out, col_order);
            mio::write_csrv_bytes(m, &mut out);
        }
        Model::ParCsrv(m) => {
            write_col_order(&mut out, col_order);
            varint::write_u64(&mut out, m.num_blocks() as u64);
            mio::write_csrv_bytes(&m.to_csrv(), &mut out);
        }
        Model::Compressed(m) => {
            out = serial::bundle_to_bytes(std::slice::from_ref(m), col_order);
        }
        Model::Blocked(m) => {
            out = serial::bundle_to_bytes(m.blocks(), col_order);
        }
    }
    out
}

fn decode_shard(
    backend: Backend,
    cols: usize,
    payload: &[u8],
) -> Result<(Model, Option<Vec<u32>>), ServeError> {
    match backend {
        Backend::Csrv => {
            let mut pos = 0usize;
            let order = read_col_order(payload, &mut pos, cols)?;
            let m = mio::read_csrv_bytes(payload, &mut pos)
                .ok_or_else(|| corrupt("invalid csrv shard payload"))?;
            Ok((Model::Csrv(m), order))
        }
        Backend::ParCsrv => {
            let mut pos = 0usize;
            let order = read_col_order(payload, &mut pos, cols)?;
            let blocks = varint::read_u64(payload, &mut pos)
                .ok_or_else(|| corrupt("missing parcsrv block count"))?
                as usize;
            if blocks == 0 || blocks > u32::MAX as usize {
                return Err(corrupt("implausible parcsrv block count"));
            }
            let m = mio::read_csrv_bytes(payload, &mut pos)
                .ok_or_else(|| corrupt("invalid parcsrv shard payload"))?;
            Ok((Model::ParCsrv(ParallelCsrv::split(&m, blocks)), order))
        }
        Backend::Compressed => {
            let (mut blocks, order) = serial::bundle_from_bytes(payload)
                .ok_or_else(|| corrupt("invalid compressed shard bundle"))?;
            if blocks.len() != 1 {
                return Err(corrupt("compressed shard must hold exactly one block"));
            }
            let m = blocks.pop().expect("length checked");
            if m.cols() != cols {
                return Err(corrupt("shard column count mismatches header"));
            }
            Ok((Model::Compressed(m), order))
        }
        Backend::Blocked => {
            let (blocks, order) = serial::bundle_from_bytes(payload)
                .ok_or_else(|| corrupt("invalid blocked shard bundle"))?;
            if blocks.iter().any(|b| b.cols() != cols) {
                return Err(corrupt("shard column count mismatches header"));
            }
            Ok((
                Model::Blocked(BlockedMatrix::from_blocks(blocks, cols)),
                order,
            ))
        }
    }
}

/// Serialises a sharded model as a `GCMSERV1` container.
pub fn to_bytes(model: &ShardedModel) -> Vec<u8> {
    let mut out = Vec::with_capacity(model.stored_bytes() + 128);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(model.backend().tag());
    varint::write_u64(&mut out, model.rows() as u64);
    varint::write_u64(&mut out, model.cols() as u64);
    varint::write_u64(&mut out, model.num_shards() as u64);
    for shard in model.shard_slice() {
        let payload = shard_payload(&shard.model, model.col_order());
        varint::write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// The parsed header and shard byte ranges of a container — everything a
/// reader needs to decode shards selectively (the mmap-style access
/// path) or to inspect a model without materialising it.
#[derive(Debug, Clone)]
pub struct ShardTable {
    /// Backend of every shard.
    pub backend: Backend,
    /// Total rows (validated against the decoded shards on full load).
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Byte range of each shard payload within the container.
    pub shard_ranges: Vec<std::ops::Range<usize>>,
}

impl ShardTable {
    /// Parses and checksum-verifies a container, returning its shard
    /// table without decoding any payload.
    ///
    /// # Errors
    /// Fails on bad magic/version/tag, truncation, or checksum mismatch.
    pub fn parse(data: &[u8]) -> Result<ShardTable, ServeError> {
        if data.len() < MAGIC.len() + 2 + 8 || &data[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let body_len = data.len() - 8;
        let stored = u64::from_le_bytes(data[body_len..].try_into().expect("8 bytes"));
        let actual = fnv1a64(&data[..body_len]);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:016x}, computed {actual:016x})"
            )));
        }
        if data[8] != VERSION {
            return Err(corrupt(format!(
                "unsupported container version {}",
                data[8]
            )));
        }
        let backend = Backend::from_tag(data[9]).ok_or_else(|| corrupt("unknown backend tag"))?;
        let mut pos = 10usize;
        let rows = varint::read_u64(data, &mut pos).ok_or_else(|| corrupt("bad rows"))? as usize;
        let cols = varint::read_u64(data, &mut pos).ok_or_else(|| corrupt("bad cols"))? as usize;
        let num_shards =
            varint::read_u64(data, &mut pos).ok_or_else(|| corrupt("bad shard count"))? as usize;
        if num_shards == 0 || num_shards > body_len {
            return Err(corrupt("implausible shard count"));
        }
        let mut shard_ranges = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            let len = varint::read_u64(data, &mut pos)
                .ok_or_else(|| corrupt(format!("bad shard {i} length")))?
                as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= body_len)
                .ok_or_else(|| corrupt(format!("shard {i} overruns container")))?;
            shard_ranges.push(pos..end);
            pos = end;
        }
        if pos != body_len {
            return Err(corrupt("trailing bytes after shard table"));
        }
        Ok(ShardTable {
            backend,
            rows,
            cols,
            shard_ranges,
        })
    }

    /// Decodes the single shard `i` from the container bytes the table
    /// was parsed from.
    ///
    /// # Errors
    /// Fails if the payload is structurally invalid.
    pub fn decode_shard(&self, data: &[u8], i: usize) -> Result<Model, ServeError> {
        let range = self
            .shard_ranges
            .get(i)
            .ok_or_else(|| corrupt(format!("shard {i} out of range")))?
            .clone();
        decode_shard(self.backend, self.cols, &data[range]).map(|(m, _)| m)
    }
}

/// Deserialises a container into a ready-to-serve [`ShardedModel`].
///
/// Bare `GCMMAT1` / `GCMMAT2` payloads are accepted as single-shard
/// compressed models.
///
/// # Errors
/// Fails on any structural violation; never panics on corrupt input.
pub fn from_bytes(data: &[u8]) -> Result<ShardedModel, ServeError> {
    if data.len() >= 8 && &data[..8] == b"GCMMAT1\0" {
        let m = serial::from_bytes(data).ok_or_else(|| corrupt("invalid GCMMAT1 payload"))?;
        let cols = m.cols();
        return Ok(ShardedModel::from_parts(
            vec![Model::Compressed(m)],
            cols,
            None,
        ));
    }
    if data.len() >= 8 && &data[..8] == b"GCMMAT2\0" {
        let (blocks, order) =
            serial::bundle_from_bytes(data).ok_or_else(|| corrupt("invalid GCMMAT2 payload"))?;
        let cols = blocks[0].cols();
        let model = if blocks.len() == 1 {
            Model::Compressed(blocks.into_iter().next().expect("one block"))
        } else {
            Model::Blocked(BlockedMatrix::from_blocks(blocks, cols))
        };
        return Ok(ShardedModel::from_parts(vec![model], cols, order));
    }
    let table = ShardTable::parse(data)?;
    let mut models = Vec::with_capacity(table.shard_ranges.len());
    let mut col_order: Option<Vec<u32>> = None;
    for (i, range) in table.shard_ranges.iter().enumerate() {
        let (model, order) = decode_shard(table.backend, table.cols, &data[range.clone()])?;
        if model.cols() != table.cols {
            return Err(corrupt(format!("shard {i} column count mismatch")));
        }
        if i == 0 {
            col_order = order;
        } else if order != col_order {
            // Every compressed shard carries a copy of the permutation;
            // the redundancy exists to catch exactly this inconsistency.
            return Err(corrupt(format!(
                "shard {i} disagrees with shard 0 on the column reorder"
            )));
        }
        models.push(model);
    }
    if let Some(order) = &col_order {
        if order.len() != table.cols {
            return Err(corrupt("column order length mismatch"));
        }
    }
    let model = ShardedModel::from_parts(models, table.cols, col_order);
    if model.rows() != table.rows {
        return Err(corrupt(format!(
            "header promises {} rows, shards hold {}",
            table.rows,
            model.rows()
        )));
    }
    Ok(model)
}

impl ShardedModel {
    /// Serialises this model as a `GCMSERV1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Deserialises a container (see [`from_bytes`]).
    ///
    /// # Errors
    /// Fails on any structural violation.
    pub fn from_bytes(data: &[u8]) -> Result<ShardedModel, ServeError> {
        from_bytes(data)
    }

    /// Writes the container to `path` (atomically via a sibling temp
    /// file, so readers never observe a half-written model).
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a container from `path`.
    ///
    /// # Errors
    /// Fails on filesystem errors or a corrupt container.
    pub fn load(path: &Path) -> Result<ShardedModel, ServeError> {
        let bytes = std::fs::read(path)?;
        from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::BuildOptions;
    use gcm_core::Encoding;
    use gcm_matrix::{DenseMatrix, MatVec};

    fn sample() -> DenseMatrix {
        let mut m = DenseMatrix::zeros(37, 8);
        for r in 0..37 {
            for c in 0..8 {
                if (r + c) % 3 != 0 {
                    m.set(r, c, (((r * 2 + c) % 6) + 1) as f64 * 0.5);
                }
            }
        }
        m
    }

    #[test]
    fn container_roundtrips_every_backend() {
        let dense = sample();
        for backend in Backend::ALL {
            for shards in [1usize, 3] {
                let opts = BuildOptions {
                    backend,
                    shards,
                    blocks: 2,
                    encoding: Encoding::ReIv,
                    ..BuildOptions::default()
                };
                let model = ShardedModel::from_dense(&dense, &opts).unwrap();
                let bytes = model.to_bytes();
                let back = ShardedModel::from_bytes(&bytes).expect("roundtrip");
                assert_eq!(back.backend(), backend);
                assert_eq!(back.num_shards(), shards);
                assert_eq!(back.rows(), 37);
                assert_eq!(back.cols(), 8);
                let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
                let mut y_a = vec![0.0; 37];
                let mut y_b = vec![0.0; 37];
                model.right_multiply_panel(1, &x, &mut y_a).unwrap();
                back.right_multiply_panel(1, &x, &mut y_b).unwrap();
                assert_eq!(y_a, y_b, "{} s={shards}", backend.name());
            }
        }
    }

    #[test]
    fn container_preserves_reorder_metadata_for_every_backend() {
        let dense = sample();
        for backend in Backend::ALL {
            let opts = BuildOptions {
                backend,
                shards: 2,
                reorder: Some(gcm_reorder::ReorderAlgorithm::PathCover),
                ..BuildOptions::default()
            };
            let model = ShardedModel::from_dense(&dense, &opts).unwrap();
            let order = model.col_order().unwrap().to_vec();
            let back = ShardedModel::from_bytes(&model.to_bytes()).unwrap();
            assert_eq!(back.col_order(), Some(&order[..]), "{}", backend.name());
        }
    }

    #[test]
    fn forged_length_headers_are_rejected_without_panicking() {
        // Huge varint length fields must not overflow the slice
        // arithmetic (debug: add-overflow panic; release: inverted
        // range) anywhere in the loading stack.
        use gcm_encodings::varint;
        // GCMCSRV1 with n_values = 2^61 - 1.
        let mut forged = b"GCMCSRV1".to_vec();
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, 1); // cols
        varint::write_u64(&mut forged, (1u64 << 61) - 1); // |V|
        let mut pos = 0;
        assert!(gcm_matrix::io::read_csrv_bytes(&forged, &mut pos).is_none());
        // Bare GCMMAT2 with cols = 2^63 (first_nt multiply overflow).
        let mut forged = b"GCMMAT2\0".to_vec();
        forged.push(0); // re_32 tag
        varint::write_u64(&mut forged, 1u64 << 63); // cols
        varint::write_u64(&mut forged, 0); // no order
        varint::write_u64(&mut forged, 2); // |V|
        forged.extend_from_slice(&[0u8; 16]);
        assert!(gcm_core::serial::bundle_from_bytes(&forged).is_none());
        assert!(ShardedModel::from_bytes(&forged).is_err());
        // Bare GCMMAT1 with n_values = 2^61 - 1.
        let mut forged = b"GCMMAT1\0".to_vec();
        forged.push(0); // re_32 tag
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, 1); // cols
        varint::write_u64(&mut forged, 2); // first_nt
        varint::write_u64(&mut forged, (1u64 << 61) - 1); // |V|
        assert!(gcm_core::serial::from_bytes(&forged).is_none());
        assert!(ShardedModel::from_bytes(&forged).is_err());
        // GCMCSRV1 with |V| = 0 and an absurd column count: would pass
        // the terminal-limit check (limit = 1) yet explode every
        // cols-proportional allocation downstream (prewarm, inspect).
        let mut forged = b"GCMCSRV1".to_vec();
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, 1u64 << 62); // cols
        varint::write_u64(&mut forged, 0); // |V|
        varint::write_u64(&mut forged, 1); // |S|
        forged.extend_from_slice(&0u32.to_le_bytes()); // one separator
        let mut pos = 0;
        assert!(gcm_matrix::io::read_csrv_bytes(&forged, &mut pos).is_none());
        // GCMCSRV1 whose |V|·cols product lands exactly on u64::MAX, so
        // the +1 in the terminal limit overflows if unchecked.
        let mut forged = b"GCMCSRV1".to_vec();
        varint::write_u64(&mut forged, 1); // rows
        varint::write_u64(&mut forged, u64::MAX / 5); // cols (rejected: > u32::MAX)
        varint::write_u64(&mut forged, 5); // |V|
        forged.extend_from_slice(&[0u8; 40]);
        let mut pos = 0;
        assert!(gcm_matrix::io::read_csrv_bytes(&forged, &mut pos).is_none());
        // A GCMMAT2 claiming one block per remaining byte is rejected by
        // the block-count plausibility bound before any reservation.
        let mut forged = b"GCMMAT2\0".to_vec();
        forged.push(0); // re_32 tag
        varint::write_u64(&mut forged, 1); // cols
        varint::write_u64(&mut forged, 0); // no order
        varint::write_u64(&mut forged, 0); // |V|
        varint::write_u64(&mut forged, 1 << 40); // num_blocks
        assert!(gcm_core::serial::bundle_from_bytes(&forged).is_none());
    }

    #[test]
    fn shard_table_decodes_single_shards() {
        let dense = sample();
        let opts = BuildOptions {
            shards: 4,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        let bytes = model.to_bytes();
        let table = ShardTable::parse(&bytes).unwrap();
        assert_eq!(table.shard_ranges.len(), 4);
        let mut rows = 0usize;
        for i in 0..4 {
            let shard = table.decode_shard(&bytes, i).unwrap();
            assert_eq!(shard.cols(), 8);
            rows += shard.rows();
        }
        assert_eq!(rows, 37);
        assert!(table.decode_shard(&bytes, 4).is_err());
    }

    #[test]
    fn accepts_bare_gcmmat1_files() {
        let dense = sample();
        let csrv = gcm_matrix::CsrvMatrix::from_dense(&dense).unwrap();
        let cm = gcm_core::CompressedMatrix::compress(&csrv, Encoding::ReAns);
        let bytes = gcm_core::serial::to_bytes(&cm);
        let model = ShardedModel::from_bytes(&bytes).expect("GCMMAT1 compat");
        assert_eq!(model.backend(), Backend::Compressed);
        assert_eq!(model.rows(), 37);
        let x = vec![1.0; 8];
        let mut y_a = vec![0.0; 37];
        let mut y_b = vec![0.0; 37];
        cm.right_multiply(&x, &mut y_a).unwrap();
        model.right_multiply_panel(1, &x, &mut y_b).unwrap();
        assert_eq!(y_a, y_b);
    }

    #[test]
    fn checksum_rejects_any_single_byte_flip() {
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let bytes = model.to_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(ShardedModel::from_bytes(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dense = sample();
        let model = ShardedModel::from_dense(
            &dense,
            &BuildOptions {
                shards: 2,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("gcm-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gcms");
        model.save(&path).unwrap();
        let back = ShardedModel::load(&path).unwrap();
        assert_eq!(back.rows(), model.rows());
        assert_eq!(back.stored_bytes(), model.stored_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
