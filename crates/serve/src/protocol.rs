//! The `gcm serve` wire protocol: a small length-prefixed binary
//! framing, shared by the server, the CLI client (`gcm stats`), the
//! load generator, and the tests.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! u32 LE body length | body (at most MAX_FRAME bytes)
//! ```
//!
//! Request bodies start with a one-byte verb:
//!
//! ```text
//! MULTIPLY  u8 verb=1 | u8 direction (0 right, 1 left) | u8 name_len |
//!           name bytes | u16 LE k | k·dim f64 LE values
//!           (dim = cols for right, rows for left; a k-wide payload is
//!            the row-major panel layout the batched kernels consume:
//!            element (i, j) at i·k + j)
//! STATS     u8 verb=2 | u8 name_len | name bytes (name_len 0 = all models)
//! PING      u8 verb=3
//! INFO      u8 verb=4 | u8 name_len | name bytes
//! MULTIPLY_ROWS
//!           u8 verb=5 | u8 name_len | name bytes | u16 LE k |
//!           u64 LE row_start | u64 LE row_end | k·cols f64 LE values
//!           (right product only: the response carries the
//!            `(row_end-row_start)·k` output slice, served through the
//!            plan's CSR row index in O(rows-touched) work)
//! MULTIPLY_SPARSE
//!           u8 verb=6 | u8 name_len | name bytes | u32 LE nnz |
//!           nnz × (u32 LE index | f64 LE value)
//!           (right product only, from the non-zeroes of x: indices
//!            must be strictly increasing — enforced at decode — and
//!            in-range for the model — enforced before admission; the
//!            response carries the full `rows` output vector, served
//!            through the plan's activity-propagation sparse kernel in
//!            work proportional to the grammar slice the non-zeroes
//!            reach)
//! ```
//!
//! Response bodies start with a one-byte status:
//!
//! ```text
//! OK         u8 0 | result (multiply: k·out_dim f64 LE; stats: UTF-8
//!                  text; info: u64 LE rows, u64 LE cols; ping: empty)
//! OVERLOADED u8 1 | UTF-8 message  (fast-fail admission shed — retry later)
//! BAD_REQUEST / UNKNOWN_MODEL / INTERNAL
//!            u8 2|3|4 | UTF-8 message
//! ```
//!
//! Encoding and decoding are allocation-free against caller-owned
//! buffers: the server's steady-state request loop reuses one input and
//! one output `Vec<u8>` per connection, so after the first request a
//! connection's decode → batch → respond cycle performs zero heap
//! allocation (locked in by `crates/serve/tests/zero_alloc_net.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Hard upper bound on one frame's body, validated before any read: a
/// malicious length prefix can never drive a large allocation.
pub const MAX_FRAME: usize = 1 << 26; // 64 MiB

/// Request verbs.
pub mod verb {
    /// Multiply a vector (or k-wide panel) by a named model.
    pub const MULTIPLY: u8 = 1;
    /// Fetch the server's metrics as text.
    pub const STATS: u8 = 2;
    /// Liveness check.
    pub const PING: u8 = 3;
    /// Fetch a model's dimensions.
    pub const INFO: u8 = 4;
    /// Multiply a panel and return only a contiguous row range of the
    /// right product.
    pub const MULTIPLY_ROWS: u8 = 5;
    /// Right-multiply a sparse vector given as `(index, value)`
    /// non-zero pairs.
    pub const MULTIPLY_SPARSE: u8 = 6;
}

/// Response status codes. `OK` is the protocol's "2xx"; everything else
/// carries a UTF-8 message.
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// Admission control shed the request (bounded in-flight queue is
    /// past its high-water mark). Fast-fail: retry later.
    pub const OVERLOADED: u8 = 1;
    /// Malformed frame or inconsistent dimensions.
    pub const BAD_REQUEST: u8 = 2;
    /// No such model in the store.
    pub const UNKNOWN_MODEL: u8 = 3;
    /// Server-side failure.
    pub const INTERNAL: u8 = 4;

    /// Human-readable name of a status byte.
    pub fn name(s: u8) -> &'static str {
        match s {
            OK => "ok",
            OVERLOADED => "overloaded",
            BAD_REQUEST => "bad_request",
            UNKNOWN_MODEL => "unknown_model",
            INTERNAL => "internal",
            _ => "unknown",
        }
    }
}

/// Which product a multiply request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `y = M·x` (input dim = cols, output dim = rows).
    Right,
    /// `x = Mᵗ·y` (input dim = rows, output dim = cols).
    Left,
}

impl Direction {
    /// Wire byte.
    pub fn tag(self) -> u8 {
        match self {
            Direction::Right => 0,
            Direction::Left => 1,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Direction::Right),
            1 => Some(Direction::Left),
            _ => None,
        }
    }

    /// `"right"` / `"left"`.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Right => "right",
            Direction::Left => "left",
        }
    }
}

/// A decoded request, borrowing from the frame buffer.
#[derive(Debug)]
pub enum Request<'a> {
    /// Multiply `k` vectors (row-major panel payload, f64 LE).
    Multiply {
        /// Model name.
        model: &'a str,
        /// Product direction.
        direction: Direction,
        /// Number of vectors in the payload.
        k: usize,
        /// `k·dim` f64 LE bytes (validated against the model server-side).
        payload: &'a [u8],
    },
    /// Metrics snapshot (`model` empty = all models).
    Stats {
        /// Optional model filter.
        model: &'a str,
    },
    /// Liveness check.
    Ping,
    /// Model dimensions.
    Info {
        /// Model name.
        model: &'a str,
    },
    /// Right-multiply `k` vectors, returning only output rows `rows`
    /// (row-major panel payload, f64 LE).
    MultiplyRows {
        /// Model name.
        model: &'a str,
        /// Requested output row range (validated against the model
        /// server-side).
        rows: std::ops::Range<usize>,
        /// Number of vectors in the payload.
        k: usize,
        /// `k·cols` f64 LE bytes (validated against the model
        /// server-side).
        payload: &'a [u8],
    },
    /// Right-multiply a sparse vector given as non-zero pairs.
    MultiplySparse {
        /// Model name.
        model: &'a str,
        /// Number of `(index, value)` pairs in the payload.
        nnz: usize,
        /// `nnz` × (u32 LE index | f64 LE value) bytes, 12 per pair;
        /// indices are strictly increasing (checked at decode) and
        /// validated against the model's column count server-side.
        payload: &'a [u8],
    },
}

/// Byte width of one `(u32 index, f64 value)` sparse pair on the wire.
pub const SPARSE_PAIR_BYTES: usize = 12;

/// Reads the `(index, value)` pair at position `i` of a
/// [`Request::MultiplySparse`] payload (caller guarantees `i < nnz`).
#[must_use]
pub fn sparse_pair(payload: &[u8], i: usize) -> (u32, f64) {
    let p = &payload[i * SPARSE_PAIR_BYTES..(i + 1) * SPARSE_PAIR_BYTES];
    let idx = u32::from_le_bytes(p[..4].try_into().expect("4 bytes"));
    let val = f64::from_le_bytes(p[4..].try_into().expect("8 bytes"));
    (idx, val)
}

fn read_name<'a>(body: &'a [u8], pos: &mut usize) -> Result<&'a str, &'static str> {
    let len = *body.get(*pos).ok_or("truncated name length")? as usize;
    *pos += 1;
    let bytes = body
        .get(*pos..*pos + len)
        .ok_or("name overruns frame body")?;
    *pos += len;
    std::str::from_utf8(bytes).map_err(|_| "model name is not UTF-8")
}

/// Decodes one request body. Borrow-only: never allocates.
///
/// # Errors
/// Fails with a static message on any structural violation.
pub fn decode_request(body: &[u8]) -> Result<Request<'_>, &'static str> {
    let verb = *body.first().ok_or("empty frame body")?;
    let mut pos = 1usize;
    match verb {
        verb::MULTIPLY => {
            let dir = *body.get(pos).ok_or("truncated direction")?;
            pos += 1;
            let direction = Direction::from_tag(dir).ok_or("unknown direction")?;
            let model = read_name(body, &mut pos)?;
            let k_bytes = body.get(pos..pos + 2).ok_or("truncated batch width")?;
            pos += 2;
            let k = u16::from_le_bytes(k_bytes.try_into().expect("2 bytes")) as usize;
            if k == 0 {
                return Err("batch width must be at least 1");
            }
            let payload = &body[pos..];
            if !payload.len().is_multiple_of(8) {
                return Err("payload is not a whole number of f64 values");
            }
            Ok(Request::Multiply {
                model,
                direction,
                k,
                payload,
            })
        }
        verb::STATS => {
            let model = read_name(body, &mut pos)?;
            Ok(Request::Stats { model })
        }
        verb::PING => Ok(Request::Ping),
        verb::INFO => {
            let model = read_name(body, &mut pos)?;
            Ok(Request::Info { model })
        }
        verb::MULTIPLY_ROWS => {
            let model = read_name(body, &mut pos)?;
            let k_bytes = body.get(pos..pos + 2).ok_or("truncated batch width")?;
            pos += 2;
            let k = u16::from_le_bytes(k_bytes.try_into().expect("2 bytes")) as usize;
            if k == 0 {
                return Err("batch width must be at least 1");
            }
            let range = body.get(pos..pos + 16).ok_or("truncated row range")?;
            pos += 16;
            let start = u64::from_le_bytes(range[..8].try_into().expect("8 bytes"));
            let end = u64::from_le_bytes(range[8..].try_into().expect("8 bytes"));
            if start > end {
                return Err("row range start exceeds its end");
            }
            // Row indices are u32 throughout the formats; bound the raw
            // u64s before the narrowing cast can truncate.
            if end > u64::from(u32::MAX) {
                return Err("implausible row range");
            }
            let payload = &body[pos..];
            if !payload.len().is_multiple_of(8) {
                return Err("payload is not a whole number of f64 values");
            }
            Ok(Request::MultiplyRows {
                model,
                rows: start as usize..end as usize,
                k,
                payload,
            })
        }
        verb::MULTIPLY_SPARSE => {
            let model = read_name(body, &mut pos)?;
            let nnz_bytes = body.get(pos..pos + 4).ok_or("truncated non-zero count")?;
            pos += 4;
            let nnz = u32::from_le_bytes(nnz_bytes.try_into().expect("4 bytes")) as usize;
            let payload = &body[pos..];
            if payload.len() != nnz * SPARSE_PAIR_BYTES {
                return Err("payload length disagrees with the non-zero count");
            }
            // Strictly increasing indices are a structural invariant of
            // the format (sortedness needs no model metadata), so a
            // violation is caught here, before any queueing.
            let mut prev: Option<u32> = None;
            for i in 0..nnz {
                let (idx, _) = sparse_pair(payload, i);
                if prev.is_some_and(|p| p >= idx) {
                    return Err("sparse indices must be strictly increasing");
                }
                prev = Some(idx);
            }
            Ok(Request::MultiplySparse {
                model,
                nnz,
                payload,
            })
        }
        _ => Err("unknown verb"),
    }
}

fn push_name(out: &mut Vec<u8>, name: &str) {
    debug_assert!(name.len() <= u8::MAX as usize, "store names are <= 128");
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

/// Starts a frame in `out` (clears it, writes the length placeholder).
/// Pair with [`finish_frame`].
pub fn begin_frame(out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
}

/// Patches the length prefix of a frame started with [`begin_frame`].
pub fn finish_frame(out: &mut [u8]) {
    let body_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&body_len.to_le_bytes());
}

/// Encodes a multiply request frame (`values.len()` must be `k·dim`).
pub fn encode_multiply(
    out: &mut Vec<u8>,
    model: &str,
    direction: Direction,
    k: usize,
    values: &[f64],
) {
    begin_frame(out);
    out.push(verb::MULTIPLY);
    out.push(direction.tag());
    push_name(out, model);
    out.extend_from_slice(&(k as u16).to_le_bytes());
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    finish_frame(out);
}

/// Encodes a multiply-rows request frame (`values.len()` must be
/// `k·cols`; right product, output restricted to `rows`).
pub fn encode_multiply_rows(
    out: &mut Vec<u8>,
    model: &str,
    rows: std::ops::Range<usize>,
    k: usize,
    values: &[f64],
) {
    begin_frame(out);
    out.push(verb::MULTIPLY_ROWS);
    push_name(out, model);
    out.extend_from_slice(&(k as u16).to_le_bytes());
    out.extend_from_slice(&(rows.start as u64).to_le_bytes());
    out.extend_from_slice(&(rows.end as u64).to_le_bytes());
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    finish_frame(out);
}

/// Encodes a multiply-sparse request frame from `(index, value)`
/// non-zero pairs (right product; indices must be strictly increasing
/// for the frame to decode).
pub fn encode_multiply_sparse(out: &mut Vec<u8>, model: &str, x_nnz: &[(u32, f64)]) {
    begin_frame(out);
    out.push(verb::MULTIPLY_SPARSE);
    push_name(out, model);
    out.extend_from_slice(&(x_nnz.len() as u32).to_le_bytes());
    out.reserve(x_nnz.len() * SPARSE_PAIR_BYTES);
    for &(idx, val) in x_nnz {
        out.extend_from_slice(&idx.to_le_bytes());
        out.extend_from_slice(&val.to_le_bytes());
    }
    finish_frame(out);
}

/// Encodes a stats request frame (`model` empty = all models).
pub fn encode_stats(out: &mut Vec<u8>, model: &str) {
    begin_frame(out);
    out.push(verb::STATS);
    push_name(out, model);
    finish_frame(out);
}

/// Encodes a ping request frame.
pub fn encode_ping(out: &mut Vec<u8>) {
    begin_frame(out);
    out.push(verb::PING);
    finish_frame(out);
}

/// Encodes an info request frame.
pub fn encode_info(out: &mut Vec<u8>, model: &str) {
    begin_frame(out);
    out.push(verb::INFO);
    push_name(out, model);
    finish_frame(out);
}

/// Reads one frame body into `buf` (reused across calls: allocation-free
/// once grown). Returns the body length; `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// # Errors
/// Fails on I/O errors, mid-frame EOF, or a length prefix past
/// [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> std::io::Result<Option<usize>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    buf.resize(len, 0);
    r.read_exact(&mut buf[..len])?;
    Ok(Some(len))
}

/// An error from a [`Client`] call: transport failure or a non-OK
/// server status.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with a non-OK status.
    Server {
        /// One of the [`status`] codes.
        status: u8,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { status: s, message } => {
                write!(f, "server error ({}): {message}", status::name(*s))
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking client over one TCP connection, with reused frame buffers
/// (a paced load-generator loop through it allocates only on buffer
/// growth).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    out: Vec<u8>,
    resp: Vec<u8>,
}

impl Client {
    /// Connects to `addr` (any `ToSocketAddrs`), disabling Nagle so
    /// small request frames are not delayed.
    ///
    /// # Errors
    /// Fails on connection errors.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            out: Vec::new(),
            resp: Vec::new(),
        })
    }

    /// Sends the frame already encoded in `self.out` and reads the
    /// response body into `self.resp`, returning `(status, body_len)`.
    fn roundtrip(&mut self) -> Result<(u8, usize), ClientError> {
        self.stream.write_all(&self.out)?;
        let n = read_frame(&mut self.stream, &mut self.resp)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        let s = *self.resp.first().ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "empty response body",
            ))
        })?;
        Ok((s, n))
    }

    fn non_ok(&self, s: u8) -> ClientError {
        ClientError::Server {
            status: s,
            message: String::from_utf8_lossy(&self.resp[1..]).into_owned(),
        }
    }

    /// Multiplies `k` vectors (`x.len() == k·dim`, row-major panel) by
    /// `model`, appending the `k·out_dim` results to `y` (cleared
    /// first).
    ///
    /// # Errors
    /// Fails on transport errors or any non-OK status.
    pub fn multiply(
        &mut self,
        model: &str,
        direction: Direction,
        k: usize,
        x: &[f64],
        y: &mut Vec<f64>,
    ) -> Result<(), ClientError> {
        encode_multiply(&mut self.out, model, direction, k, x);
        let (s, _) = self.roundtrip()?;
        if s != status::OK {
            return Err(self.non_ok(s));
        }
        let body = &self.resp[1..];
        y.clear();
        y.reserve(body.len() / 8);
        for c in body.chunks_exact(8) {
            y.push(f64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        Ok(())
    }

    /// Right-multiplies `k` vectors (`x.len() == k·cols`, row-major
    /// panel) by `model`, fetching only output rows `rows`: the
    /// embeddings-lookup access pattern, answered server-side in
    /// O(rows-touched) when the model serves through a plan. Appends
    /// the `rows.len()·k` results to `y` (cleared first).
    ///
    /// # Errors
    /// Fails on transport errors or any non-OK status.
    pub fn multiply_rows(
        &mut self,
        model: &str,
        rows: std::ops::Range<usize>,
        k: usize,
        x: &[f64],
        y: &mut Vec<f64>,
    ) -> Result<(), ClientError> {
        encode_multiply_rows(&mut self.out, model, rows, k, x);
        let (s, _) = self.roundtrip()?;
        if s != status::OK {
            return Err(self.non_ok(s));
        }
        let body = &self.resp[1..];
        y.clear();
        y.reserve(body.len() / 8);
        for c in body.chunks_exact(8) {
            y.push(f64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        Ok(())
    }

    /// Right-multiplies the sparse vector given by its `(index, value)`
    /// non-zeroes (strictly increasing indices) by `model`, appending
    /// the `rows` results to `y` (cleared first). Served through the
    /// plan's activity-propagation sparse kernel when the model is
    /// planned.
    ///
    /// # Errors
    /// Fails on transport errors or any non-OK status.
    pub fn multiply_sparse(
        &mut self,
        model: &str,
        x_nnz: &[(u32, f64)],
        y: &mut Vec<f64>,
    ) -> Result<(), ClientError> {
        encode_multiply_sparse(&mut self.out, model, x_nnz);
        let (s, _) = self.roundtrip()?;
        if s != status::OK {
            return Err(self.non_ok(s));
        }
        let body = &self.resp[1..];
        y.clear();
        y.reserve(body.len() / 8);
        for c in body.chunks_exact(8) {
            y.push(f64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        Ok(())
    }

    /// As [`multiply`](Self::multiply), but returns the raw status byte
    /// instead of treating non-OK as an error — the load generator's
    /// entry point, where `OVERLOADED` is an expected outcome to count,
    /// not a failure to propagate.
    ///
    /// # Errors
    /// Fails only on transport errors.
    pub fn multiply_status(
        &mut self,
        model: &str,
        direction: Direction,
        k: usize,
        x: &[f64],
    ) -> Result<u8, ClientError> {
        encode_multiply(&mut self.out, model, direction, k, x);
        let (s, _) = self.roundtrip()?;
        Ok(s)
    }

    /// Fetches the metrics snapshot (`model` empty = all models).
    ///
    /// # Errors
    /// Fails on transport errors or any non-OK status.
    pub fn stats(&mut self, model: &str) -> Result<String, ClientError> {
        encode_stats(&mut self.out, model);
        let (s, _) = self.roundtrip()?;
        if s != status::OK {
            return Err(self.non_ok(s));
        }
        Ok(String::from_utf8_lossy(&self.resp[1..]).into_owned())
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Fails on transport errors or any non-OK status.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        encode_ping(&mut self.out);
        let (s, _) = self.roundtrip()?;
        if s != status::OK {
            return Err(self.non_ok(s));
        }
        Ok(())
    }

    /// Fetches `(rows, cols)` of `model`.
    ///
    /// # Errors
    /// Fails on transport errors or any non-OK status.
    pub fn info(&mut self, model: &str) -> Result<(usize, usize), ClientError> {
        encode_info(&mut self.out, model);
        let (s, _) = self.roundtrip()?;
        if s != status::OK {
            return Err(self.non_ok(s));
        }
        let body = &self.resp[1..];
        if body.len() != 16 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "info response must be 16 bytes",
            )));
        }
        let rows = u64::from_le_bytes(body[..8].try_into().expect("8 bytes")) as usize;
        let cols = u64::from_le_bytes(body[8..].try_into().expect("8 bytes")) as usize;
        Ok((rows, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_request_roundtrips() {
        let mut out = Vec::new();
        let x = [1.5f64, -2.0, 0.25];
        encode_multiply(&mut out, "demo", Direction::Right, 1, &x);
        let body_len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, out.len() - 4);
        match decode_request(&out[4..]).unwrap() {
            Request::Multiply {
                model,
                direction,
                k,
                payload,
            } => {
                assert_eq!(model, "demo");
                assert_eq!(direction, Direction::Right);
                assert_eq!(k, 1);
                let back: Vec<f64> = payload
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                assert_eq!(back, x);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn multiply_rows_request_roundtrips_and_validates() {
        let mut out = Vec::new();
        let x = [0.5f64, 1.0, -1.5, 2.0];
        encode_multiply_rows(&mut out, "emb", 7..19, 2, &x);
        match decode_request(&out[4..]).unwrap() {
            Request::MultiplyRows {
                model,
                rows,
                k,
                payload,
            } => {
                assert_eq!(model, "emb");
                assert_eq!(rows, 7..19);
                assert_eq!(k, 2);
                assert_eq!(payload.len(), 32);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // Inverted range.
        encode_multiply_rows(&mut out, "emb", 19..19, 1, &x);
        let body_start = out.len() - 32; // payload start
        out[body_start - 16..body_start - 8].copy_from_slice(&20u64.to_le_bytes());
        assert!(decode_request(&out[4..]).is_err(), "start > end");
        // Row end past u32::MAX.
        encode_multiply_rows(&mut out, "emb", 0..usize::MAX, 1, &x);
        assert!(decode_request(&out[4..]).is_err(), "implausible range");
        // k = 0.
        let bad = vec![verb::MULTIPLY_ROWS, 1, b'a', 0, 0];
        assert!(decode_request(&bad).is_err());
        // Truncated row range.
        let bad = vec![verb::MULTIPLY_ROWS, 1, b'a', 1, 0, 0, 0, 0];
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn multiply_sparse_request_roundtrips_and_validates() {
        let mut out = Vec::new();
        let pairs = [(2u32, 0.5f64), (7, -1.25), (11, 3.0)];
        encode_multiply_sparse(&mut out, "feat", &pairs);
        match decode_request(&out[4..]).unwrap() {
            Request::MultiplySparse {
                model,
                nnz,
                payload,
            } => {
                assert_eq!(model, "feat");
                assert_eq!(nnz, 3);
                assert_eq!(payload.len(), 3 * SPARSE_PAIR_BYTES);
                for (i, &(idx, val)) in pairs.iter().enumerate() {
                    assert_eq!(sparse_pair(payload, i), (idx, val));
                }
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // Empty sparse vector is valid on the wire.
        encode_multiply_sparse(&mut out, "feat", &[]);
        assert!(matches!(
            decode_request(&out[4..]).unwrap(),
            Request::MultiplySparse { nnz: 0, .. }
        ));
        // Duplicate index.
        encode_multiply_sparse(&mut out, "feat", &[(4, 1.0), (4, 2.0)]);
        assert!(decode_request(&out[4..]).is_err(), "duplicate index");
        // Unsorted indices.
        encode_multiply_sparse(&mut out, "feat", &[(9, 1.0), (3, 2.0)]);
        assert!(decode_request(&out[4..]).is_err(), "unsorted indices");
        // Count disagrees with the payload (claim one more pair).
        encode_multiply_sparse(&mut out, "feat", &pairs);
        let name_end = 4 + 1 + 1 + 4; // frame len, verb, name_len, "feat"
        out[name_end..name_end + 4].copy_from_slice(&4u32.to_le_bytes());
        assert!(decode_request(&out[4..]).is_err(), "nnz overclaims payload");
        // Truncated count field.
        let bad = vec![verb::MULTIPLY_SPARSE, 1, b'a', 0, 0];
        assert!(decode_request(&bad).is_err());
        // Payload not a whole number of pairs.
        let mut bad = vec![verb::MULTIPLY_SPARSE, 1, b'a'];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 7]);
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn stats_ping_info_roundtrip() {
        let mut out = Vec::new();
        encode_stats(&mut out, "");
        assert!(matches!(
            decode_request(&out[4..]).unwrap(),
            Request::Stats { model: "" }
        ));
        encode_ping(&mut out);
        assert!(matches!(decode_request(&out[4..]).unwrap(), Request::Ping));
        encode_info(&mut out, "m1");
        assert!(matches!(
            decode_request(&out[4..]).unwrap(),
            Request::Info { model: "m1" }
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err(), "unknown verb");
        assert!(decode_request(&[verb::MULTIPLY]).is_err(), "no direction");
        assert!(
            decode_request(&[verb::MULTIPLY, 7]).is_err(),
            "bad direction"
        );
        // Name length past the body end.
        assert!(decode_request(&[verb::MULTIPLY, 0, 10, b'a']).is_err());
        // k = 0.
        let mut bad = vec![verb::MULTIPLY, 0, 1, b'a', 0, 0];
        assert!(decode_request(&bad).is_err());
        // Payload not a multiple of 8.
        bad = vec![verb::MULTIPLY, 0, 1, b'a', 1, 0, 1, 2, 3];
        assert!(decode_request(&bad).is_err());
        // Non-UTF-8 name.
        bad = vec![verb::INFO, 1, 0xFF];
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn frame_reader_enforces_bounds_and_eof() {
        let mut buf = Vec::new();
        // Clean EOF at a boundary.
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut { empty }, &mut buf), Ok(None)));
        // Mid-frame EOF is an error.
        let short: &[u8] = &[5, 0, 0, 0, 1, 2];
        assert!(read_frame(&mut { short }, &mut buf).is_err());
        // Oversized length prefix is rejected before any read.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..], &mut buf).is_err());
        // A well-formed frame round-trips.
        let frame: &[u8] = &[3, 0, 0, 0, 9, 8, 7];
        assert_eq!(read_frame(&mut { frame }, &mut buf).unwrap(), Some(3));
        assert_eq!(&buf[..3], &[9, 8, 7]);
    }
}
