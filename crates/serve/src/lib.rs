//! # gcm-serve — sharded model store and serving layer
//!
//! The paper motivates grammar-compressed matrices by storage and
//! server-to-client transmission costs; this crate is the serving side
//! of that story. It turns any in-memory backend — CSRV, row-block
//! parallel CSRV, grammar-compressed `(C, R, V)`, or row-block parallel
//! compressed — into a **persistent, sharded, restart-amortised model**:
//!
//! * [`Model`] wraps the four backends behind one enum with uniform
//!   panel-slice kernels and workspace budgets;
//! * [`ShardedModel`] splits a matrix row-wise across N shards and
//!   serves single-vector and batched products across them on the
//!   persistent thread pool, with per-shard [`gcm_matrix::Workspace`]
//!   reuse — zero steady-state allocation for single-threaded shard
//!   backends, from the first post-[`prewarm`](ShardedModel::prewarm)
//!   request on;
//! * the `GCMSERV1` [`container`] persists all of it (block structure,
//!   reorder permutations, FNV-64 integrity checksum) with fully
//!   validating, panic-free loading, plus mmap-style selective shard
//!   decoding via [`ShardTable`];
//! * compiled execution plans ([`gcm_core::plan`]) are first-class at
//!   serve time: [`ServeOptions::planned`] makes
//!   [`prewarm`](ShardedModel::prewarm_with) compile every shard into
//!   branchless, division-free descriptors on the pool (opt-in —
//!   [`ShardedModel::plan_heap_bytes`] reports the memory price), and
//!   single-shard planned models parallelise right products across
//!   **row ranges** via the plan's CSR row index;
//! * [`ModelStore`] / [`Registry`] give containers names: a directory
//!   of `.gcms` files behind a load-once, prewarm, serve-many cache;
//! * the `gcm` binary (`src/bin/gcm.rs`) drives the whole pipeline from
//!   the command line: `compress`, `inspect`, `multiply`, `selftest`.
//!
//! Compression is paid once, at `compress`/`publish` time; every later
//! process start pays only a validated load. That seam — build
//! artefacts on one side, serving state on the other — is where async
//! front-ends, result caching, and multi-tenant placement plug in
//! (see `ROADMAP.md`).

pub mod container;
pub mod incremental;
pub mod metrics;
pub mod model;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod sharded;

pub use container::{ServeError, ShardTable};
pub use incremental::{compress_incremental, RebuildReport, ShardProvenance};
pub use model::{Backend, Model, ModelPlan};
pub use registry::{ModelStore, Registry};
pub use server::{Engine, Server, ServerConfig, ServerHandle};
pub use sharded::{BuildOptions, ServeOptions, ShardedModel};

/// Re-exported pipeline vocabulary: building goes through the staged
/// `gcm-pipeline` (serve is its consumer), and these types appear in
/// [`BuildOptions`] and the artifact-level API.
pub use gcm_pipeline::{
    BuildArtifacts, BuildConfig, EncodingChoice, GrammarChoice, GrammarStage, Pipeline, ReorderMode,
};
