//! A uniform wrapper over every servable matrix backend.
//!
//! The serve layer persists and multiplies four representations — the
//! uncompressed CSRV baseline, its row-block parallel variant, the
//! grammar-compressed `(C, R, V)` matrix, and its row-block parallel
//! variant — behind one enum, so the container format, the sharded
//! engine, and the differential test harness treat them uniformly.

use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding, KernelPlan, KernelPlanF32};
use gcm_encodings::HeapSize;
use gcm_matrix::matvec::{check_left_batch, check_right_batch};
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec, MatrixError, ParallelCsrv, Workspace};
use gcm_pipeline::ShardArtifact;

/// Which representation a [`Model`] (and its on-disk container) uses.
/// Defined in `gcm-pipeline` (the build side needs it without the
/// serving code); re-exported here so `gcm_serve::Backend` keeps
/// working.
pub use gcm_pipeline::Backend;

/// A compiled execution plan for one [`Model`] — the serve-layer
/// counterpart of [`gcm_core::plan`]: grammar backends compile to
/// per-(block-)matrix [`KernelPlan`]s, uncompressed backends have no
/// plan (their kernels are already branchless array walks).
///
/// Plans are a speed-for-memory trade ([`HeapSize`] reports the cost),
/// built once at prewarm and consumed by the `*_planned` kernels below.
#[derive(Debug, Clone)]
pub enum ModelPlan {
    /// One plan for a grammar-compressed model.
    Compressed(KernelPlan),
    /// One plan per row block of a blocked model.
    Blocked(Vec<KernelPlan>),
    /// Single-precision plan for a grammar-compressed model: half the
    /// plan heap, twice the SIMD lanes, `f32` accumulation.
    CompressedF32(KernelPlanF32),
    /// Single-precision plans, one per row block of a blocked model.
    BlockedF32(Vec<KernelPlanF32>),
}

impl ModelPlan {
    /// Compiles a plan for `model`; `None` for the uncompressed
    /// backends, which gain nothing from planning.
    pub fn compile(model: &Model) -> Option<Self> {
        Self::compile_with(model, false)
    }

    /// Compiles a plan for `model`, in single precision when `f32` is
    /// set; `None` for the uncompressed backends.
    pub fn compile_with(model: &Model, f32_plan: bool) -> Option<Self> {
        match (model, f32_plan) {
            (Model::Csrv(_) | Model::ParCsrv(_), _) => None,
            (Model::Compressed(m), false) => Some(ModelPlan::Compressed(m.plan())),
            (Model::Blocked(m), false) => Some(ModelPlan::Blocked(m.plan())),
            (Model::Compressed(m), true) => Some(ModelPlan::CompressedF32(m.plan_f32())),
            (Model::Blocked(m), true) => Some(ModelPlan::BlockedF32(m.plan_f32())),
        }
    }

    /// Whether this plan evaluates in single precision.
    pub fn is_f32(&self) -> bool {
        matches!(self, ModelPlan::CompressedF32(_) | ModelPlan::BlockedF32(_))
    }
}

impl HeapSize for ModelPlan {
    fn heap_bytes(&self) -> usize {
        match self {
            ModelPlan::Compressed(p) => p.heap_bytes(),
            ModelPlan::Blocked(ps) => ps.iter().map(HeapSize::heap_bytes).sum(),
            ModelPlan::CompressedF32(p) => p.heap_bytes(),
            ModelPlan::BlockedF32(ps) => ps.iter().map(HeapSize::heap_bytes).sum(),
        }
    }
}

/// One servable matrix in any backend representation.
#[derive(Debug, Clone)]
pub enum Model {
    /// Uncompressed CSRV.
    Csrv(CsrvMatrix),
    /// Row-block parallel CSRV.
    ParCsrv(ParallelCsrv),
    /// Grammar-compressed matrix.
    Compressed(CompressedMatrix),
    /// Row-block parallel grammar-compressed matrix.
    Blocked(BlockedMatrix),
}

impl Model {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Model::Csrv(m) => m.rows(),
            Model::ParCsrv(m) => m.rows(),
            Model::Compressed(m) => m.rows(),
            Model::Blocked(m) => MatVec::rows(m),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Model::Csrv(m) => m.cols(),
            Model::ParCsrv(m) => m.cols(),
            Model::Compressed(m) => m.cols(),
            Model::Blocked(m) => MatVec::cols(m),
        }
    }

    /// The backend kind (= container tag).
    pub fn backend(&self) -> Backend {
        match self {
            Model::Csrv(_) => Backend::Csrv,
            Model::ParCsrv(_) => Backend::ParCsrv,
            Model::Compressed(_) => Backend::Compressed,
            Model::Blocked(_) => Backend::Blocked,
        }
    }

    /// The grammar encoding, for the compressed backends.
    pub fn encoding(&self) -> Option<Encoding> {
        match self {
            Model::Compressed(m) => Some(m.encoding()),
            Model::Blocked(m) => m.blocks().first().map(|b| b.encoding()),
            _ => None,
        }
    }

    /// Serialized representation size in bytes (the paper's "size"
    /// accounting; container framing excluded).
    pub fn stored_bytes(&self) -> usize {
        match self {
            Model::Csrv(m) => m.csrv_bytes(),
            Model::ParCsrv(m) => m.stored_bytes(),
            Model::Compressed(m) => m.stored_bytes(),
            Model::Blocked(m) => m.stored_bytes(),
        }
    }

    /// Number of stored non-zeroes (compressed backends count through
    /// the grammar without decompressing; the `inspect` per-shard table
    /// relies on this).
    pub fn nnz(&self) -> usize {
        match self {
            Model::Csrv(m) => m.nnz(),
            Model::ParCsrv(m) => m.blocks().iter().map(CsrvMatrix::nnz).sum(),
            Model::Compressed(m) => m.nnz(),
            Model::Blocked(m) => m.blocks().iter().map(CompressedMatrix::nnz).sum(),
        }
    }

    /// Total grammar rules across the model's blocks (0 for the
    /// uncompressed backends).
    pub fn grammar_rules(&self) -> usize {
        match self {
            Model::Csrv(_) | Model::ParCsrv(_) => 0,
            Model::Compressed(m) => m.num_rules(),
            Model::Blocked(m) => m.blocks().iter().map(CompressedMatrix::num_rules).sum(),
        }
    }

    /// Workspace budget `(buffers, max_len)` of one multiplication with
    /// batch width `k`: a workspace warmed with
    /// [`Workspace::warm`]`(buffers, max_len)` serves any single- or
    /// batched-multiply of width at most `k` without allocating, even on
    /// the first call.
    pub fn workspace_budget(&self, k: usize) -> (usize, usize) {
        let k = k.max(1);
        match self {
            Model::Csrv(_) => (0, 0),
            Model::ParCsrv(m) => (m.num_blocks(), m.cols() * k),
            // The batched left kernel draws the W panel plus the
            // per-rule nonzero-flag buffer.
            Model::Compressed(m) => (2, m.num_rules() * k),
            Model::Blocked(m) => {
                let max_rules = m.blocks().iter().map(|b| b.num_rules()).max().unwrap_or(0);
                // Per block: a partial `cols × k` panel plus one scratch
                // buffer (the `W` panel with the left pass's flag row).
                (
                    2 * m.num_blocks(),
                    (k * MatVec::cols(m)).max(max_rules * (k + 1)).max(1),
                )
            }
        }
    }

    /// Workspace budget `(buffers, max_len)` of one **planned**
    /// multiplication with batch width `k` (plans draw one combined
    /// `[x | w | flags]` scratch buffer per matrix instead of the
    /// streaming kernels' separate W panels).
    pub fn planned_workspace_budget(&self, k: usize, plan: &ModelPlan) -> (usize, usize) {
        let k = k.max(1);
        match plan {
            ModelPlan::Compressed(p) => (1, p.scratch_len(k)),
            ModelPlan::Blocked(ps) => {
                let max_buf = ps.iter().map(|p| p.scratch_len(k)).max().unwrap_or(0);
                (2 * ps.len(), max_buf.max(self.cols() * k))
            }
            ModelPlan::CompressedF32(p) => (1, p.scratch_len(k)),
            ModelPlan::BlockedF32(ps) => {
                let max_buf = ps.iter().map(|p| p.scratch_len(k)).max().unwrap_or(0);
                (2 * ps.len(), max_buf.max(self.cols() * k))
            }
        }
    }

    /// Batched right product over explicit row-major `k`-wide panel
    /// slices (`x_panel` is `cols × k`, `y_panel` is `rows × k`), drawing
    /// scratch from `ws`. The sharded engine drives shards through this
    /// entry point so each writes its raw sub-panel of one output buffer.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn right_multiply_panel_into(
        &self,
        k: usize,
        x_panel: &[f64],
        y_panel: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        match self {
            Model::Csrv(m) => m.right_multiply_panel(x_panel, y_panel, k),
            Model::ParCsrv(m) => m.right_multiply_panel_into(k, x_panel, y_panel),
            Model::Compressed(m) => {
                let mut w = ws.take(m.num_rules() * k);
                let result = m.right_multiply_panel_with(k, x_panel, y_panel, &mut w);
                ws.put(w);
                result
            }
            Model::Blocked(m) => m.right_multiply_panel_into(k, x_panel, y_panel, ws),
        }
    }

    /// Batched left product over explicit row-major panel slices
    /// (`y_panel` is `rows × k`, `x_panel` is `cols × k`), drawing
    /// scratch from `ws`.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn left_multiply_panel_into(
        &self,
        k: usize,
        y_panel: &[f64],
        x_panel: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        match self {
            Model::Csrv(m) => m.left_multiply_panel(y_panel, x_panel, k),
            Model::ParCsrv(m) => m.left_multiply_panel_into(k, y_panel, x_panel, ws),
            Model::Compressed(m) => {
                let mut w = ws.take(m.num_rules() * k);
                let mut flags = ws.take(m.num_rules());
                let result = m.left_multiply_panel_with(k, y_panel, x_panel, &mut w, &mut flags);
                ws.put(flags);
                ws.put(w);
                result
            }
            Model::Blocked(m) => m.left_multiply_panel_into(k, y_panel, x_panel, ws),
        }
    }

    /// Batched right product through a compiled `plan` (which must have
    /// been compiled from this model). Scratch comes from `ws`; after
    /// [`ModelPlan::compile`] + a warmed workspace this performs no
    /// heap allocation.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn right_multiply_panel_planned(
        &self,
        plan: &ModelPlan,
        k: usize,
        x_panel: &[f64],
        y_panel: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        match (self, plan) {
            (Model::Compressed(_), ModelPlan::Compressed(p)) => {
                let mut buf = ws.take(p.scratch_len(k));
                let result = p.right_multiply_panel(k, x_panel, y_panel, &mut buf);
                ws.put(buf);
                result
            }
            (Model::Blocked(m), ModelPlan::Blocked(ps)) => {
                m.right_multiply_panel_planned_into(ps, k, x_panel, y_panel, ws)
            }
            (Model::Compressed(_), ModelPlan::CompressedF32(p)) => {
                let mut buf = ws.take(p.scratch_len(k));
                let result = p.right_multiply_panel(k, x_panel, y_panel, &mut buf);
                ws.put(buf);
                result
            }
            (Model::Blocked(m), ModelPlan::BlockedF32(ps)) => {
                m.right_multiply_panel_planned_f32_into(ps, k, x_panel, y_panel, ws)
            }
            // A mismatched plan cannot arise through the serve layer
            // (plans are compiled from the very model they serve);
            // fall back to the streaming path rather than guess.
            _ => self.right_multiply_panel_into(k, x_panel, y_panel, ws),
        }
    }

    /// Sparse-input right product from the non-zeroes of `x` alone,
    /// without a plan: the input is scattered into a dense staging
    /// buffer drawn from `ws` and the width-1 streaming kernel runs.
    /// Exists so every backend accepts `multiply_sparse` requests; the
    /// planned entry point below is the fast path.
    ///
    /// # Errors
    /// Fails on invalid sparse input (see
    /// [`gcm_core::validate_sparse_x`]) or a wrong `y` length.
    pub fn right_multiply_sparse_into(
        &self,
        x_nnz: &[(u32, f64)],
        y: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        gcm_core::validate_sparse_x(self.cols(), x_nnz)?;
        let mut x = ws.take(self.cols());
        x.fill(0.0);
        for &(j, v) in x_nnz {
            x[j as usize] = v;
        }
        let result = self.right_multiply_panel_into(1, &x, y, ws);
        ws.put(x);
        result
    }

    /// Sparse-input right product through a compiled `plan` (which must
    /// have been compiled from this model): grammar backends take the
    /// activity-propagation walk of
    /// [`KernelPlan::right_multiply_sparse`] — blocked models run it
    /// block by block over the shared input — and anything else falls
    /// back to [`right_multiply_sparse_into`](Self::right_multiply_sparse_into).
    /// No heap allocation once `ws` is warm.
    ///
    /// # Errors
    /// Fails on invalid sparse input or a wrong `y` length.
    pub fn right_multiply_sparse_planned(
        &self,
        plan: &ModelPlan,
        x_nnz: &[(u32, f64)],
        y: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        if y.len() != self.rows() {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows(),
                actual: y.len(),
                what: "y length",
            });
        }
        match (self, plan) {
            (Model::Compressed(_), ModelPlan::Compressed(p)) => {
                let mut buf = ws.take(p.scratch_len(1));
                let result = p.right_multiply_sparse(x_nnz, y, &mut buf);
                ws.put(buf);
                result
            }
            (Model::Compressed(_), ModelPlan::CompressedF32(p)) => {
                let mut buf = ws.take(p.scratch_len(1));
                let result = p.right_multiply_sparse(x_nnz, y, &mut buf);
                ws.put(buf);
                result
            }
            (Model::Blocked(_), ModelPlan::Blocked(ps)) => {
                let mut off = 0usize;
                for p in ps {
                    let mut buf = ws.take(p.scratch_len(1));
                    let result =
                        p.right_multiply_sparse(x_nnz, &mut y[off..off + p.rows()], &mut buf);
                    ws.put(buf);
                    result?;
                    off += p.rows();
                }
                Ok(())
            }
            (Model::Blocked(_), ModelPlan::BlockedF32(ps)) => {
                let mut off = 0usize;
                for p in ps {
                    let mut buf = ws.take(p.scratch_len(1));
                    let result =
                        p.right_multiply_sparse(x_nnz, &mut y[off..off + p.rows()], &mut buf);
                    ws.put(buf);
                    result?;
                    off += p.rows();
                }
                Ok(())
            }
            _ => self.right_multiply_sparse_into(x_nnz, y, ws),
        }
    }

    /// Batched left product through a compiled `plan`; see
    /// [`right_multiply_panel_planned`](Self::right_multiply_panel_planned).
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn left_multiply_panel_planned(
        &self,
        plan: &ModelPlan,
        k: usize,
        y_panel: &[f64],
        x_panel: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        match (self, plan) {
            (Model::Compressed(_), ModelPlan::Compressed(p)) => {
                let mut buf = ws.take(p.scratch_len(k));
                let result = p.left_multiply_panel(k, y_panel, x_panel, &mut buf);
                ws.put(buf);
                result
            }
            (Model::Blocked(m), ModelPlan::Blocked(ps)) => {
                m.left_multiply_panel_planned_into(ps, k, y_panel, x_panel, ws)
            }
            (Model::Compressed(_), ModelPlan::CompressedF32(p)) => {
                let mut buf = ws.take(p.scratch_len(k));
                let result = p.left_multiply_panel(k, y_panel, x_panel, &mut buf);
                ws.put(buf);
                result
            }
            (Model::Blocked(m), ModelPlan::BlockedF32(ps)) => {
                m.left_multiply_panel_planned_f32_into(ps, k, y_panel, x_panel, ws)
            }
            _ => self.left_multiply_panel_into(k, y_panel, x_panel, ws),
        }
    }
}

impl From<ShardArtifact> for Model {
    /// Wraps a pipeline build artifact as a servable model (the seam
    /// between `gcm-pipeline`'s build side and this crate's serving
    /// side).
    fn from(artifact: ShardArtifact) -> Self {
        match artifact {
            ShardArtifact::Csrv(m) => Model::Csrv(m),
            ShardArtifact::ParCsrv(m) => Model::ParCsrv(m),
            ShardArtifact::Compressed(m) => Model::Compressed(m),
            ShardArtifact::Blocked(m) => Model::Blocked(m),
        }
    }
}

impl MatVec for Model {
    fn rows(&self) -> usize {
        Model::rows(self)
    }

    fn cols(&self) -> usize {
        Model::cols(self)
    }

    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        // A width-1 row-major panel has the exact memory layout of a
        // vector, so the panel entry point is the single-vector kernel.
        self.right_multiply_panel_into(1, x, y, ws)
    }

    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.left_multiply_panel_into(1, y, x, ws)
    }

    fn right_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_right_batch(self.rows(), self.cols(), b, out)?;
        if b.cols() == 0 {
            return Ok(());
        }
        self.right_multiply_panel_into(b.cols(), b.as_slice(), out.as_mut_slice(), ws)
    }

    fn left_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_left_batch(self.rows(), self.cols(), b, out)?;
        if b.cols() == 0 {
            return Ok(());
        }
        self.left_multiply_panel_into(b.cols(), b.as_slice(), out.as_mut_slice(), ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        let mut m = DenseMatrix::zeros(31, 6);
        for r in 0..31 {
            for c in 0..6 {
                if (r + 2 * c) % 3 != 0 {
                    m.set(r, c, ((r * c) % 4 + 1) as f64 * 0.5);
                }
            }
        }
        m
    }

    fn all_models(dense: &DenseMatrix) -> Vec<Model> {
        let csrv = CsrvMatrix::from_dense(dense).unwrap();
        vec![
            Model::Csrv(csrv.clone()),
            Model::ParCsrv(ParallelCsrv::split(&csrv, 3)),
            Model::Compressed(CompressedMatrix::compress(&csrv, Encoding::ReIv)),
            Model::Blocked(BlockedMatrix::compress(&csrv, Encoding::ReAns, 4)),
        ]
    }

    #[test]
    fn every_backend_matches_dense() {
        let dense = sample();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let yv: Vec<f64> = (0..31).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut y_ref = vec![0.0; 31];
        let mut x_ref = vec![0.0; 6];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        dense.left_multiply(&yv, &mut x_ref).unwrap();
        for model in all_models(&dense) {
            let mut y = vec![0.0; 31];
            model.right_multiply(&x, &mut y).unwrap();
            for (a, b) in y.iter().zip(&y_ref) {
                assert!((a - b).abs() < 1e-9, "{} right", model.backend().name());
            }
            let mut xo = vec![0.0; 6];
            model.left_multiply(&yv, &mut xo).unwrap();
            for (a, b) in xo.iter().zip(&x_ref) {
                assert!((a - b).abs() < 1e-9, "{} left", model.backend().name());
            }
        }
    }

    #[test]
    fn sparse_multiply_matches_dense_on_every_backend() {
        let dense = sample();
        let patterns: Vec<Vec<(u32, f64)>> = vec![
            vec![],
            vec![(3, 1.0)],
            vec![(0, -2.0), (4, 0.5)],
            (0..6).map(|j| (j as u32, j as f64 - 2.5)).collect(),
        ];
        for x_nnz in &patterns {
            let mut x = vec![0.0; 6];
            for &(j, v) in x_nnz {
                x[j as usize] = v;
            }
            let mut y_ref = vec![0.0; 31];
            dense.right_multiply(&x, &mut y_ref).unwrap();
            for model in all_models(&dense) {
                let mut ws = Workspace::new();
                let mut y = vec![f64::NAN; 31];
                model
                    .right_multiply_sparse_into(x_nnz, &mut y, &mut ws)
                    .unwrap();
                for (a, b) in y.iter().zip(&y_ref) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "{} sparse nnz={}",
                        model.backend().name(),
                        x_nnz.len()
                    );
                }
                for f32_plan in [false, true] {
                    let Some(plan) = ModelPlan::compile_with(&model, f32_plan) else {
                        continue;
                    };
                    let mut y = vec![f64::NAN; 31];
                    model
                        .right_multiply_sparse_planned(&plan, x_nnz, &mut y, &mut ws)
                        .unwrap();
                    let tol = if f32_plan { 1e-4 } else { 1e-9 };
                    for (a, b) in y.iter().zip(&y_ref) {
                        assert!(
                            (a - b).abs() < tol,
                            "{} planned sparse f32={} nnz={}",
                            model.backend().name(),
                            f32_plan,
                            x_nnz.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_multiply_rejects_malformed_input() {
        let dense = sample();
        let model = &all_models(&dense)[2];
        let mut ws = Workspace::new();
        let mut y = vec![0.0; 31];
        // Out-of-range index.
        assert!(model
            .right_multiply_sparse_into(&[(6, 1.0)], &mut y, &mut ws)
            .is_err());
        // Duplicate / unsorted indices.
        assert!(model
            .right_multiply_sparse_into(&[(2, 1.0), (2, 1.0)], &mut y, &mut ws)
            .is_err());
        assert!(model
            .right_multiply_sparse_into(&[(4, 1.0), (1, 1.0)], &mut y, &mut ws)
            .is_err());
        // Wrong output length through the planned entry point.
        let plan = ModelPlan::compile_with(model, false).unwrap();
        let mut short = vec![0.0; 30];
        assert!(model
            .right_multiply_sparse_planned(&plan, &[(0, 1.0)], &mut short, &mut ws)
            .is_err());
    }

    #[test]
    fn backend_tags_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_tag(b.tag()), Some(b));
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::from_tag(9), None);
        assert_eq!(Backend::parse("dense"), None);
    }

    #[test]
    fn workspace_budget_covers_a_batched_pass() {
        let dense = sample();
        let k = 5;
        for model in all_models(&dense) {
            let (count, max_len) = model.workspace_budget(k);
            let mut ws = Workspace::new();
            ws.warm(count, max_len);
            let before = ws.retained_bytes();
            let x = vec![1.0; 6 * k];
            let mut y = vec![0.0; 31 * k];
            model
                .right_multiply_panel_into(k, &x, &mut y, &mut ws)
                .unwrap();
            let yv = vec![1.0; 31 * k];
            let mut xo = vec![0.0; 6 * k];
            model
                .left_multiply_panel_into(k, &yv, &mut xo, &mut ws)
                .unwrap();
            // The warmed capacity was sufficient: nothing grew.
            assert_eq!(
                ws.retained_bytes(),
                before,
                "{} budget too small",
                model.backend().name()
            );
        }
    }
}
