//! `gcm` — the model-store command line: build, persist, inspect, and
//! serve sharded grammar-compressed matrices.
//!
//! ```text
//! gcm gen <dataset> <rows> <out.txt> [--seed S]
//! gcm compress <in.txt> <out.gcms> [--backend B] [--encoding E]
//!              [--grammar repair|mr|auto] [--shards N] [--blocks B]
//!              [--reorder ALGO] [--reorder-scope global|shard]
//!              [--emit-plans] [--plan-f32] [--base OLD.gcms]
//! gcm bench-build <in.txt> [--shards N] [--blocks B] [--repeat R]
//! gcm inspect <model.gcms>
//! gcm multiply <model.gcms> [--left] [--batch K] [--vector FILE] [--out FILE]
//!              [--plan] [--plan-f32] [--repeat N] [--rows A..B] [--sparse-x FILE]
//! gcm solve <model.gcms> --method power|pagerank|cg [--iters N] [--tol T]
//!           [--damping D] [--vector FILE] [--out FILE] [--plan] [--plan-f32]
//! gcm serve <store-dir> [--port P] [--host H] [--batch-width K]
//!           [--deadline-us D] [--max-inflight N] [--plan] [--plan-f32]
//! gcm stats <host:port> [--model NAME]
//! gcm selftest [--rows R] [--cols C] [--shards N]
//! ```
//!
//! Backends: `csrv`, `parcsrv`, `compressed` (default), `blocked`.
//! Encodings: `re_32`, `re_iv`, `re_ans` (default), `re_fse`, or `auto`
//! (per shard, smallest measured).
//! Reorder algorithms: `pathcover`, `pathcover+`, `mwm`, `lkh`;
//! `--reorder-scope shard` gives every shard its own permutation (§5.3).
//!
//! `compress` runs the staged build pipeline (shards reorder, RePair,
//! and encode concurrently on the persistent pool) and reports
//! per-stage timings plus a per-shard table; with `--emit-plans` it
//! also compiles the branchless kernel plans at build time and
//! persists them in a version-4 container, so later loads cast the
//! plan section instead of recompiling (add `--plan-f32` for
//! single-precision plans). `--grammar` picks the grammar stage per
//! shard — classic `repair`, `mr` (MR-RePair), or `auto` (build both,
//! keep the smaller measured encoding) — and records the stage plus an
//! input fingerprint per shard in a version-5 container. `--base
//! OLD.gcms` turns the build incremental: shards whose input rows
//! fingerprint-match the base are **spliced** byte-for-byte from the
//! old container (persisted plans included, never re-decoded) and only
//! changed shards rebuild; provenance goes to stdout and a
//! `<out>.gcms.rebuild` sidecar, never into the container itself.
//! `bench-build` sweeps the grammar-stage × encoding grid over one
//! input and reports rules, bytes, build time, and planned-MVM ns/row
//! per cell (set `GCM_BENCH_JSON=path.json` to also write the grid as
//! JSON). `inspect` prints the same per-shard
//! breakdown from a container (grammar stage included) and reports
//! whether plans are persisted and any rebuild-provenance sidecar.
//! `multiply` defaults to the all-ones input; with `--batch K` the
//! input is a `cols × K` (or `rows × K` for `--left`) dense text panel
//! read from `--vector`, or all-ones when omitted; `--rows A..B`
//! computes only that half-open row range of the right product via the
//! plan's CSR row pointers, touching O(rows requested) descriptors;
//! `--sparse-x FILE` reads `index value` non-zero pairs instead of a
//! dense vector and serves them through the plans'
//! activity-propagation sparse kernel. `solve` runs the zero-allocation
//! iterative drivers of `gcm_core::iteration` against a loaded
//! container: `--method power` (dominant-eigenvector iteration, Eq. 4),
//! `--method pagerank` (damped random surfer with teleport), or
//! `--method cg` (conjugate gradient on the normal equations, so
//! rectangular systems solve in the least-squares sense). `selftest` drives the full pipeline —
//! generate, compress to a temp container for every backend (global
//! *and* per-shard reorders included), reload, multiply sharded — and
//! exits non-zero unless every product matches the dense oracle to
//! 1e-9; CI runs it so the end-to-end path gates every change.
//!
//! `serve` runs the batched TCP front-end over a [`gcm_serve::Registry`]
//! rooted at a model-store directory: every stored model is loaded and
//! prewarmed at startup, concurrent single-vector requests coalesce
//! into k-wide panel kernel calls, and admission control fast-fails
//! past `--max-inflight`. `stats` fetches the live per-model
//! request/batch-width/latency counters from a running server. The
//! matching load generator lives in `gcm-bench` (`loadgen`).

use std::fs;
use std::io::BufReader;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use gcm_core::Encoding;
use gcm_datagen::Dataset;
use gcm_matrix::io as mio;
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec};
use gcm_pipeline::{BuildConfig, BuildStats, EncodingChoice};
use gcm_reorder::ReorderAlgorithm;
use gcm_serve::protocol::Client;
use gcm_serve::{
    compress_incremental, Backend, BuildOptions, Engine, GrammarChoice, ModelStore, Registry,
    ReorderMode, ServeOptions, Server, ServerConfig, ShardTable, ShardedModel,
};

/// `println!` that tolerates a closed stdout (e.g. piped through
/// `head`) instead of panicking on the broken pipe.
macro_rules! say {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, $($arg)*);
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         gcm gen <dataset> <rows> <out.txt> [--seed S]\n  \
         gcm compress <in.txt> <out.gcms> [--backend csrv|parcsrv|compressed|blocked]\n               \
         [--encoding {}|auto] [--grammar repair|mr|auto]\n               \
         [--shards N] [--blocks B]\n               \
         [--reorder pathcover|pathcover+|mwm|lkh] [--reorder-scope global|shard]\n               \
         [--emit-plans [--plan-f32]] [--base OLD.gcms]\n  \
         gcm bench-build <in.txt> [--shards N] [--blocks B] [--repeat R]\n  \
         gcm inspect <model.gcms>\n  \
         gcm multiply <model.gcms> [--left] [--batch K] [--vector FILE] [--out FILE]\n               \
         [--plan] [--plan-f32] [--repeat N] [--rows A..B] [--sparse-x FILE]\n  \
         gcm solve <model.gcms> --method power|pagerank|cg [--iters N] [--tol T]\n               \
         [--damping D] [--vector FILE] [--out FILE] [--plan] [--plan-f32]\n  \
         gcm serve <store-dir> [--port P] [--host H] [--batch-width K]\n               \
         [--deadline-us D] [--max-inflight N] [--plan] [--plan-f32]\n  \
         gcm stats <host:port> [--model NAME]\n  \
         gcm selftest [--rows R] [--cols C] [--shards N]\n\n\
         datasets: susy higgs airline78 covtype census optical mnist2m",
        encoding_names()
    );
    ExitCode::FAILURE
}

/// Minimal flag parser: positional args plus `--flag value` / `--left`.
/// Flags outside the command's `known` list are hard errors — a typo'd
/// flag must never silently fall back to a default.
#[derive(Debug)]
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String], known: &[&str]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if !known.contains(&name) {
                    return Err(format!(
                        "unknown flag --{name} (this command accepts: {})",
                        if known.is_empty() {
                            "no flags".to_string()
                        } else {
                            known
                                .iter()
                                .map(|f| format!("--{f}"))
                                .collect::<Vec<_>>()
                                .join(" ")
                        }
                    ));
                }
                let takes_value = !matches!(name, "left" | "plan" | "plan-f32" | "emit-plans");
                let value = if takes_value {
                    Some(
                        it.next()
                            .ok_or_else(|| format!("--{name} needs a value"))?
                            .clone(),
                    )
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn parsed_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} value {v:?}")),
        }
    }

    /// A count flag with a lower bound: out-of-range values are
    /// rejected with an error, never silently clamped to the bound.
    fn bounded_flag(&self, name: &str, default: usize, min: usize) -> Result<usize, String> {
        let v: usize = self.parsed_flag(name, default)?;
        if v < min {
            return Err(format!("--{name} must be at least {min} (got {v})"));
        }
        Ok(v)
    }
}

fn parse_dataset(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "susy" => Some(Dataset::Susy),
        "higgs" => Some(Dataset::Higgs),
        "airline78" => Some(Dataset::Airline78),
        "covtype" => Some(Dataset::Covtype),
        "census" => Some(Dataset::Census),
        "optical" => Some(Dataset::Optical),
        "mnist2m" => Some(Dataset::Mnist2m),
        _ => None,
    }
}

/// Derived from [`Encoding::ALL`] via [`Encoding::parse`], so a new
/// encoding variant is accepted here without a CLI sweep.
fn parse_encoding(name: &str) -> Option<Encoding> {
    Encoding::parse(name)
}

/// `re_32|re_iv|re_ans|re_fse` rendered from the enum for usage strings.
fn encoding_names() -> String {
    Encoding::ALL
        .iter()
        .map(|e| e.name())
        .collect::<Vec<_>>()
        .join("|")
}

/// `repair|mr|auto` — `mr-repair` is accepted as a long form of `mr`
/// so the flag round-trips the names `inspect` prints.
fn parse_grammar(name: &str) -> Option<GrammarChoice> {
    match name.to_ascii_lowercase().as_str() {
        "repair" => Some(GrammarChoice::RePair),
        "mr" | "mr-repair" => Some(GrammarChoice::MrRePair),
        "auto" => Some(GrammarChoice::Auto),
        _ => None,
    }
}

fn parse_reorder(name: &str) -> Option<ReorderAlgorithm> {
    match name.to_ascii_lowercase().as_str() {
        "pathcover" => Some(ReorderAlgorithm::PathCover),
        "pathcover+" => Some(ReorderAlgorithm::PathCoverPlus),
        "mwm" => Some(ReorderAlgorithm::Mwm),
        "lkh" => Some(ReorderAlgorithm::Lkh),
        _ => None,
    }
}

/// Reads a dense matrix: binary (`GCMDNSE1`) or text, by sniffing magic.
fn read_dense(path: &str) -> Result<DenseMatrix, String> {
    let bytes = fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    if bytes.starts_with(b"GCMDNSE1") {
        mio::read_dense_binary(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        mio::read_dense_text(BufReader::new(&bytes[..])).map_err(|e| format!("{path}: {e}"))
    }
}

fn build_config(args: &Args) -> Result<BuildConfig, String> {
    let mut config = BuildOptions::default().to_build_config();
    if let Some(b) = args.flag("backend") {
        config.backend = Backend::parse(b).ok_or_else(|| format!("unknown backend {b}"))?;
    }
    if let Some(e) = args.flag("encoding") {
        config.encoding = if e == "auto" {
            EncodingChoice::Auto
        } else {
            EncodingChoice::Fixed(parse_encoding(e).ok_or_else(|| format!("unknown encoding {e}"))?)
        };
    }
    if let Some(g) = args.flag("grammar") {
        config.grammar =
            Some(parse_grammar(g).ok_or_else(|| format!("unknown grammar stage {g}"))?);
    }
    config.shards = args.bounded_flag("shards", 1, 1)?;
    config.blocks = args.bounded_flag("blocks", 4, 1)?;
    if let Some(r) = args.flag("reorder") {
        let algo = parse_reorder(r).ok_or_else(|| format!("unknown reorder {r}"))?;
        config.reorder = Some(match args.flag("reorder-scope") {
            None | Some("global") => ReorderMode::Global(algo),
            Some("shard") => ReorderMode::PerShard(algo),
            Some(other) => return Err(format!("unknown reorder scope {other}")),
        });
    } else if args.flag("reorder-scope").is_some() {
        return Err("--reorder-scope needs --reorder".to_string());
    }
    Ok(config)
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let [ds, rows, out] = &args.positional[..] else {
        return Err("gen needs <dataset> <rows> <out.txt>".into());
    };
    let ds = parse_dataset(ds).ok_or_else(|| format!("unknown dataset {ds}"))?;
    let rows: usize = rows.parse().map_err(|_| "bad row count".to_string())?;
    let seed: u64 = args.parsed_flag("seed", 42u64)?;
    let dense = ds.generate(rows, seed);
    let file = fs::File::create(out).map_err(|e| e.to_string())?;
    mio::write_dense_text(&dense, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    say!(
        "wrote {out}: {}x{} ({} non-zeroes)",
        dense.rows(),
        dense.cols(),
        dense.nnz()
    );
    Ok(())
}

fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Prints the staged build's per-stage timings and per-shard table.
fn report_build_stats(stats: &BuildStats) {
    let (reorder, grammar, encode) = stats.stage_cpu_totals();
    say!(
        "  stages     : plan {} | reorder {} | grammar {} | encode {} (cpu) | wall {}",
        secs(stats.plan_time),
        secs(reorder),
        secs(grammar),
        secs(encode),
        secs(stats.wall_time),
    );
    say!("  shard table:");
    say!("    shard     rows      nnz    rules    bytes  encoding  reorder");
    for s in &stats.shards {
        say!(
            "    {:>5} {:>8} {:>8} {:>8} {:>8}  {:<8}  {}",
            s.index,
            s.rows,
            s.nnz,
            s.grammar_rules,
            s.encoded_bytes,
            s.encoding.map_or("-", |e| e.name()),
            s.reorder.map_or("none", |a| a.name()),
        );
    }
}

/// Container writes go through a same-directory temp file + rename so a
/// crash mid-write never leaves a truncated `.gcms` behind.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("gcms.tmp");
    fs::write(&tmp, bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

/// `compress --base`: fingerprint-splice against an existing container.
/// Provenance (which shards were spliced vs rebuilt, or why the whole
/// build fell back) is reported on stdout and mirrored to a
/// `<out>.rebuild` sidecar for `inspect` — never into the container,
/// whose bytes must stay identical to a from-scratch build.
fn compress_with_base(
    csrv: &CsrvMatrix,
    config: &gcm_pipeline::BuildConfig,
    base_path: &str,
    output: &str,
) -> Result<(), String> {
    let base = fs::read(base_path).map_err(|e| format!("read {base_path}: {e}"))?;
    let t_build = Instant::now();
    let (bytes, report) =
        compress_incremental(csrv, config, &base).map_err(|e| format!("{base_path}: {e}"))?;
    let build_time = t_build.elapsed();
    write_atomic(Path::new(output), &bytes)?;
    say!(
        "{output}: {} bytes container, {} of {} shard(s) spliced from {base_path}, {} rebuilt ({})",
        bytes.len(),
        report.spliced(),
        report.shards.len(),
        report.rebuilt(),
        secs(build_time),
    );
    let mut sidecar = format!("# rebuild provenance: {output} from base {base_path}\n");
    if let Some(reason) = &report.full_reason {
        say!("  full rebuild: {reason}");
        sidecar.push_str(&format!("full-rebuild-reason: {reason}\n"));
    }
    for (i, p) in report.shards.iter().enumerate() {
        sidecar.push_str(&format!("shard {i}: {}\n", p.name()));
    }
    let sidecar_path = format!("{output}.rebuild");
    fs::write(&sidecar_path, sidecar).map_err(|e| format!("write {sidecar_path}: {e}"))?;
    say!("  provenance : {sidecar_path}");
    Ok(())
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let [input, output] = &args.positional[..] else {
        return Err("compress needs <in.txt> <out.gcms>".into());
    };
    let config = build_config(args)?;
    let emit_plans = args.has("emit-plans");
    if args.has("plan-f32") && !emit_plans {
        return Err("--plan-f32 needs --emit-plans".to_string());
    }
    let dense = read_dense(input)?;
    let csrv = CsrvMatrix::from_dense(&dense).map_err(|e| e.to_string())?;
    if let Some(base_path) = args.flag("base") {
        if emit_plans {
            return Err(
                "--base inherits the plan policy from the base container; drop --emit-plans"
                    .to_string(),
            );
        }
        return compress_with_base(&csrv, &config, base_path, output);
    }
    let artifacts = gcm_pipeline::global().build(&csrv, &config);
    let stats = artifacts.stats.clone();
    let model = ShardedModel::from_artifacts(artifacts);
    let plan_time = if emit_plans {
        let serve = if args.has("plan-f32") {
            ServeOptions::planned_f32()
        } else {
            ServeOptions::planned()
        };
        let t_plan = Instant::now();
        model.prewarm_with(1, &serve);
        Some(t_plan.elapsed())
    } else {
        None
    };
    let t_save = Instant::now();
    if emit_plans {
        model
            .save_with_plans(Path::new(output))
            .map_err(|e| e.to_string())?;
    } else {
        model.save(Path::new(output)).map_err(|e| e.to_string())?;
    }
    let save_time = t_save.elapsed();
    let container_len = fs::metadata(output)
        .map(|m| m.len())
        .map_err(|e| format!("stat {output}: {e}"))?;
    say!(
        "{input}: {} bytes dense -> {} bytes container ({} x {}, {} backend, {} shard(s), {:.2}%)",
        dense.uncompressed_bytes(),
        container_len,
        model.rows(),
        model.cols(),
        model.backend().name(),
        model.num_shards(),
        100.0 * container_len as f64 / dense.uncompressed_bytes().max(1) as f64,
    );
    // A fresh build supersedes any provenance left by an earlier
    // incremental rebuild of the same output path.
    let _ = fs::remove_file(format!("{output}.rebuild"));
    report_build_stats(&stats);
    if config.grammar.is_some() {
        say!(
            "  grammar    : {} (per shard: {})",
            config.grammar.map_or("-", |g| g.name()),
            (0..model.num_shards())
                .map(|i| model.shard_grammar(i).map_or("-", |g| g.name()))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    if let Some(plan_time) = plan_time {
        if model.is_planned() {
            say!(
                "  plans      : {} compiled ({}) and persisted, {} heap bytes — loads cast, not compile",
                if model.is_planned_f32() { "f32" } else { "f64" },
                secs(plan_time),
                model.plan_heap_bytes(),
            );
        } else {
            say!(
                "  plans      : backend is not plannable; container written without a plan section"
            );
        }
    }
    say!("  save       : {}", secs(save_time));
    Ok(())
}

/// One `bench-build` grid cell: a full pipeline build plus a planned
/// right-multiply timing for a (grammar stage × encoding) pair.
struct BenchCell {
    stage: &'static str,
    encoding: &'static str,
    rules: usize,
    bytes: usize,
    build_ms: f64,
    mvm_ns_per_row: f64,
    shard_stages: Vec<&'static str>,
}

fn cmd_bench_build(args: &Args) -> Result<(), String> {
    let [input] = &args.positional[..] else {
        return Err("bench-build needs <in.txt>".into());
    };
    let shards = args.bounded_flag("shards", 4, 1)?;
    let blocks = args.bounded_flag("blocks", 2, 1)?;
    let repeat = args.bounded_flag("repeat", 9, 1)?;
    let dense = read_dense(input)?;
    let csrv = CsrvMatrix::from_dense(&dense).map_err(|e| e.to_string())?;
    say!(
        "bench-build {input}: {} x {} ({} non-zeroes), {shards} shard(s), {blocks} block(s), {repeat} timed iteration(s)",
        dense.rows(),
        dense.cols(),
        dense.nnz(),
    );
    say!("  stage      encoding    rules    bytes  build_ms  mvm_ns/row  per-shard stages");
    let mut cells: Vec<BenchCell> = Vec::new();
    for grammar in [
        GrammarChoice::RePair,
        GrammarChoice::MrRePair,
        GrammarChoice::Auto,
    ] {
        for &encoding in Encoding::ALL.iter() {
            let config = gcm_pipeline::BuildConfig {
                backend: Backend::Compressed,
                encoding: EncodingChoice::Fixed(encoding),
                grammar: Some(grammar),
                shards,
                blocks,
                reorder: None,
            };
            let t_build = Instant::now();
            let artifacts = gcm_pipeline::global().build(&csrv, &config);
            let build_ms = t_build.elapsed().as_secs_f64() * 1e3;
            let stats = artifacts.stats.clone();
            let rules: usize = stats.shards.iter().map(|s| s.grammar_rules).sum();
            let bytes: usize = stats.shards.iter().map(|s| s.encoded_bytes).sum();
            let model = ShardedModel::from_artifacts(artifacts);
            model.prewarm_with(1, &ServeOptions::planned());
            let x = vec![1.0; model.cols()];
            let mut y = vec![0.0; model.rows()];
            // One untimed pass warms every shard workspace.
            model
                .right_multiply_panel(1, &x, &mut y)
                .map_err(|e| e.to_string())?;
            let t_mvm = Instant::now();
            for _ in 0..repeat {
                model
                    .right_multiply_panel(1, &x, &mut y)
                    .map_err(|e| e.to_string())?;
            }
            let mvm_ns_per_row =
                t_mvm.elapsed().as_nanos() as f64 / (repeat * model.rows().max(1)) as f64;
            let shard_stages: Vec<&'static str> = (0..model.num_shards())
                .map(|i| model.shard_grammar(i).map_or("-", |g| g.name()))
                .collect();
            say!(
                "  {:<10} {:<9} {:>8} {:>8} {:>9.2} {:>11.1}  {}",
                grammar.name(),
                encoding.name(),
                rules,
                bytes,
                build_ms,
                mvm_ns_per_row,
                shard_stages.join(" "),
            );
            cells.push(BenchCell {
                stage: grammar.name(),
                encoding: encoding.name(),
                rules,
                bytes,
                build_ms,
                mvm_ns_per_row,
                shard_stages,
            });
        }
    }
    if let Ok(path) = std::env::var("GCM_BENCH_JSON") {
        let path = if path.is_empty() || path == "1" {
            "BENCH_grammar.json".to_string()
        } else {
            path
        };
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"matrix\": {{\"source\": {input:?}, \"rows\": {}, \"cols\": {}, \"nnz\": {}}},\n",
            dense.rows(),
            dense.cols(),
            dense.nnz(),
        ));
        json.push_str(&format!(
            "  \"shards\": {shards},\n  \"blocks\": {blocks},\n"
        ));
        json.push_str("  \"grid\": [\n");
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"stage\": \"{}\", \"encoding\": \"{}\", \"rules\": {}, \"bytes\": {}, \
                 \"build_ms\": {:.3}, \"planned_mvm_ns_per_row\": {:.1}, \"shard_stages\": [{}]}}{}\n",
                c.stage,
                c.encoding,
                c.rules,
                c.bytes,
                c.build_ms,
                c.mvm_ns_per_row,
                c.shard_stages
                    .iter()
                    .map(|s| format!("\"{s}\""))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 < cells.len() { "," } else { "" },
            ));
        }
        json.push_str("  ]\n}\n");
        fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        say!("  json       : {path}");
    }
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let [input] = &args.positional[..] else {
        return Err("inspect needs <model.gcms>".into());
    };
    let bytes = fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
    let model = ShardedModel::from_bytes(&bytes).map_err(|e| e.to_string())?;
    say!("{input}:");
    say!("  container  : {} bytes", bytes.len());
    say!("  dimensions : {} x {}", model.rows(), model.cols());
    say!("  backend    : {}", model.backend().name());
    if let Some(enc) = model.encoding() {
        say!("  encoding   : {}", enc.name());
    }
    say!(
        "  reorder    : {}",
        if model.col_order().is_some() {
            "uniform column permutation recorded"
        } else if (0..model.num_shards()).any(|i| model.shard_col_order(i).is_some()) {
            "per-shard column permutations recorded"
        } else {
            "none"
        }
    );
    say!("  shards     : {}", model.num_shards());
    let payload_bytes: Vec<usize> = match ShardTable::parse(&bytes) {
        Ok(table) => {
            say!("  version    : {}", table.version);
            let plan_bytes = table.plan_bytes();
            if plan_bytes > 0 {
                say!(
                    "  plans      : persisted ({plan_bytes} bytes, {}) — cast on load, no compile",
                    if table.plan_f32.iter().any(|&f| f) {
                        "f32"
                    } else {
                        "f64"
                    },
                );
            } else {
                say!("  plans      : none persisted — compiled at prewarm under --plan");
            }
            table
                .shard_ranges
                .iter()
                .map(std::ops::Range::len)
                .collect()
        }
        // Bare GCMMAT1/GCMMAT2 compatibility payloads have no table.
        Err(_) => vec![bytes.len(); model.num_shards()],
    };
    say!("    shard     rows      nnz    rules    bytes  encoding  grammar    reorder");
    for (i, payload) in payload_bytes.iter().enumerate() {
        let shard = model.shard_model(i);
        say!(
            "    {:>5} {:>8} {:>8} {:>8} {:>8}  {:<8}  {:<9}  {}",
            i,
            shard.rows(),
            shard.nnz(),
            shard.grammar_rules(),
            payload,
            shard.encoding().map_or("-", |e| e.name()),
            model.shard_grammar(i).map_or("-", |g| g.name()),
            match (model.shard_reorder(i), model.shard_col_order(i)) {
                (Some(algo), _) => algo.name(),
                (None, Some(_)) => "recorded",
                (None, None) => "none",
            },
        );
    }
    // Rebuild provenance lives in the sidecar `gcm compress --base`
    // writes next to the container, never in the container itself.
    match fs::read_to_string(format!("{input}.rebuild")) {
        Ok(text) => {
            say!("  rebuild    : incremental (sidecar {input}.rebuild)");
            for line in text.lines().filter(|l| !l.starts_with('#')) {
                say!("    {line}");
            }
        }
        Err(_) => say!("  rebuild    : fresh build (no provenance sidecar)"),
    }
    say!(
        "  stored     : {} bytes (representation)",
        model.stored_bytes()
    );
    say!(
        "  vs dense   : {:.2}%",
        100.0 * model.stored_bytes() as f64 / (model.rows() * model.cols() * 8).max(1) as f64
    );
    Ok(())
}

fn read_panel(path: &str, rows: usize, k: usize) -> Result<Vec<f64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Result<Vec<f64>, _> = text.split_whitespace().map(str::parse).collect();
    let v = v.map_err(|e| format!("{path}: bad number: {e}"))?;
    if v.len() != rows * k {
        return Err(format!(
            "{path}: expected {rows} x {k} = {} numbers, got {}",
            rows * k,
            v.len()
        ));
    }
    Ok(v)
}

/// Reads a sparse vector as whitespace-separated `index value` pairs
/// (strictly increasing in-range indices; validated again by the
/// kernels, but rejected here with file context for a better message).
fn read_sparse_x(path: &str, cols: usize) -> Result<Vec<(u32, f64)>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if !tokens.len().is_multiple_of(2) {
        return Err(format!(
            "{path}: expected index/value pairs, got {} tokens",
            tokens.len()
        ));
    }
    let mut pairs = Vec::with_capacity(tokens.len() / 2);
    for chunk in tokens.chunks_exact(2) {
        let idx: u32 = chunk[0]
            .parse()
            .map_err(|_| format!("{path}: bad index {:?}", chunk[0]))?;
        let val: f64 = chunk[1]
            .parse()
            .map_err(|_| format!("{path}: bad value {:?}", chunk[1]))?;
        pairs.push((idx, val));
    }
    gcm_core::validate_sparse_x(cols, &pairs).map_err(|e| format!("{path}: {e}"))?;
    Ok(pairs)
}

fn write_panel(path: Option<&str>, rows: usize, k: usize, data: &[f64]) -> Result<(), String> {
    use std::io::Write;
    let mut out: Box<dyn Write> = match path {
        Some(p) => Box::new(std::io::BufWriter::new(
            fs::File::create(p).map_err(|e| format!("create {p}: {e}"))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout().lock())),
    };
    let mut line = String::new();
    for r in 0..rows {
        line.clear();
        for j in 0..k {
            if j > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{}", data[r * k + j]));
        }
        if writeln!(out, "{line}").is_err() {
            return Ok(()); // stdout closed (e.g. piped through head)
        }
    }
    let _ = out.flush();
    Ok(())
}

fn cmd_multiply(args: &Args) -> Result<(), String> {
    let [input] = &args.positional[..] else {
        return Err("multiply needs <model.gcms>".into());
    };
    let left = args.has("left");
    let k: usize = args.bounded_flag("batch", 1, 1)?;
    let repeat: usize = args.bounded_flag("repeat", 1, 1)?;
    let serve = if args.has("plan-f32") {
        ServeOptions::planned_f32()
    } else if args.has("plan") {
        ServeOptions::planned()
    } else {
        ServeOptions::default()
    };
    let t_load = Instant::now();
    let model = ShardedModel::load(Path::new(input)).map_err(|e| e.to_string())?;
    let load_time = t_load.elapsed();
    // All setup — container load, buffer warming, and (under --plan /
    // a persisted plan section) kernel-plan readiness — happens before
    // the timed loop and is reported separately, so iteration 0 never
    // folds cold-start costs into the measured multiply.
    let t_prewarm = Instant::now();
    model.prewarm_with(k, &serve);
    let prewarm_time = t_prewarm.elapsed();
    eprintln!(
        "setup (excluded from timed loop): load {} | prewarm {}{}",
        secs(load_time),
        secs(prewarm_time),
        if model.is_planned() {
            format!(
                " | planned ({}, {} plan heap bytes on top of {} stored)",
                if model.is_planned_f32() { "f32" } else { "f64" },
                model.plan_heap_bytes(),
                model.stored_bytes(),
            )
        } else {
            String::new()
        },
    );
    let rows_subset = match args.flag("rows") {
        None => None,
        Some(spec) => {
            if left {
                return Err("--rows applies to the right product only (drop --left)".to_string());
            }
            let (a, b) = spec
                .split_once("..")
                .ok_or_else(|| format!("bad --rows {spec:?} (expected A..B)"))?;
            let a: usize = a
                .parse()
                .map_err(|_| format!("bad --rows start {a:?} in {spec:?}"))?;
            let b: usize = b
                .parse()
                .map_err(|_| format!("bad --rows end {b:?} in {spec:?}"))?;
            if a > b || b > model.rows() {
                return Err(format!(
                    "--rows {spec} out of range for a {}-row model",
                    model.rows()
                ));
            }
            Some(a..b)
        }
    };
    let sparse_x = match args.flag("sparse-x") {
        None => None,
        Some(path) => {
            if left || rows_subset.is_some() || k != 1 || args.flag("vector").is_some() {
                return Err(
                    "--sparse-x is a single right product from non-zero pairs (drop --left, --rows, --batch, --vector)"
                        .to_string(),
                );
            }
            Some(read_sparse_x(path, model.cols())?)
        }
    };
    let (in_len, out_len) = if left {
        (model.rows(), model.cols())
    } else {
        (
            model.cols(),
            rows_subset.as_ref().map_or(model.rows(), |r| r.len()),
        )
    };
    let x = match args.flag("vector") {
        Some(p) => read_panel(p, in_len, k)?,
        None => vec![1.0; in_len * k],
    };
    let mut y = vec![0.0; out_len * k];
    let mut total = 0.0f64;
    for it in 0..repeat {
        let t = Instant::now();
        if let Some(x_nnz) = &sparse_x {
            model
                .right_multiply_sparse(x_nnz, &mut y)
                .map_err(|e| e.to_string())?;
        } else if let Some(rows) = &rows_subset {
            model
                .right_multiply_rows(rows.clone(), k, &x, &mut y)
                .map_err(|e| e.to_string())?;
        } else if left {
            model
                .left_multiply_panel(k, &x, &mut y)
                .map_err(|e| e.to_string())?;
        } else {
            model
                .right_multiply_panel(k, &x, &mut y)
                .map_err(|e| e.to_string())?;
        }
        let dt = t.elapsed().as_secs_f64();
        total += dt;
        if repeat > 1 {
            eprintln!("iter {it}: {:.3} ms", dt * 1e3);
        }
    }
    if repeat > 1 {
        eprintln!(
            "mean over {repeat} iterations: {:.3} ms",
            total * 1e3 / repeat as f64
        );
    }
    write_panel(args.flag("out"), out_len, k, &y)
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let [input] = &args.positional[..] else {
        return Err("solve needs <model.gcms>".into());
    };
    let method = args
        .flag("method")
        .ok_or_else(|| "solve needs --method power|pagerank|cg".to_string())?
        .to_string();
    let iters: usize = args.bounded_flag("iters", 100, 1)?;
    let tol: f64 = args.parsed_flag("tol", 1e-9f64)?;
    let damping: f64 = args.parsed_flag("damping", 0.85f64)?;
    let serve = if args.has("plan-f32") {
        ServeOptions::planned_f32()
    } else if args.has("plan") {
        ServeOptions::planned()
    } else {
        ServeOptions::default()
    };
    let t_load = Instant::now();
    let model = ShardedModel::load(Path::new(input)).map_err(|e| e.to_string())?;
    let load_time = t_load.elapsed();
    // The solvers ping-pong width-1 products, so prewarm at width 1;
    // SolverWorkspace::prepare then warms the driver-side vectors —
    // every iteration after this point is allocation-free.
    let t_prewarm = Instant::now();
    model.prewarm_with(1, &serve);
    let mut ws = gcm_core::SolverWorkspace::new();
    ws.prepare(&model).map_err(|e| e.to_string())?;
    let prewarm_time = t_prewarm.elapsed();
    eprintln!(
        "setup (excluded from timed loop): load {} | prewarm {}{}",
        secs(load_time),
        secs(prewarm_time),
        if model.is_planned() {
            format!(
                " | planned ({})",
                if model.is_planned_f32() { "f32" } else { "f64" }
            )
        } else {
            String::new()
        },
    );
    let n = model.cols();
    let t = Instant::now();
    let (stats, x) = match method.as_str() {
        "power" => {
            let mut x = match args.flag("vector") {
                Some(p) => read_panel(p, n, 1)?,
                None => vec![1.0; n],
            };
            let stats = gcm_core::power_iterations_into(&model, &mut x, iters, &mut ws)
                .map_err(|e| e.to_string())?;
            (stats, x)
        }
        "pagerank" => {
            let mut x = match args.flag("vector") {
                Some(p) => read_panel(p, n, 1)?,
                None => vec![1.0 / n.max(1) as f64; n],
            };
            let stats = gcm_core::pagerank_into(&model, &mut x, damping, iters, tol, &mut ws)
                .map_err(|e| e.to_string())?;
            (stats, x)
        }
        "cg" => {
            let b = match args.flag("vector") {
                Some(p) => read_panel(p, model.rows(), 1)?,
                None => vec![1.0; model.rows()],
            };
            let mut x = vec![0.0; n];
            let stats = gcm_core::conjugate_gradient_into(&model, &b, &mut x, iters, tol, &mut ws)
                .map_err(|e| e.to_string())?;
            (stats, x)
        }
        other => return Err(format!("unknown --method {other} (power|pagerank|cg)")),
    };
    let dt = t.elapsed();
    eprintln!(
        "{method}: {} iterations in {} ({:.3} ms/iter), norm {:.6e}",
        stats.iterations,
        secs(dt),
        dt.as_secs_f64() * 1e3 / stats.iterations.max(1) as f64,
        stats.norm,
    );
    write_panel(args.flag("out"), n, 1, &x)
}

/// One selftest case: build, save, reload, multiply, compare to oracle.
#[allow(clippy::too_many_arguments)]
fn selftest_case(
    dense: &DenseMatrix,
    dir: &Path,
    backend: Backend,
    encoding: Encoding,
    shards: usize,
    reorder: Option<ReorderMode>,
    k: usize,
    y_oracle: &DenseMatrix,
    x_oracle: &DenseMatrix,
    b_right: &DenseMatrix,
    b_left: &DenseMatrix,
) -> Result<(), String> {
    let scope = match reorder {
        None => "",
        Some(ReorderMode::Global(_)) => "-rg",
        Some(ReorderMode::PerShard(_)) => "-rs",
    };
    let tag = format!("{}-{}-s{shards}{scope}", backend.name(), encoding.name());
    let opts = BuildOptions {
        backend,
        encoding,
        shards,
        blocks: 2,
        reorder,
        grammar: None,
    };
    let built = ShardedModel::from_dense(dense, &opts).map_err(|e| format!("{tag}: {e}"))?;
    let path = dir.join(format!("{tag}.gcms"));
    built.save(&path).map_err(|e| format!("{tag}: save: {e}"))?;
    let built_orders: Vec<Option<Vec<u32>>> = (0..built.num_shards())
        .map(|i| built.shard_col_order(i).map(<[u32]>::to_vec))
        .collect();
    drop(built);
    // Everything below runs against the on-disk container, not the
    // in-memory build: the round-trip is the point.
    let model = ShardedModel::load(&path).map_err(|e| format!("{tag}: load: {e}"))?;
    if model.num_shards() != shards.min(dense.rows().max(1)) {
        return Err(format!("{tag}: shard count not preserved"));
    }
    for (i, order) in built_orders.iter().enumerate() {
        if model.shard_col_order(i) != order.as_deref() {
            return Err(format!("{tag}: shard {i} column order not preserved"));
        }
        if reorder.is_some() && model.shard_reorder(i).is_none() {
            return Err(format!("{tag}: shard {i} reorder provenance lost"));
        }
    }
    model.prewarm(k);
    let mut y = DenseMatrix::zeros(dense.rows(), k);
    model
        .right_multiply_batch(b_right, &mut y)
        .map_err(|e| format!("{tag}: right: {e}"))?;
    let mut x = DenseMatrix::zeros(dense.cols(), k);
    model
        .left_multiply_batch(b_left, &mut x)
        .map_err(|e| format!("{tag}: left: {e}"))?;
    for (got, want, what) in [(&y, y_oracle, "right"), (&x, x_oracle, "left")] {
        for i in 0..want.rows() {
            for j in 0..k {
                let (g, w) = (got.get(i, j), want.get(i, j));
                if (g - w).abs() > 1e-9 {
                    return Err(format!(
                        "{tag}: {what} product mismatch at ({i},{j}): {g} vs oracle {w}"
                    ));
                }
            }
        }
    }
    let container_len = fs::metadata(&path)
        .map(|m| m.len())
        .map_err(|e| format!("{tag}: stat {}: {e}", path.display()))?;
    say!("  ok {tag} ({container_len} container bytes)");
    Ok(())
}

fn cmd_selftest(args: &Args) -> Result<(), String> {
    let rows: usize = args.bounded_flag("rows", 96, 1)?;
    let cols: usize = args.bounded_flag("cols", 12, 1)?;
    let shards: usize = args.bounded_flag("shards", 3, 2)?;
    let dir = std::env::temp_dir().join(format!("gcm-selftest-{}", std::process::id()));
    fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let result = run_selftest(rows, cols, shards, &dir);
    let _ = fs::remove_dir_all(&dir);
    result
}

fn run_selftest(rows: usize, cols: usize, shards: usize, dir: &Path) -> Result<(), String> {
    // A repetitive synthetic matrix (so compression has real work), via
    // the same text file path a user would take.
    let mut dense = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = match (r % 4, c % 3) {
                (0, 0) => 1.5,
                (1, 1) => 2.5,
                (2, _) => 0.5,
                (3, 2) => 7.25,
                _ => 0.0,
            };
            dense.set(r, c, v);
        }
    }
    let txt = dir.join("matrix.txt");
    let file = fs::File::create(&txt).map_err(|e| e.to_string())?;
    mio::write_dense_text(&dense, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    let dense = read_dense(txt.to_str().expect("utf-8 temp path"))?;

    // Oracle products from the dense representation.
    let k = 4usize;
    let mut b_right = DenseMatrix::zeros(cols, k);
    for i in 0..cols {
        for j in 0..k {
            b_right.set(i, j, (i * k + j) as f64 * 0.5 - 3.0);
        }
    }
    let mut b_left = DenseMatrix::zeros(rows, k);
    for i in 0..rows {
        for j in 0..k {
            b_left.set(i, j, ((i + 2 * j) % 7) as f64 - 3.0);
        }
    }
    let y_oracle = dense
        .right_multiply_matrix(&b_right)
        .map_err(|e| e.to_string())?;
    let x_oracle = dense
        .left_multiply_matrix(&b_left)
        .map_err(|e| e.to_string())?;

    say!(
        "selftest: {rows}x{cols} matrix, {shards} shards, batch {k}, store {}",
        dir.display()
    );
    let mut cases = 0usize;
    for backend in Backend::ALL {
        let encodings: &[Encoding] = match backend {
            Backend::Csrv | Backend::ParCsrv => &[Encoding::ReAns],
            _ => &Encoding::ALL,
        };
        for &encoding in encodings {
            for s in [1usize, shards] {
                selftest_case(
                    &dense, dir, backend, encoding, s, None, k, &y_oracle, &x_oracle, &b_right,
                    &b_left,
                )?;
                cases += 1;
            }
        }
        // Reordered builds (global and per-shard §5.3) must round-trip
        // save → load → serve too: per-shard permutations are the
        // format's version-2 feature, so the end-to-end gate covers it.
        for reorder in [
            ReorderMode::Global(ReorderAlgorithm::PathCover),
            ReorderMode::PerShard(ReorderAlgorithm::PathCover),
        ] {
            selftest_case(
                &dense,
                dir,
                backend,
                Encoding::ReAns,
                shards,
                Some(reorder),
                k,
                &y_oracle,
                &x_oracle,
                &b_right,
                &b_left,
            )?;
            cases += 1;
        }
    }
    say!("selftest passed: {cases} backend/encoding/shard/reorder combinations round-tripped through the container and matched the dense oracle to 1e-9");
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let [store_dir] = &args.positional[..] else {
        return Err("serve needs <store-dir>".into());
    };
    let port: u16 = args.parsed_flag("port", 7071u16)?;
    let host = args.flag("host").unwrap_or("127.0.0.1").to_string();
    let batch_width = args.bounded_flag("batch-width", 8, 1)?;
    let deadline_us: u64 = args.parsed_flag("deadline-us", 200u64)?;
    let max_inflight = args.bounded_flag("max-inflight", 256, 1)?;
    let serve_opts = if args.has("plan-f32") {
        ServeOptions::planned_f32()
    } else if args.has("plan") {
        ServeOptions::planned()
    } else {
        ServeOptions::default()
    };
    let store = ModelStore::open(store_dir.as_str()).map_err(|e| e.to_string())?;
    let names = store.list().map_err(|e| e.to_string())?;
    let registry = Registry::with_options(store, batch_width, serve_opts);
    let config = ServerConfig {
        batch_width,
        batch_deadline_us: deadline_us,
        max_inflight,
    };
    let engine = std::sync::Arc::new(Engine::new(registry, config));
    let server = Server::bind(std::sync::Arc::clone(&engine), (host.as_str(), port))
        .map_err(|e| format!("bind {host}:{port}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    say!(
        "gcm serve: listening on {addr} (batch width {batch_width}, deadline {deadline_us}us, max inflight {max_inflight})"
    );
    // Prewarm-on-load: pull every stored model through the registry now
    // so the first request hits warm shards (and plan-compiled kernels
    // under --plan), not a cold container decode.
    for name in &names {
        match engine.registry().get(name) {
            Ok(model) => say!(
                "  loaded {name}: {} x {}, {} shard(s), {} backend",
                model.rows(),
                model.cols(),
                model.num_shards(),
                model.backend().name()
            ),
            Err(e) => say!("  warning: {name}: {e}"),
        }
    }
    server.run();
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let [addr] = &args.positional[..] else {
        return Err("stats needs <host:port>".into());
    };
    let model = args.flag("model").unwrap_or("");
    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    let text = client.stats(model).map_err(|e| e.to_string())?;
    say!("{}", text.trim_end());
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return Err("missing command".into());
    };
    let known: &[&str] = match cmd.as_str() {
        "gen" => &["seed"],
        "compress" => &[
            "backend",
            "encoding",
            "grammar",
            "shards",
            "blocks",
            "reorder",
            "reorder-scope",
            "emit-plans",
            "plan-f32",
            "base",
        ],
        "bench-build" => &["shards", "blocks", "repeat"],
        "inspect" => &[],
        "multiply" => &[
            "left", "batch", "vector", "out", "plan", "plan-f32", "repeat", "rows", "sparse-x",
        ],
        "solve" => &[
            "method", "iters", "tol", "damping", "vector", "out", "plan", "plan-f32",
        ],
        "serve" => &[
            "port",
            "host",
            "batch-width",
            "deadline-us",
            "max-inflight",
            "plan",
            "plan-f32",
        ],
        "stats" => &["model"],
        "selftest" => &["rows", "cols", "shards"],
        other => return Err(format!("unknown command {other}")),
    };
    let args = Args::parse(&raw[1..], known)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "compress" => cmd_compress(&args),
        "bench-build" => cmd_bench_build(&args),
        "inspect" => cmd_inspect(&args),
        "multiply" => cmd_multiply(&args),
        "solve" => cmd_solve(&args),
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "selftest" => cmd_selftest(&args),
        _ => unreachable!("command validated above"),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parser_handles_flags_and_positionals() {
        let raw: Vec<String> = ["a.txt", "--shards", "3", "--left", "b.gcms"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let known = &["shards", "left", "blocks"][..];
        let args = Args::parse(&raw, known).unwrap();
        assert_eq!(args.positional, vec!["a.txt", "b.gcms"]);
        assert_eq!(args.flag("shards"), Some("3"));
        assert!(args.has("left"));
        // Boolean flags must not swallow the next token as a value.
        let raw_bool: Vec<String> = ["--emit-plans", "in.txt", "out.gcms"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let bool_args = Args::parse(&raw_bool, &["emit-plans"]).unwrap();
        assert!(bool_args.has("emit-plans"));
        assert_eq!(bool_args.positional, vec!["in.txt", "out.gcms"]);
        assert_eq!(args.parsed_flag("shards", 1usize).unwrap(), 3);
        assert_eq!(args.parsed_flag("blocks", 4usize).unwrap(), 4);
        assert!(Args::parse(&["--shards".to_string()], known).is_err());
        // A typo'd flag is a hard error, never a silent default.
        let err = Args::parse(&["--shard".to_string(), "4".to_string()], known).unwrap_err();
        assert!(err.contains("unknown flag --shard"), "{err}");
    }

    #[test]
    fn out_of_range_flag_values_are_rejected_not_clamped() {
        let parse = |pairs: &[(&str, &str)]| {
            let raw: Vec<String> = pairs
                .iter()
                .flat_map(|(n, v)| [format!("--{n}"), v.to_string()])
                .collect();
            Args::parse(
                &raw,
                &["shards", "blocks", "batch", "repeat", "rows", "cols"],
            )
            .unwrap()
        };
        // `--shards 0` / `--blocks 0` used to clamp to 1; now they fail.
        let err = build_config(&parse(&[("shards", "0")])).unwrap_err();
        assert!(err.contains("--shards must be at least 1"), "{err}");
        let err = build_config(&parse(&[("blocks", "0")])).unwrap_err();
        assert!(err.contains("--blocks must be at least 1"), "{err}");
        // In-range values still parse.
        assert_eq!(build_config(&parse(&[("shards", "3")])).unwrap().shards, 3);
        // The helper carries the bound in its message.
        let args = parse(&[("batch", "0"), ("rows", "2")]);
        assert!(args.bounded_flag("batch", 1, 1).is_err());
        assert_eq!(args.bounded_flag("rows", 96, 1).unwrap(), 2);
        assert_eq!(args.bounded_flag("repeat", 1, 1).unwrap(), 1);
    }

    #[test]
    fn selftest_passes_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gcm-selftest-unit-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let result = run_selftest(40, 9, 3, &dir);
        let _ = fs::remove_dir_all(&dir);
        result.expect("selftest must pass");
    }
}
