//! Extends the serve layer's zero-allocation guarantee from the kernels
//! (`zero_alloc_serve.rs`) to the **network request loop**: once a
//! connection is warm, each cycle of frame read → request decode →
//! batch submit → response encode through [`Engine::handle_frame`]
//! performs zero heap allocation. The lane buffers are preallocated,
//! moved in and out with `mem::take`, and the reply reuses the
//! caller's output buffer — so a long-running `gcm serve` process
//! stays off the allocator entirely in steady state.
//!
//! All checks live in one `#[test]` so no concurrent test perturbs the
//! process-wide allocation-op counter.

use std::path::PathBuf;

use gcm_bench::{alloc, TrackingAlloc};
use gcm_core::Encoding;
use gcm_matrix::DenseMatrix;
use gcm_serve::protocol::{self, status, Direction};
use gcm_serve::{Backend, BuildOptions, Engine, ModelStore, Registry, ServerConfig, ShardedModel};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcm-zalloc-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_alloc_free(name: &str, iterations: usize, mut f: impl FnMut()) {
    let before = alloc::alloc_ops();
    for _ in 0..iterations {
        f();
    }
    let after = alloc::alloc_ops();
    assert_eq!(
        after - before,
        0,
        "{name}: {} allocation ops over {iterations} cycles (must be 0)",
        after - before
    );
}

#[test]
fn steady_state_request_loop_is_allocation_free() {
    let mut dense = DenseMatrix::zeros(96, 12);
    for r in 0..96 {
        for c in 0..12 {
            if (r + c) % 3 != 0 {
                dense.set(r, c, ((r * 7 + c) % 9) as f64 * 0.5 - 1.0);
            }
        }
    }
    let dir = tmp_dir("loop");
    let store = ModelStore::open(&dir).unwrap();
    let model = ShardedModel::from_dense(
        &dense,
        &BuildOptions {
            backend: Backend::Compressed,
            encoding: Encoding::ReIv,
            shards: 3,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    store.save("m", &model).unwrap();

    let k = 4usize;
    // Deadline 0: the single test thread is always the batch leader and
    // flushes immediately, exercising fill → close → execute → read
    // without needing concurrent follower threads.
    let config = ServerConfig {
        batch_width: k,
        batch_deadline_us: 0,
        max_inflight: 16,
    };
    let engine = Engine::new(Registry::new(store, k), config);
    let (rows, cols) = (96usize, 12usize);

    // Pre-encoded request frames a persistent connection would replay.
    let x1 = vec![0.75; cols];
    let mut req_single = Vec::new();
    protocol::encode_multiply(&mut req_single, "m", Direction::Right, 1, &x1);
    let x_left = vec![0.25; rows];
    let mut req_left = Vec::new();
    protocol::encode_multiply(&mut req_left, "m", Direction::Left, 1, &x_left);
    let x_panel = vec![0.5; cols * k];
    let mut req_panel = Vec::new();
    protocol::encode_multiply(&mut req_panel, "m", Direction::Right, k, &x_panel);

    // Warm-up: first requests create the model's lanes, prewarm the
    // kernels via the registry, and grow the reusable buffers.
    let mut inbuf: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    for req in [&req_single, &req_left, &req_panel] {
        out.clear();
        engine.handle_frame(&req[4..], &mut out);
        assert_eq!(out[4], status::OK, "warm-up request must succeed");
        // Warm the frame-read path too (grows `inbuf` to the largest
        // frame once).
        let mut cursor = req.as_slice();
        assert!(protocol::read_frame(&mut cursor, &mut inbuf)
            .unwrap()
            .is_some());
    }

    // Steady state: the full connection-loop cycle — read a frame from
    // the wire, decode, batch, execute, encode the reply — repeatedly,
    // mixing coalescable k=1 traffic (both directions) with direct
    // k-wide panels. Zero heap allocation allowed.
    assert_alloc_free("request loop", 64, || {
        for req in [&req_single, &req_left, &req_panel] {
            let mut cursor = req.as_slice();
            let n = protocol::read_frame(&mut cursor, &mut inbuf)
                .unwrap()
                .expect("frame present");
            out.clear();
            engine.handle_frame(&inbuf[..n], &mut out);
            assert_eq!(out[4], status::OK);
        }
    });

    // Error replies must stay off the allocator too: an oversized k is
    // refused before any buffer work with a static message.
    let mut req_bad = Vec::new();
    protocol::encode_multiply(&mut req_bad, "m", Direction::Right, k + 1, &x_panel);
    out.clear();
    engine.handle_frame(&req_bad[4..], &mut out); // warm the reject path
    assert_eq!(out[4], status::BAD_REQUEST);
    assert_alloc_free("reject loop", 64, || {
        out.clear();
        engine.handle_frame(&req_bad[4..], &mut out);
        assert_eq!(out[4], status::BAD_REQUEST);
    });

    // Sanity outside the measured region: the loop's last single-vector
    // reply is the real product.
    out.clear();
    engine.handle_frame(&req_single[4..], &mut out);
    let mut y_ref = vec![0.0; rows];
    dense.right_multiply(&x1, &mut y_ref).unwrap();
    let payload = &out[5..];
    assert_eq!(payload.len(), rows * 8);
    for (r, want) in y_ref.iter().enumerate() {
        let got = f64::from_le_bytes(payload[r * 8..r * 8 + 8].try_into().unwrap());
        assert!((got - want).abs() < 1e-9, "row {r}: {got} vs {want}");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
