//! Acceptance tests for the staged build/load pipeline:
//!
//! * building and loading an ≥4-shard model runs on the persistent
//!   pool's workers — **no per-build or per-load thread spawns**
//!   (asserted with the vendored pool's `threads_ever_spawned` counter);
//! * the parallel pipeline produces **bit-identical containers** and
//!   dense-oracle-identical products vs. the sequential reference path,
//!   for every backend × reorder mode (including per-shard orders and
//!   auto encoding).

use gcm_matrix::{CsrvMatrix, DenseMatrix};
use gcm_pipeline::{BuildConfig, EncodingChoice, Pipeline, ReorderMode};
use gcm_reorder::ReorderAlgorithm;
use gcm_serve::{container, Backend, BuildOptions, ShardedModel};

/// A matrix whose two halves correlate different column pairs, so
/// per-shard reordering has real work to disagree about.
fn sample(rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        let v = ((r * 5 % 7) + 1) as f64;
        let w = ((r * 3 % 9) + 20) as f64;
        if r < rows / 2 {
            m.set(r, 0, v);
            m.set(r, (cols - 1).min(4), v);
            m.set(r, 2 % cols, w);
        } else {
            m.set(r, 1 % cols, v);
            m.set(r, (cols - 1).min(5), v);
            m.set(r, 3 % cols, w);
        }
        if (r * 3 + 1) % 4 != 0 {
            m.set(r, (r * 2 + 1) % cols, ((r % 5) + 1) as f64 * 0.5);
        }
    }
    m
}

#[test]
fn parallel_and_sequential_builds_yield_bit_identical_containers() {
    let dense = sample(64, 8);
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    let pipeline = Pipeline::new();
    for backend in Backend::ALL {
        for reorder in [
            None,
            Some(ReorderMode::Global(ReorderAlgorithm::PathCover)),
            Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
        ] {
            for encoding in [
                EncodingChoice::Fixed(gcm_core::Encoding::ReAns),
                EncodingChoice::Auto,
            ] {
                let config = BuildConfig {
                    backend,
                    shards: 4,
                    blocks: 2,
                    reorder,
                    encoding,
                    grammar: None,
                };
                let par = ShardedModel::from_artifacts(pipeline.build(&csrv, &config));
                let seq = ShardedModel::from_artifacts(pipeline.build_sequential(&csrv, &config));
                assert_eq!(
                    par.to_bytes(),
                    seq.to_bytes(),
                    "{} {:?} {:?}: containers must be bit-identical",
                    backend.name(),
                    reorder,
                    encoding
                );
            }
        }
    }
}

#[test]
fn pipeline_products_match_the_dense_oracle() {
    let dense = sample(61, 8);
    let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 2.0).collect();
    let yv: Vec<f64> = (0..61).map(|i| ((i % 6) as f64) - 2.5).collect();
    let mut y_ref = vec![0.0; 61];
    let mut x_ref = vec![0.0; 8];
    dense.right_multiply(&x, &mut y_ref).unwrap();
    dense.left_multiply(&yv, &mut x_ref).unwrap();
    for backend in Backend::ALL {
        let opts = BuildOptions {
            backend,
            shards: 4,
            blocks: 2,
            reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        // Through the container and the ShardTable-parallel loader too.
        let reloaded = ShardedModel::from_bytes(&model.to_bytes()).unwrap();
        for (name, m) in [("built", &model), ("reloaded", &reloaded)] {
            let mut y = vec![0.0; 61];
            m.right_multiply_panel(1, &x, &mut y).unwrap();
            for (a, b) in y.iter().zip(&y_ref) {
                assert!((a - b).abs() < 1e-9, "{} {name} right", backend.name());
            }
            let mut xo = vec![0.0; 8];
            m.left_multiply_panel(1, &yv, &mut xo).unwrap();
            for (a, b) in xo.iter().zip(&x_ref) {
                assert!((a - b).abs() < 1e-9, "{} {name} left", backend.name());
            }
        }
    }
}

#[test]
fn parallel_loader_equals_sequential_loader() {
    let dense = sample(48, 8);
    let model = ShardedModel::from_dense(
        &dense,
        &BuildOptions {
            shards: 4,
            reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
            ..BuildOptions::default()
        },
    )
    .unwrap();
    let bytes = model.to_bytes();
    let par = container::from_bytes(&bytes).unwrap();
    let seq = container::from_bytes_sequential(&bytes).unwrap();
    assert_eq!(par.to_bytes(), seq.to_bytes(), "loaders must agree");
    assert_eq!(par.num_shards(), 4);
    for i in 0..4 {
        assert_eq!(par.shard_col_order(i), seq.shard_col_order(i));
        assert_eq!(par.shard_reorder(i), seq.shard_reorder(i));
    }
}

#[test]
fn build_and_load_spawn_no_threads_beyond_the_pool() {
    let dense = sample(96, 8);
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    let config = BuildConfig {
        shards: 8,
        reorder: Some(ReorderMode::PerShard(ReorderAlgorithm::PathCover)),
        ..BuildConfig::default()
    };
    // First build + load spins the global pool up (and prewarm below
    // exercises the multiply broadcasts once).
    let warm = ShardedModel::from_artifacts(gcm_pipeline::global().build(&csrv, &config));
    let bytes = warm.to_bytes();
    let loaded = ShardedModel::from_bytes(&bytes).unwrap();
    loaded.prewarm(2);

    let spawned = rayon::threads_ever_spawned();
    for _ in 0..3 {
        let built = ShardedModel::from_artifacts(gcm_pipeline::global().build(&csrv, &config));
        assert_eq!(built.num_shards(), 8);
        let loaded = ShardedModel::from_bytes(&bytes).unwrap();
        loaded.prewarm(2);
        let mut y = vec![0.0; 96];
        loaded.right_multiply_panel(1, &[1.0; 8], &mut y).unwrap();
    }
    assert_eq!(
        rayon::threads_ever_spawned(),
        spawned,
        "pipeline builds/loads must reuse pool workers, never spawn"
    );
}
