//! The cross-backend differential test harness.
//!
//! One oracle (dense), one grid of matrix shapes (empty, zero-row, 1×1,
//! single row, single column, fully dense, sparse, clustered), and
//! **every** multiplication surface of **every** backend — CSR, CSRV,
//! parallel CSRV, the three compressed encodings, blocked, and the
//! sharded serve engine — must agree with the oracle to 1e-9:
//!
//! * `right_multiply` / `left_multiply` (allocating wrappers),
//! * `right_multiply_into` / `left_multiply_into` (one shared workspace
//!   across all backends, which also proves cross-backend workspace
//!   reuse is safe),
//! * `right_multiply_matrix[_into]` / `left_multiply_matrix[_into]`
//!   (batched panels),
//! * and, for the serve layer, everything again **after a save → load
//!   round-trip through the on-disk container**.
//!
//! This is the safety net under the serve refactor: any backend that
//! drifts from the shared `MatVec` semantics fails here with a name
//! attached.

use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_matrix::{CsrMatrix, CsrvMatrix, DenseMatrix, MatVec, ParallelCsrv, Workspace};
use gcm_serve::{Backend, BuildOptions, ReorderMode, ServeOptions, ShardedModel};

const TOL: f64 = 1e-9;

/// The matrix grid: name + dense representative.
fn matrix_grid() -> Vec<(&'static str, DenseMatrix)> {
    let mut grid: Vec<(&'static str, DenseMatrix)> = vec![
        ("empty-4x3", DenseMatrix::zeros(4, 3)),
        ("zero-rows-0x5", DenseMatrix::zeros(0, 5)),
        ("one-by-one", DenseMatrix::from_rows(&[&[2.5]])),
        (
            "single-row",
            DenseMatrix::from_rows(&[&[
                1.0, 0.0, 2.0, 1.0, 0.0, 2.0, 1.0, 0.0, 2.0, 1.0, 0.0, 2.0,
            ]]),
        ),
    ];
    {
        let mut col = DenseMatrix::zeros(9, 1);
        for r in 0..9 {
            col.set(r, 0, ((r % 3) + 1) as f64 * 0.5);
        }
        grid.push(("single-col", col));
    }
    {
        let mut dense = DenseMatrix::zeros(16, 6);
        for r in 0..16 {
            for c in 0..6 {
                dense.set(r, c, (((r * 6 + c) % 7) + 1) as f64 * 0.25);
            }
        }
        grid.push(("fully-dense", dense));
    }
    {
        let mut sparse = DenseMatrix::zeros(31, 9);
        for r in 0..31 {
            for c in 0..9 {
                if (r * 9 + c) % 7 == 0 {
                    sparse.set(r, c, (((r + c) % 4) + 1) as f64);
                }
            }
        }
        grid.push(("sparse", sparse));
    }
    {
        // Clustered: repeated row patterns, the RePair-friendly case.
        let mut clustered = DenseMatrix::zeros(48, 10);
        for r in 0..48 {
            for c in 0..10 {
                let v = match (r % 4, c % 3) {
                    (0, 0) => 1.5,
                    (1, 1) => 2.5,
                    (2, _) => 0.5,
                    (3, 2) => 7.25,
                    _ => 0.0,
                };
                clustered.set(r, c, v);
            }
        }
        grid.push(("clustered", clustered));
    }
    grid
}

/// Every in-memory backend as a named `MatVec` trait object.
fn backends(dense: &DenseMatrix) -> Vec<(String, Box<dyn MatVec>)> {
    let csrv = CsrvMatrix::from_dense(dense).expect("csrv");
    let mut out: Vec<(String, Box<dyn MatVec>)> = vec![
        ("csr".into(), Box::new(CsrMatrix::from_dense(dense))),
        ("csrv".into(), Box::new(csrv.clone())),
        ("parcsrv-3".into(), Box::new(ParallelCsrv::split(&csrv, 3))),
        (
            "blocked-re_iv-4".into(),
            Box::new(BlockedMatrix::compress(&csrv, Encoding::ReIv, 4)),
        ),
    ];
    for enc in Encoding::ALL {
        out.push((
            format!("compressed-{}", enc.name()),
            Box::new(CompressedMatrix::compress(&csrv, enc)),
        ));
    }
    // The sharded serve engine, plus one save→load round-trip per serve
    // backend: the differential harness is what makes the container a
    // safe place to put a model.
    for backend in Backend::ALL {
        let opts = BuildOptions {
            backend,
            shards: 3,
            blocks: 2,
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(dense, &opts).expect("build");
        let reloaded = ShardedModel::from_bytes(&model.to_bytes()).expect("container round-trip");
        out.push((format!("sharded-{}-3", backend.name()), Box::new(model)));
        out.push((
            format!("sharded-{}-3-reloaded", backend.name()),
            Box::new(reloaded),
        ));
    }
    // Per-shard column reordering (§5.3): every shard compresses under
    // its own permutation — the differential harness pins the reordered
    // kernels AND the per-shard-order container round-trip to the
    // oracle across the whole edge-shape grid.
    for backend in [Backend::Compressed, Backend::Blocked] {
        let opts = BuildOptions {
            backend,
            shards: 3,
            blocks: 2,
            reorder: Some(ReorderMode::PerShard(
                gcm_reorder::ReorderAlgorithm::PathCover,
            )),
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(dense, &opts).expect("build reordered");
        let reloaded = ShardedModel::from_bytes(&model.to_bytes())
            .expect("per-shard-order container round-trip");
        out.push((
            format!("sharded-{}-3-pershard-reorder", backend.name()),
            Box::new(model),
        ));
        out.push((
            format!("sharded-{}-3-pershard-reorder-reloaded", backend.name()),
            Box::new(reloaded),
        ));
    }
    out
}

fn assert_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= TOL,
            "{what}: index {i}: got {g}, oracle {w}"
        );
    }
}

fn input_vec(len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i * 7 + salt * 3) % 11) as f64 * 0.5 - 2.0)
        .collect()
}

fn input_panel(rows: usize, k: usize, salt: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, k);
    for i in 0..rows {
        for j in 0..k {
            m.set(i, j, ((i * k + j + salt) % 13) as f64 * 0.25 - 1.5);
        }
    }
    m
}

#[test]
fn every_backend_agrees_with_the_dense_oracle() {
    let k = 3usize;
    // One workspace shared across every backend and shape: reuse across
    // differently-shaped matrices must never corrupt results.
    let mut ws = Workspace::new();
    for (shape, dense) in matrix_grid() {
        let (rows, cols) = (dense.rows(), dense.cols());
        let x = input_vec(cols, 1);
        let yv = input_vec(rows, 2);
        let b_right = input_panel(cols, k, 3);
        let b_left = input_panel(rows, k, 4);

        // Oracle products.
        let mut y_oracle = vec![0.0; rows];
        dense.right_multiply(&x, &mut y_oracle).unwrap();
        let mut x_oracle = vec![0.0; cols];
        dense.left_multiply(&yv, &mut x_oracle).unwrap();
        let ym_oracle = dense.right_multiply_matrix(&b_right).unwrap();
        let xm_oracle = dense.left_multiply_matrix(&b_left).unwrap();

        for (name, backend) in backends(&dense) {
            let tag = format!("{shape}/{name}");
            assert_eq!(backend.rows(), rows, "{tag}: rows");
            assert_eq!(backend.cols(), cols, "{tag}: cols");

            // Allocating single-vector wrappers.
            let mut y = vec![0.0; rows];
            backend.right_multiply(&x, &mut y).unwrap();
            assert_close(&y, &y_oracle, &format!("{tag} right"));
            let mut xo = vec![0.0; cols];
            backend.left_multiply(&yv, &mut xo).unwrap();
            assert_close(&xo, &x_oracle, &format!("{tag} left"));

            // Workspace paths.
            let mut y2 = vec![0.0; rows];
            backend.right_multiply_into(&x, &mut y2, &mut ws).unwrap();
            assert_close(&y2, &y_oracle, &format!("{tag} right_into"));
            let mut x2 = vec![0.0; cols];
            backend.left_multiply_into(&yv, &mut x2, &mut ws).unwrap();
            assert_close(&x2, &x_oracle, &format!("{tag} left_into"));

            // Batched products, allocating and into.
            let ym = backend.right_multiply_matrix(&b_right).unwrap();
            assert_close(
                ym.as_slice(),
                ym_oracle.as_slice(),
                &format!("{tag} right_matrix"),
            );
            let xm = backend.left_multiply_matrix(&b_left).unwrap();
            assert_close(
                xm.as_slice(),
                xm_oracle.as_slice(),
                &format!("{tag} left_matrix"),
            );
            let mut ym2 = DenseMatrix::zeros(rows, k);
            backend
                .right_multiply_matrix_into(&b_right, &mut ym2, &mut ws)
                .unwrap();
            assert_close(
                ym2.as_slice(),
                ym_oracle.as_slice(),
                &format!("{tag} right_matrix_into"),
            );
            let mut xm2 = DenseMatrix::zeros(cols, k);
            backend
                .left_multiply_matrix_into(&b_left, &mut xm2, &mut ws)
                .unwrap();
            assert_close(
                xm2.as_slice(),
                xm_oracle.as_slice(),
                &format!("{tag} left_matrix_into"),
            );
        }
    }
}

/// Row-subset products (`right_multiply_rows`) must be bit-exact with
/// the corresponding slice of the full oracle product — across the
/// shape grid, every backend, every compressed encoding, shard counts,
/// and both the compile-on-load and the persisted-plan (v4 container)
/// paths. Output buffers are prefilled with a sentinel to prove the
/// subset path fully overwrites its chunk.
#[test]
fn row_subset_products_match_the_oracle_slice() {
    let k = 3usize;
    for (shape, dense) in matrix_grid() {
        let (rows, cols) = (dense.rows(), dense.cols());
        let b_right = input_panel(cols, k, 3);
        let ym_oracle = dense.right_multiply_matrix(&b_right).unwrap();
        let x = b_right.as_slice();
        let candidates = [
            (0, rows),
            (0, 0),
            (rows / 3, (2 * rows) / 3),
            (rows.saturating_sub(1), rows),
        ];
        for backend in Backend::ALL {
            let encodings: &[Encoding] = match backend {
                Backend::Compressed => &Encoding::ALL,
                _ => &[Encoding::ReAns],
            };
            for &encoding in encodings {
                for shards in [1usize, 3] {
                    for planned in [false, true] {
                        // Only the compressed/blocked backends compile
                        // plans; a planned pass elsewhere is a no-op.
                        if planned && !matches!(backend, Backend::Compressed | Backend::Blocked) {
                            continue;
                        }
                        let opts = BuildOptions {
                            backend,
                            encoding,
                            shards,
                            blocks: 2,
                            ..BuildOptions::default()
                        };
                        let built = ShardedModel::from_dense(&dense, &opts).expect("build");
                        let bytes = if planned {
                            built.prewarm_with(k, &ServeOptions::planned());
                            built.to_bytes_with_plans()
                        } else {
                            built.to_bytes()
                        };
                        let model = ShardedModel::from_bytes(&bytes).expect("round-trip");
                        let tag = format!(
                            "{shape}/{}-{}-s{shards}{}",
                            backend.name(),
                            encoding.name(),
                            if planned { "-planned" } else { "" }
                        );
                        for &(a, b) in &candidates {
                            if a > b || b > rows {
                                continue;
                            }
                            let mut y = vec![42.0; (b - a) * k];
                            model
                                .right_multiply_rows(a..b, k, x, &mut y)
                                .unwrap_or_else(|e| panic!("{tag} rows {a}..{b}: {e}"));
                            assert_close(
                                &y,
                                &ym_oracle.as_slice()[a * k..b * k],
                                &format!("{tag} rows {a}..{b}"),
                            );
                        }
                        // Past-the-end and inverted ranges are rejected.
                        let mut sink = vec![0.0; (rows + 1) * k];
                        assert!(
                            model
                                .right_multiply_rows(0..rows + 1, k, x, &mut sink)
                                .is_err(),
                            "{tag}: past-end range must be rejected"
                        );
                        if rows >= 2 {
                            #[allow(clippy::reversed_empty_ranges)]
                            let inverted = 2..1;
                            assert!(
                                model
                                    .right_multiply_rows(inverted, k, x, &mut sink)
                                    .is_err(),
                                "{tag}: inverted range must be rejected"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Sparse-input right products (`right_multiply_sparse`) must be
/// **exactly** equal to the same model's dense-input product — across
/// the shape grid, every backend, every compressed encoding, shard
/// counts, and both streaming and planned serving. Below the density
/// cutover the planned path routes through the activity-propagation
/// kernel, above it through the dense-scatter fallback; both claim
/// bit-equality with the dense kernels (modulo the sign of zero, which
/// `==` deliberately does not discriminate). The pattern set includes
/// the all-zero vector and a single non-zero; malformed inputs
/// (duplicate, unsorted, or out-of-range indices, more pairs than
/// columns, wrong output length) must be rejected.
#[test]
fn sparse_right_products_match_the_dense_path_exactly() {
    for (shape, dense) in matrix_grid() {
        let (rows, cols) = (dense.rows(), dense.cols());
        let mut patterns: Vec<(&'static str, Vec<(u32, f64)>)> = vec![("all-zero", vec![])];
        if cols > 0 {
            patterns.push(("single-nonzero", vec![(cols as u32 / 2, 1.75)]));
            patterns.push((
                "every-3rd",
                (0..cols as u32)
                    .step_by(3)
                    .map(|j| (j, 0.5 + f64::from(j % 4)))
                    .collect(),
            ));
        }
        for backend in Backend::ALL {
            let encodings: &[Encoding] = match backend {
                Backend::Compressed => &Encoding::ALL,
                _ => &[Encoding::ReAns],
            };
            for &encoding in encodings {
                for shards in [1usize, 3] {
                    for planned in [false, true] {
                        if planned && !matches!(backend, Backend::Compressed | Backend::Blocked) {
                            continue;
                        }
                        let opts = BuildOptions {
                            backend,
                            encoding,
                            shards,
                            blocks: 2,
                            ..BuildOptions::default()
                        };
                        let built = ShardedModel::from_dense(&dense, &opts).expect("build");
                        let model =
                            ShardedModel::from_bytes(&built.to_bytes()).expect("round-trip");
                        if planned {
                            model.prewarm_with(1, &ServeOptions::planned());
                        }
                        let tag = format!(
                            "{shape}/{}-{}-s{shards}{}",
                            backend.name(),
                            encoding.name(),
                            if planned { "-planned" } else { "" }
                        );
                        for (pname, x_nnz) in &patterns {
                            let mut x = vec![0.0; cols];
                            for &(j, v) in x_nnz {
                                x[j as usize] = v;
                            }
                            let mut y_dense = vec![0.0; rows];
                            model.right_multiply_panel(1, &x, &mut y_dense).unwrap();
                            // Sentinel prefill: the sparse path must
                            // fully overwrite y, untouched rows included.
                            let mut y_sparse = vec![42.0; rows];
                            model
                                .right_multiply_sparse(x_nnz, &mut y_sparse)
                                .unwrap_or_else(|e| panic!("{tag} {pname}: {e}"));
                            for (i, (s, d)) in y_sparse.iter().zip(&y_dense).enumerate() {
                                assert!(s == d, "{tag} {pname}: row {i}: sparse {s} != dense {d}");
                            }
                        }
                        // Malformed sparse inputs fast-fail.
                        if cols >= 3 {
                            let mut y = vec![0.0; rows];
                            assert!(
                                model
                                    .right_multiply_sparse(&[(1, 1.0), (1, 2.0)], &mut y)
                                    .is_err(),
                                "{tag}: duplicate index must be rejected"
                            );
                            assert!(
                                model
                                    .right_multiply_sparse(&[(2, 1.0), (0, 2.0)], &mut y)
                                    .is_err(),
                                "{tag}: unsorted indices must be rejected"
                            );
                            assert!(
                                model
                                    .right_multiply_sparse(&[(cols as u32, 1.0)], &mut y)
                                    .is_err(),
                                "{tag}: out-of-range index must be rejected"
                            );
                            let long: Vec<(u32, f64)> =
                                (0..=cols as u32).map(|j| (j, 1.0)).collect();
                            assert!(
                                model.right_multiply_sparse(&long, &mut y).is_err(),
                                "{tag}: more pairs than columns must be rejected"
                            );
                            let mut y_bad = vec![0.0; rows + 1];
                            assert!(
                                model
                                    .right_multiply_sparse(&[(0, 1.0)], &mut y_bad)
                                    .is_err(),
                                "{tag}: wrong y length must be rejected"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// MR-RePair and per-shard auto grammar selection must be invisible to
/// the products: across the shape grid, both compressed serve backends,
/// every encoding, shard counts, and streaming + planned + planned-f32
/// serving — after a save → load round-trip through the version-5
/// container — right/left panels match the dense oracle to 1e-9 (1e-3
/// for f32 plans) and sparse-input right products stay bit-equal to the
/// same model's dense-input path.
#[test]
fn grammar_stage_shards_match_the_oracle_everywhere() {
    use gcm_serve::GrammarChoice;
    let k = 2usize;
    for (shape, dense) in matrix_grid() {
        let (rows, cols) = (dense.rows(), dense.cols());
        let b_right = input_panel(cols, k, 3);
        let b_left = input_panel(rows, k, 4);
        let ym_oracle = dense.right_multiply_matrix(&b_right).unwrap();
        let xm_oracle = dense.left_multiply_matrix(&b_left).unwrap();
        let sparse_x: Vec<(u32, f64)> = (0..cols as u32)
            .step_by(2)
            .map(|j| (j, 0.75 + f64::from(j % 3)))
            .collect();
        for grammar in [GrammarChoice::MrRePair, GrammarChoice::Auto] {
            for backend in [Backend::Compressed, Backend::Blocked] {
                let encodings: &[Encoding] = match backend {
                    Backend::Compressed => &Encoding::ALL,
                    _ => &[Encoding::ReAns],
                };
                for &encoding in encodings {
                    for shards in [1usize, 3] {
                        let opts = BuildOptions {
                            backend,
                            encoding,
                            shards,
                            blocks: 2,
                            grammar: Some(grammar),
                            ..BuildOptions::default()
                        };
                        let built = ShardedModel::from_dense(&dense, &opts).expect("build");
                        let bytes = built.to_bytes();
                        for mode in ["streaming", "planned", "planned-f32"] {
                            let tag = format!(
                                "{shape}/{}-{}-{:?}-s{shards}-{mode}",
                                backend.name(),
                                encoding.name(),
                                grammar,
                            );
                            // A fresh load per mode: plans compile once
                            // per model, so each precision gets its own.
                            let model = ShardedModel::from_bytes(&bytes).expect("v5 round-trip");
                            for i in 0..model.num_shards() {
                                assert!(
                                    model.shard_grammar(i).is_some(),
                                    "{tag}: stage must survive the container"
                                );
                            }
                            let tol = match mode {
                                "planned" => {
                                    model.prewarm_with(k, &ServeOptions::planned());
                                    assert!(model.is_planned(), "{tag}");
                                    TOL
                                }
                                "planned-f32" => {
                                    model.prewarm_with(k, &ServeOptions::planned_f32());
                                    assert!(model.is_planned(), "{tag}");
                                    1e-3
                                }
                                _ => TOL,
                            };
                            let mut ym = vec![0.0; rows * k];
                            model
                                .right_multiply_panel(k, b_right.as_slice(), &mut ym)
                                .unwrap();
                            let mut xm = vec![0.0; cols * k];
                            model
                                .left_multiply_panel(k, b_left.as_slice(), &mut xm)
                                .unwrap();
                            for (i, (g, w)) in ym.iter().zip(ym_oracle.as_slice()).enumerate() {
                                assert!((g - w).abs() <= tol, "{tag} right {i}: {g} vs {w}");
                            }
                            for (i, (g, w)) in xm.iter().zip(xm_oracle.as_slice()).enumerate() {
                                assert!((g - w).abs() <= tol, "{tag} left {i}: {g} vs {w}");
                            }
                            // Sparse input: bit-equal to the same
                            // model's dense-input product.
                            let mut x_dense = vec![0.0; cols];
                            for &(j, v) in &sparse_x {
                                x_dense[j as usize] = v;
                            }
                            let mut y_dense = vec![0.0; rows];
                            model
                                .right_multiply_panel(1, &x_dense, &mut y_dense)
                                .unwrap();
                            let mut y_sparse = vec![42.0; rows];
                            model
                                .right_multiply_sparse(&sparse_x, &mut y_sparse)
                                .unwrap();
                            for (i, (s, d)) in y_sparse.iter().zip(&y_dense).enumerate() {
                                assert!(s == d, "{tag} sparse row {i}: {s} != {d}");
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn every_backend_rejects_mismatched_dimensions() {
    let dense = matrix_grid()
        .into_iter()
        .find(|(n, _)| *n == "sparse")
        .unwrap()
        .1;
    let (rows, cols) = (dense.rows(), dense.cols());
    for (name, backend) in backends(&dense) {
        let mut y = vec![0.0; rows];
        assert!(
            backend
                .right_multiply(&vec![0.0; cols + 1], &mut y)
                .is_err(),
            "{name}: right must reject wrong x length"
        );
        let mut x = vec![0.0; cols];
        assert!(
            backend.left_multiply(&vec![0.0; rows + 1], &mut x).is_err(),
            "{name}: left must reject wrong y length"
        );
        let bad = DenseMatrix::zeros(cols + 1, 2);
        assert!(
            backend.right_multiply_matrix(&bad).is_err(),
            "{name}: batched right must reject wrong panel shape"
        );
    }
}

#[test]
fn reordered_compression_survives_the_container() {
    // The §5 pipeline (reorder → compress → persist → load → serve) must
    // be product-preserving end to end.
    let (_, dense) = matrix_grid()
        .into_iter()
        .find(|(n, _)| *n == "clustered")
        .unwrap();
    let x = input_vec(dense.cols(), 5);
    let mut y_oracle = vec![0.0; dense.rows()];
    dense.right_multiply(&x, &mut y_oracle).unwrap();
    for algo in [
        gcm_reorder::ReorderAlgorithm::PathCover,
        gcm_reorder::ReorderAlgorithm::Mwm,
    ] {
        let opts = BuildOptions {
            shards: 2,
            reorder: Some(ReorderMode::Global(algo)),
            ..BuildOptions::default()
        };
        let model = ShardedModel::from_dense(&dense, &opts).unwrap();
        let reloaded = ShardedModel::from_bytes(&model.to_bytes()).unwrap();
        assert!(reloaded.col_order().is_some());
        let mut y = vec![0.0; dense.rows()];
        reloaded.right_multiply_panel(1, &x, &mut y).unwrap();
        assert_close(&y, &y_oracle, algo.name());
    }
}
