//! Deterministic corruption fuzzing of the `GCMSERV1` container.
//!
//! For every backend: serialise a sharded model, then (a) truncate at
//! every byte boundary and (b) flip bits in every byte. Loading must
//! fail cleanly in all cases — the FNV-64 checksum makes *any*
//! single-byte corruption detectable, and the structural validators
//! behind it guarantee that even a forged checksum cannot panic a
//! kernel (that layer is fuzzed separately in
//! `crates/core/tests/serial_fuzz.rs`).

use gcm_bench::{alloc, TrackingAlloc};
use gcm_core::{CompressedMatrix, Encoding};
use gcm_encodings::varint;
use gcm_matrix::{CsrvMatrix, DenseMatrix};
use gcm_serve::container::fnv1a64;
use gcm_serve::{Backend, BuildOptions, ServeOptions, ShardTable, ShardedModel};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

fn sample_container(backend: Backend) -> Vec<u8> {
    let mut dense = DenseMatrix::zeros(26, 7);
    for r in 0..26 {
        for c in 0..7 {
            if (r * 2 + c) % 3 != 0 {
                dense.set(r, c, (((r + c) % 5) + 1) as f64 * 0.5);
            }
        }
    }
    let opts = BuildOptions {
        backend,
        shards: 3,
        blocks: 2,
        ..BuildOptions::default()
    };
    ShardedModel::from_dense(&dense, &opts).unwrap().to_bytes()
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    for backend in Backend::ALL {
        let bytes = sample_container(backend);
        for cut in 0..bytes.len() {
            assert!(
                ShardedModel::from_bytes(&bytes[..cut]).is_err(),
                "{}: truncation at {cut}/{} must be rejected",
                backend.name(),
                bytes.len()
            );
        }
        assert!(ShardedModel::from_bytes(&bytes).is_ok());
    }
}

#[test]
fn byte_flips_at_every_offset_are_rejected() {
    for backend in Backend::ALL {
        let bytes = sample_container(backend);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                assert!(
                    ShardedModel::from_bytes(&mutated).is_err(),
                    "{}: flip {flip:#04x} at byte {i} must be rejected",
                    backend.name()
                );
            }
        }
    }
}

/// Forges a `GCMSERV1` container with a **valid checksum** but
/// attacker-chosen header fields and declared shard lengths, so only
/// the structural validators stand between the input and an allocation.
fn forge(rows: u64, cols: u64, backend_tag: u8, shards: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = b"GCMSERV1".to_vec();
    out.push(1); // version
    out.push(backend_tag);
    varint::write_u64(&mut out, rows);
    varint::write_u64(&mut out, cols);
    varint::write_u64(&mut out, shards.len() as u64);
    for (declared_len, payload) in shards {
        varint::write_u64(&mut out, *declared_len);
        out.extend_from_slice(payload);
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Loads `bytes`, asserting rejection *and* that the loader never
/// reserved anything close to what the inflated length field promised.
fn assert_rejected_without_big_allocation(name: &str, bytes: &[u8]) {
    const BUDGET: usize = 1 << 20; // 1 MiB — absurd lengths claim GiBs
    let live = alloc::reset_peak();
    assert!(
        ShardedModel::from_bytes(bytes).is_err(),
        "{name}: forged container must be rejected"
    );
    let grown = alloc::peak_bytes().saturating_sub(live);
    assert!(
        grown < BUDGET,
        "{name}: rejection allocated {grown} bytes — the inflated length sized a reservation"
    );
}

#[test]
fn inflated_lengths_with_valid_checksums_are_rejected_before_allocation() {
    let csrv = Backend::Csrv.tag();

    // Shard length claims ~2^60 bytes that are not there.
    assert_rejected_without_big_allocation(
        "inflated shard length",
        &forge(4, 2, csrv, &[(1u64 << 60, b"")]),
    );

    // Header column count past u32 (column indices are u32 on disk).
    assert_rejected_without_big_allocation(
        "implausible cols",
        &forge(4, (1u64 << 32) + 7, csrv, &[(1, b"\0")]),
    );

    // Header row count past any plausible matrix.
    assert_rejected_without_big_allocation(
        "implausible rows",
        &forge(1u64 << 60, 2, csrv, &[(1, b"\0")]),
    );

    // Header row count just past u32 (row counts are u32-bounded on
    // disk, and the bare `as usize` narrowing this guards used to
    // truncate it to 7 on 32-bit targets).
    assert_rejected_without_big_allocation(
        "rows just past u32",
        &forge((1u64 << 32) + 7, 2, csrv, &[(1, b"\0")]),
    );

    // Column-order length prefix claims cols entries (2^31 × 4 bytes =
    // 8 GiB) with an empty payload behind it.
    let huge_cols = 1u64 << 31;
    let mut order_payload = Vec::new();
    varint::write_u64(&mut order_payload, huge_cols);
    assert_rejected_without_big_allocation(
        "inflated column-order length",
        &forge(
            4,
            huge_cols,
            csrv,
            &[(order_payload.len() as u64, &order_payload)],
        ),
    );

    // parcsrv block count far beyond the bytes that could encode it.
    let mut par_payload = Vec::new();
    varint::write_u64(&mut par_payload, 0); // no column order
    varint::write_u64(&mut par_payload, 1u64 << 40); // blocks
    assert_rejected_without_big_allocation(
        "inflated parcsrv block count",
        &forge(
            4,
            2,
            Backend::ParCsrv.tag(),
            &[(par_payload.len() as u64, &par_payload)],
        ),
    );

    // Control: a genuine container still loads with the allocator
    // installed (the harness itself is sound).
    let good = sample_container(Backend::Csrv);
    assert!(ShardedModel::from_bytes(&good).is_ok());
}

/// Forged `re_fse` shard payloads behind a **valid checksum**: truncated
/// and header-corrupted tANS streams must be rejected by the structural
/// validators — cleanly, and without the declared lengths sizing any
/// large reservation.
#[test]
fn forged_re_fse_shard_payloads_are_rejected_within_budget() {
    let mut dense = DenseMatrix::zeros(26, 7);
    for r in 0..26 {
        for c in 0..7 {
            if (r * 2 + c) % 3 != 0 {
                dense.set(r, c, (((r + c) % 5) + 1) as f64 * 0.5);
            }
        }
    }
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    let cm = CompressedMatrix::compress(&csrv, Encoding::ReFse);
    let payload = gcm_core::serial::bundle_to_bytes(std::slice::from_ref(&cm), None);
    let tag = Backend::Compressed.tag();

    // Truncations of the genuine payload inside the FSE tail.
    for cut in [payload.len() - 1, payload.len() - 8, payload.len() / 2] {
        assert_rejected_without_big_allocation(
            "truncated re_fse shard payload",
            &forge(26, 7, tag, &[(cut as u64, &payload[..cut])]),
        );
    }

    // Every single-byte corruption of the shard payload, re-checksummed
    // so only the structural validators stand in the way: loading must
    // reject or produce a model that safely multiplies.
    for i in 0..payload.len() {
        for flip in [0x01u8, 0xFF] {
            let mut mutated = payload.clone();
            mutated[i] ^= flip;
            let container = forge(26, 7, tag, &[(mutated.len() as u64, &mutated)]);
            let live = alloc::reset_peak();
            if let Ok(model) = ShardedModel::from_bytes(&container) {
                let x = vec![1.0; model.cols()];
                let mut y = vec![0.0; model.rows()];
                model.right_multiply_panel(1, &x, &mut y).unwrap();
            }
            let grown = alloc::peak_bytes().saturating_sub(live);
            assert!(
                grown < (1 << 20),
                "re_fse flip {flip:#04x} at byte {i} allocated {grown} bytes"
            );
        }
    }

    // Control: the genuine payload loads through the forged framing.
    let good = forge(26, 7, tag, &[(payload.len() as u64, &payload)]);
    assert!(ShardedModel::from_bytes(&good).is_ok());
}

/// Rewrites the trailing FNV-64 checksum so a mutated body reaches the
/// structural validators instead of dying at the checksum gate.
fn refresh_checksum(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
}

/// Version-4 plan sections behind a valid checksum: truncations are
/// rejected, and every single-byte corruption of the section either
/// fails plan validation or yields a plan that still multiplies safely
/// — never a panic, never an attacker-sized allocation.
#[test]
fn forged_plan_sections_are_rejected_within_budget() {
    let mut dense = DenseMatrix::zeros(26, 7);
    for r in 0..26 {
        for c in 0..7 {
            if (r * 2 + c) % 3 != 0 {
                dense.set(r, c, (((r + c) % 5) + 1) as f64 * 0.5);
            }
        }
    }
    let opts = BuildOptions {
        backend: Backend::Compressed,
        shards: 3,
        blocks: 2,
        ..BuildOptions::default()
    };
    let model = ShardedModel::from_dense(&dense, &opts).unwrap();
    model.prewarm_with(1, &ServeOptions::planned());
    let bytes = model.to_bytes_with_plans();
    let table = ShardTable::parse(&bytes).unwrap();
    assert!(table.plan_bytes() > 0, "sample must carry a plan section");

    // Truncation at every boundary of the v4 container is rejected.
    for cut in 0..bytes.len() {
        assert!(
            ShardedModel::from_bytes(&bytes[..cut]).is_err(),
            "v4 truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }

    // Single-byte corruption across the whole plan section (kind bytes,
    // blob length varints, and blob interiors), re-checksummed so only
    // the plan validators stand in the way.
    let section_start = table
        .plan_ranges
        .iter()
        .flatten()
        .map(|r| r.start)
        .min()
        .unwrap();
    let section_end = table
        .plan_ranges
        .iter()
        .flatten()
        .map(|r| r.end)
        .max()
        .unwrap();
    for i in section_start..section_end {
        for flip in [0x01u8, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[i] ^= flip;
            refresh_checksum(&mut mutated);
            let live = alloc::reset_peak();
            // A flipped multiplier byte still decodes to a valid plan;
            // flipped indices must be caught by the bounds validators.
            if let Ok(model) = ShardedModel::from_bytes(&mutated) {
                let x = vec![1.0; model.cols()];
                let mut y = vec![0.0; model.rows()];
                model.right_multiply_panel(1, &x, &mut y).unwrap();
            }
            let grown = alloc::peak_bytes().saturating_sub(live);
            assert!(
                grown < (1 << 20),
                "plan-section flip {flip:#04x} at byte {i} allocated {grown} bytes"
            );
        }
    }

    // Control: the untouched v4 container loads and serves.
    let back = ShardedModel::from_bytes(&bytes).unwrap();
    assert!(back.is_planned());
}

/// Version-5 grammar metadata and incrementally **spliced** plan
/// sections behind a valid checksum: the fuzz target is a container
/// produced by `compress_incremental` (some shards spliced byte-ranges
/// from a base, one rebuilt), because that is the writer most likely to
/// misalign a section. Truncation at every boundary is rejected; every
/// single-byte corruption — grammar tags, fingerprints, payloads, and
/// plan blobs alike — either fails validation or yields a model that
/// still multiplies safely, never panicking and never letting a forged
/// length size an allocation past the 1 MiB budget.
#[test]
fn forged_grammar_tags_and_spliced_plan_sections_stay_within_budget() {
    use gcm_serve::{compress_incremental, BuildConfig, EncodingChoice, GrammarChoice};
    let mut dense = DenseMatrix::zeros(26, 7);
    for r in 0..26 {
        for c in 0..7 {
            if (r * 2 + c) % 3 != 0 {
                dense.set(r, c, (((r + c) % 5) + 1) as f64 * 0.5);
            }
        }
    }
    let config = BuildConfig {
        backend: Backend::Compressed,
        encoding: EncodingChoice::Fixed(Encoding::ReAns),
        grammar: Some(GrammarChoice::MrRePair),
        shards: 3,
        blocks: 2,
        reorder: None,
    };
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    let base_model =
        gcm_serve::ShardedModel::from_artifacts(gcm_pipeline::global().build(&csrv, &config));
    base_model.prewarm_with(1, &ServeOptions::planned());
    let base = base_model.to_bytes_with_plans();

    // Perturb the last row with an already-interned value so only the
    // final shard's fingerprint changes: the result splices two shards'
    // payloads and plan blobs from `base` and rebuilds one.
    let mut changed = dense;
    changed.set(25, 0, 1.5);
    let changed_csrv = CsrvMatrix::from_dense(&changed).unwrap();
    let (bytes, report) = compress_incremental(&changed_csrv, &config, &base).unwrap();
    assert!(report.full_reason.is_none(), "base must be splice-eligible");
    assert!(report.spliced() >= 1, "fuzz target must contain splices");
    let table = ShardTable::parse(&bytes).unwrap();
    assert!(table.plan_bytes() > 0, "spliced plans must be present");
    assert!(
        table.grammar_stages.iter().all(Option::is_some),
        "every shard must carry a stage tag"
    );

    for cut in 0..bytes.len() {
        assert!(
            ShardedModel::from_bytes(&bytes[..cut]).is_err(),
            "v5 truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }

    for i in 0..bytes.len() - 8 {
        for flip in [0x01u8, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[i] ^= flip;
            refresh_checksum(&mut mutated);
            let live = alloc::reset_peak();
            if let Ok(model) = ShardedModel::from_bytes(&mutated) {
                let x = vec![1.0; model.cols()];
                let mut y = vec![0.0; model.rows()];
                model.right_multiply_panel(1, &x, &mut y).unwrap();
            }
            let grown = alloc::peak_bytes().saturating_sub(live);
            assert!(
                grown < (1 << 20),
                "v5 flip {flip:#04x} at byte {i} allocated {grown} bytes"
            );
        }
    }

    // Control: the untouched spliced container loads, carries its
    // metadata, and serves the perturbed matrix correctly.
    let back = ShardedModel::from_bytes(&bytes).unwrap();
    assert!(back.is_planned());
    let x = vec![1.0; 7];
    let mut y = vec![0.0; 26];
    let mut y_ref = vec![0.0; 26];
    back.right_multiply_panel(1, &x, &mut y).unwrap();
    changed_csrv.right_multiply(&x, &mut y_ref).unwrap();
    for (a, b) in y.iter().zip(&y_ref) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn appended_and_garbage_input_is_rejected() {
    let bytes = sample_container(Backend::Compressed);
    // Trailing garbage breaks the checksum position.
    let mut extended = bytes.clone();
    extended.extend_from_slice(b"garbage");
    assert!(ShardedModel::from_bytes(&extended).is_err());
    // Arbitrary non-container bytes.
    assert!(ShardedModel::from_bytes(b"").is_err());
    assert!(ShardedModel::from_bytes(b"GCMSERV1").is_err());
    assert!(ShardedModel::from_bytes(&[0u8; 64]).is_err());
}
