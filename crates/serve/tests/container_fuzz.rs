//! Deterministic corruption fuzzing of the `GCMSERV1` container.
//!
//! For every backend: serialise a sharded model, then (a) truncate at
//! every byte boundary and (b) flip bits in every byte. Loading must
//! fail cleanly in all cases — the FNV-64 checksum makes *any*
//! single-byte corruption detectable, and the structural validators
//! behind it guarantee that even a forged checksum cannot panic a
//! kernel (that layer is fuzzed separately in
//! `crates/core/tests/serial_fuzz.rs`).

use gcm_matrix::DenseMatrix;
use gcm_serve::{Backend, BuildOptions, ShardedModel};

fn sample_container(backend: Backend) -> Vec<u8> {
    let mut dense = DenseMatrix::zeros(26, 7);
    for r in 0..26 {
        for c in 0..7 {
            if (r * 2 + c) % 3 != 0 {
                dense.set(r, c, (((r + c) % 5) + 1) as f64 * 0.5);
            }
        }
    }
    let opts = BuildOptions {
        backend,
        shards: 3,
        blocks: 2,
        ..BuildOptions::default()
    };
    ShardedModel::from_dense(&dense, &opts).unwrap().to_bytes()
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    for backend in Backend::ALL {
        let bytes = sample_container(backend);
        for cut in 0..bytes.len() {
            assert!(
                ShardedModel::from_bytes(&bytes[..cut]).is_err(),
                "{}: truncation at {cut}/{} must be rejected",
                backend.name(),
                bytes.len()
            );
        }
        assert!(ShardedModel::from_bytes(&bytes).is_ok());
    }
}

#[test]
fn byte_flips_at_every_offset_are_rejected() {
    for backend in Backend::ALL {
        let bytes = sample_container(backend);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                assert!(
                    ShardedModel::from_bytes(&mutated).is_err(),
                    "{}: flip {flip:#04x} at byte {i} must be rejected",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn appended_and_garbage_input_is_rejected() {
    let bytes = sample_container(Backend::Compressed);
    // Trailing garbage breaks the checksum position.
    let mut extended = bytes.clone();
    extended.extend_from_slice(b"garbage");
    assert!(ShardedModel::from_bytes(&extended).is_err());
    // Arbitrary non-container bytes.
    assert!(ShardedModel::from_bytes(b"").is_err());
    assert!(ShardedModel::from_bytes(b"GCMSERV1").is_err());
    assert!(ShardedModel::from_bytes(&[0u8; 64]).is_err());
}
