//! End-to-end tests of the batched TCP front-end: responses served over
//! the wire must be **bit-exact** with direct `right/left_multiply_panel`
//! calls on the same container (the batched kernels accumulate each
//! column independently and in k=1 order, so coalescing must never
//! change a single bit), and admission control must fast-fail instead
//! of queueing.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use gcm_matrix::DenseMatrix;
use gcm_serve::protocol::{status, Client, Direction};
use gcm_serve::{
    BuildOptions, Engine, ModelStore, Registry, Server, ServerConfig, ServerHandle, ShardedModel,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcm-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_dense(rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if (r * 3 + c) % 4 != 0 {
                // Values with non-trivial mantissas, so "bit-exact"
                // actually discriminates from "close".
                m.set(r, c, ((r * 31 + c * 17) % 23) as f64 * 0.37 - 2.1);
            }
        }
    }
    m
}

/// Store a model, start a server over it, and hand back a directly
/// loaded copy of the same container for reference products.
fn serve_sample(tag: &str, config: ServerConfig) -> (ServerHandle, ShardedModel, PathBuf) {
    let dir = tmp_dir(tag);
    let store = ModelStore::open(&dir).unwrap();
    let model = ShardedModel::from_dense(
        &sample_dense(24, 7),
        &BuildOptions {
            shards: 3,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    let path = store.save("m", &model).unwrap();
    let reference = ShardedModel::load(&path).unwrap();
    reference.prewarm(config.batch_width.max(1));
    let registry = Registry::new(store, config.batch_width);
    let server = Server::bind(Arc::new(Engine::new(registry, config)), ("127.0.0.1", 0)).unwrap();
    let handle = server.spawn().unwrap();
    (handle, reference, dir)
}

#[test]
fn coalesced_wire_responses_are_bit_exact_with_direct_panel_call() {
    let k = 6usize;
    let (mut handle, reference, dir) = serve_sample(
        "coalesce",
        ServerConfig {
            batch_width: k,
            batch_deadline_us: 500_000,
            max_inflight: 64,
        },
    );
    let (rows, cols) = (reference.rows(), reference.cols());

    // k concurrent single-vector requests released together: with the
    // long deadline they coalesce into panel kernel calls server-side.
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(k));
    let joins: Vec<_> = (0..k)
        .map(|j| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let x: Vec<f64> = (0..cols)
                    .map(|i| ((i * 13 + j * 7) % 11) as f64 * 0.73 - 3.3)
                    .collect();
                let mut client = Client::connect(addr).unwrap();
                let mut y = Vec::new();
                barrier.wait();
                client
                    .multiply("m", Direction::Right, 1, &x, &mut y)
                    .unwrap();
                (x, y)
            })
        })
        .collect();
    let results: Vec<(Vec<f64>, Vec<f64>)> = joins.into_iter().map(|t| t.join().unwrap()).collect();

    // Reference: ONE direct k-wide panel call with the same vectors.
    let mut x_panel = vec![0.0; cols * k];
    for (j, (x, _)) in results.iter().enumerate() {
        for i in 0..cols {
            x_panel[i * k + j] = x[i];
        }
    }
    let mut y_panel = vec![0.0; rows * k];
    reference
        .right_multiply_panel(k, &x_panel, &mut y_panel)
        .unwrap();
    for (j, (_, y)) in results.iter().enumerate() {
        assert_eq!(y.len(), rows);
        for r in 0..rows {
            assert!(
                y[r].to_bits() == y_panel[r * k + j].to_bits(),
                "request {j}, row {r}: wire {} != direct panel {} (must be bit-exact)",
                y[r],
                y_panel[r * k + j]
            );
        }
    }

    // The server must have actually batched: fewer kernel calls than
    // vectors (all k released together under a generous deadline).
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats("m").unwrap();
    let line = stats
        .lines()
        .find(|l| l.starts_with("model=m requests="))
        .unwrap_or_else(|| panic!("no model line in:\n{stats}"));
    assert!(line.contains("ok=6"), "{line}");
    drop(client);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn k_wide_wire_requests_match_direct_panel_calls_bit_exact_both_directions() {
    let (mut handle, reference, dir) = serve_sample(
        "kwide",
        ServerConfig {
            batch_width: 8,
            batch_deadline_us: 0,
            max_inflight: 64,
        },
    );
    let (rows, cols) = (reference.rows(), reference.cols());
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.info("m").unwrap(), (rows, cols));

    let k = 4usize;
    for (direction, in_dim, out_dim) in [
        (Direction::Right, cols, rows),
        (Direction::Left, rows, cols),
    ] {
        let x_panel: Vec<f64> = (0..in_dim * k)
            .map(|i| ((i * 29) % 13) as f64 * 0.31 - 1.7)
            .collect();
        let mut y_wire = Vec::new();
        client
            .multiply("m", direction, k, &x_panel, &mut y_wire)
            .unwrap();
        let mut y_direct = vec![0.0; out_dim * k];
        match direction {
            Direction::Right => reference.right_multiply_panel(k, &x_panel, &mut y_direct),
            Direction::Left => reference.left_multiply_panel(k, &x_panel, &mut y_direct),
        }
        .unwrap();
        assert_eq!(y_wire.len(), y_direct.len());
        for (i, (w, d)) in y_wire.iter().zip(&y_direct).enumerate() {
            assert!(
                w.to_bits() == d.to_bits(),
                "{} element {i}: wire {w} != direct {d}",
                direction.name()
            );
        }
    }
    drop(client);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Writes one raw frame (length prefix + body) and returns the response
/// status byte — a hand-rolled client the reference `Client`'s
/// validation never sees, so these frames reach the server as-is.
fn raw_roundtrip(stream: &mut std::net::TcpStream, body: &[u8], resp: &mut Vec<u8>) -> u8 {
    use std::io::Write;
    stream
        .write_all(&u32::try_from(body.len()).unwrap().to_le_bytes())
        .unwrap();
    stream.write_all(body).unwrap();
    gcm_serve::protocol::read_frame(stream, resp)
        .unwrap()
        .expect("server must answer, not hang up");
    resp[0]
}

#[test]
fn hand_rolled_malformed_frames_are_rejected_before_enqueueing() {
    use gcm_serve::protocol::verb;
    let (mut handle, reference, dir) = serve_sample(
        "raw",
        ServerConfig {
            batch_width: 8,
            batch_deadline_us: 0,
            max_inflight: 64,
        },
    );
    let cols = reference.cols();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut resp = Vec::new();

    // Zero-width panel: the decoder must refuse to drive the batching
    // lane with k = 0.
    let mut body = vec![verb::MULTIPLY, 0, 1, b'm', 0, 0];
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "k = 0"
    );
    // Payload that is not whole f64s.
    body = vec![verb::MULTIPLY, 0, 1, b'm', 1, 0, 1, 2, 3];
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "ragged payload"
    );
    // Whole f64s but the wrong count for the model: rejected
    // server-side before any queueing.
    body = vec![verb::MULTIPLY, 0, 1, b'm', 1, 0];
    body.extend_from_slice(&[0u8; 16]);
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "dimension mismatch"
    );
    // Row-subset frames: k = 0, inverted range, and a range past the
    // model all fast-fail with bad_request.
    body = vec![verb::MULTIPLY_ROWS, 1, b'm', 0, 0];
    body.extend_from_slice(&0u64.to_le_bytes());
    body.extend_from_slice(&1u64.to_le_bytes());
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "rows k = 0"
    );
    body = vec![verb::MULTIPLY_ROWS, 1, b'm', 1, 0];
    body.extend_from_slice(&9u64.to_le_bytes());
    body.extend_from_slice(&3u64.to_le_bytes());
    body.extend_from_slice(&vec![0u8; cols * 8]);
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "inverted range"
    );
    body = vec![verb::MULTIPLY_ROWS, 1, b'm', 1, 0];
    body.extend_from_slice(&0u64.to_le_bytes());
    body.extend_from_slice(&u64::MAX.to_le_bytes());
    body.extend_from_slice(&vec![0u8; cols * 8]);
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "absurd range"
    );

    // Sparse frames. A forged pair list helper: the reference client
    // sorts and validates, so these can only arrive hand-rolled.
    let pairs = |list: &[(u32, f64)]| -> Vec<u8> {
        let mut out = Vec::new();
        for &(idx, val) in list {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&val.to_le_bytes());
        }
        out
    };
    // Payload that is not a whole number of (u32, f64) pairs.
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&[0u8; 7]);
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse ragged payload"
    );
    // Non-zero count disagrees with the payload.
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&2u32.to_le_bytes());
    body.extend_from_slice(&pairs(&[(0, 1.0)]));
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse count overclaims payload"
    );
    // An absurd claimed count with no payload behind it must be
    // rejected from the count/length comparison alone — the server
    // never sizes a buffer from the attacker's number.
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse absurd count"
    );
    // Unsorted and duplicate indices: structural invariants of the
    // format, rejected at decode, before any model lookup or queueing.
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&2u32.to_le_bytes());
    body.extend_from_slice(&pairs(&[(5, 1.0), (2, 1.0)]));
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse unsorted indices"
    );
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&2u32.to_le_bytes());
    body.extend_from_slice(&pairs(&[(3, 1.0), (3, 2.0)]));
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse duplicate index"
    );
    // Well-formed frame, but the index is out of range for the model:
    // rejected against the model's columns before admission.
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&pairs(&[(cols as u32, 1.0)]));
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse out-of-range index"
    );
    // More pairs than the model has columns.
    let long: Vec<(u32, f64)> = (0..=cols as u32).map(|j| (j, 1.0)).collect();
    body = vec![verb::MULTIPLY_SPARSE, 1, b'm'];
    body.extend_from_slice(&(long.len() as u32).to_le_bytes());
    body.extend_from_slice(&pairs(&long));
    assert_eq!(
        raw_roundtrip(&mut stream, &body, &mut resp),
        status::BAD_REQUEST,
        "sparse more pairs than columns"
    );

    // The connection survives every rejection and still serves.
    drop(stream);
    let mut client = Client::connect(handle.addr()).unwrap();
    let x = vec![0.5; cols];
    let mut y = Vec::new();
    client
        .multiply("m", Direction::Right, 1, &x, &mut y)
        .unwrap();
    assert_eq!(y.len(), reference.rows());
    drop(client);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sparse_wire_responses_are_bit_exact_with_direct_call() {
    let (mut handle, reference, dir) = serve_sample(
        "sparsewire",
        ServerConfig {
            batch_width: 8,
            batch_deadline_us: 0,
            max_inflight: 64,
        },
    );
    let (rows, cols) = (reference.rows(), reference.cols());
    let mut client = Client::connect(handle.addr()).unwrap();
    for x_nnz in [
        &[][..],
        &[(3u32, 1.75)],
        &[(0, 0.5), (2, -1.25), (6, 3.0)],
        &(0..cols as u32)
            .map(|j| (j, 0.25 + f64::from(j)))
            .collect::<Vec<_>>(),
    ] {
        let mut y_wire = Vec::new();
        client.multiply_sparse("m", x_nnz, &mut y_wire).unwrap();
        let mut y_direct = vec![0.0; rows];
        reference
            .right_multiply_sparse(x_nnz, &mut y_direct)
            .unwrap();
        assert_eq!(y_wire.len(), rows, "nnz={}", x_nnz.len());
        for (i, (w, d)) in y_wire.iter().zip(&y_direct).enumerate() {
            assert!(
                w.to_bits() == d.to_bits(),
                "nnz={} element {i}: wire {w} != direct {d}",
                x_nnz.len()
            );
        }
    }
    drop(client);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn row_subset_wire_responses_are_bit_exact_with_direct_call() {
    let (mut handle, reference, dir) = serve_sample(
        "rowsub",
        ServerConfig {
            batch_width: 8,
            batch_deadline_us: 0,
            max_inflight: 64,
        },
    );
    let (rows, cols) = (reference.rows(), reference.cols());
    let mut client = Client::connect(handle.addr()).unwrap();
    let k = 3usize;
    let x_panel: Vec<f64> = (0..cols * k)
        .map(|i| ((i * 19) % 17) as f64 * 0.41 - 2.2)
        .collect();
    for range in [0..4usize, 9..17, rows - 1..rows, 0..rows] {
        let mut y_wire = Vec::new();
        client
            .multiply_rows("m", range.clone(), k, &x_panel, &mut y_wire)
            .unwrap();
        let mut y_direct = vec![0.0; range.len() * k];
        reference
            .right_multiply_rows(range.clone(), k, &x_panel, &mut y_direct)
            .unwrap();
        assert_eq!(y_wire.len(), y_direct.len(), "rows {range:?}");
        for (i, (w, d)) in y_wire.iter().zip(&y_direct).enumerate() {
            assert!(
                w.to_bits() == d.to_bits(),
                "rows {range:?} element {i}: wire {w} != direct {d}"
            );
        }
    }
    drop(client);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn overload_fast_fails_instead_of_queueing() {
    // max_inflight 1 + a long flush deadline: the first request parks as
    // batch leader holding the only in-flight slot, so the second is
    // deterministically shed — and quickly, not after queueing behind
    // the first.
    let (mut handle, _reference, dir) = serve_sample(
        "overload",
        ServerConfig {
            batch_width: 8,
            batch_deadline_us: 500_000,
            max_inflight: 1,
        },
    );
    let addr = handle.addr();
    let cols = 7usize;
    let x = vec![1.0; cols];

    let first = {
        let x = x.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .multiply_status("m", Direction::Right, 1, &x)
                .unwrap()
        })
    };
    // Give the first request time to occupy the slot (it then waits
    // 500ms for batch company).
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).unwrap();
    let t = std::time::Instant::now();
    let second = client
        .multiply_status("m", Direction::Right, 1, &x)
        .unwrap();
    let shed_latency = t.elapsed();
    let first = first.join().unwrap();

    // Exactly one request is served, the other shed — and the shed
    // response returns fast, well inside the leader's deadline window.
    let mut statuses = [first, second];
    statuses.sort_unstable();
    assert_eq!(
        statuses,
        [status::OK, status::OVERLOADED],
        "one OK + one fast-fail shed expected"
    );
    assert!(
        shed_latency < Duration::from_millis(400),
        "shed response took {shed_latency:?} — it queued instead of fast-failing"
    );

    let stats = client.stats("m").unwrap();
    assert!(stats.contains("overloaded=1"), "{stats}");
    drop(client);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
