//! Locks in the serve layer's headline guarantee: a steady-state serving
//! loop over a **sharded** model — multiple shards dispatched across the
//! persistent pool via the allocation-free broadcast — performs **zero
//! heap allocation**, and thanks to [`ShardedModel::prewarm`] that holds
//! from the *first request after loading the container*, not just after
//! a warm-up call.
//!
//! All checks live in one `#[test]` so no concurrent test perturbs the
//! process-wide allocation-op counter.

use gcm_bench::alloc;
use gcm_bench::TrackingAlloc;
use gcm_core::{
    conjugate_gradient_into, pagerank_into, power_iterations_into, Encoding, SolverWorkspace,
};
use gcm_matrix::DenseMatrix;
use gcm_serve::{Backend, BuildOptions, ServeOptions, ShardedModel};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

fn repetitive(rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = match (r % 4, c % 3) {
                (0, 0) => 1.5,
                (1, 1) => 2.5,
                (2, _) => 0.5,
                (3, 2) => 7.25,
                _ => 0.0,
            };
            m.set(r, c, v);
        }
    }
    m
}

fn assert_alloc_free(name: &str, iterations: usize, mut f: impl FnMut()) {
    let before = alloc::alloc_ops();
    for _ in 0..iterations {
        f();
    }
    let after = alloc::alloc_ops();
    assert_eq!(
        after - before,
        0,
        "{name}: {} allocation ops over {iterations} calls (must be 0)",
        after - before
    );
}

#[test]
fn sharded_serving_loop_is_allocation_free_from_the_first_request() {
    let dense = repetitive(120, 12);
    let (rows, cols) = (120usize, 12usize);
    let k = 4usize;

    // Request buffers a long-running server would own.
    let x = vec![1.0; cols];
    let mut y = vec![0.0; rows];
    let yv = vec![1.0; rows];
    let mut xo = vec![0.0; cols];
    let x_panel = vec![0.5; cols * k];
    let mut y_panel = vec![0.0; rows * k];
    let y_in_panel = vec![0.5; rows * k];
    let mut x_panel_out = vec![0.0; cols * k];

    // Single-threaded shard backends carry the full guarantee. (Shards
    // that are themselves pool-parallel allocate per-task control
    // structures when they fan out internally — documented in
    // `sharded.rs` — so blocked/parcsrv are exercised for correctness in
    // the differential harness, not here.)
    // Both serve modes carry the guarantee: streaming kernels, and the
    // compiled-plan kernels a plan-enabled prewarm switches dispatch to.
    // The single-shard planned case additionally routes through the
    // row-range-parallel right multiply (plan row index + the
    // allocation-free broadcast), which must stay allocation-free too.
    for (name, backend, encoding, shards, serve) in [
        (
            "sharded-compressed-re_iv",
            Backend::Compressed,
            Encoding::ReIv,
            3usize,
            ServeOptions::default(),
        ),
        (
            "sharded-compressed-re_ans",
            Backend::Compressed,
            Encoding::ReAns,
            3,
            ServeOptions::default(),
        ),
        (
            "sharded-csrv",
            Backend::Csrv,
            Encoding::ReAns,
            3,
            ServeOptions::default(),
        ),
        (
            "planned-compressed-re_iv",
            Backend::Compressed,
            Encoding::ReIv,
            3,
            ServeOptions::planned(),
        ),
        (
            "planned-compressed-re_ans",
            Backend::Compressed,
            Encoding::ReAns,
            3,
            ServeOptions::planned(),
        ),
        (
            "planned-row-parallel-re_32",
            Backend::Compressed,
            Encoding::Re32,
            1,
            ServeOptions::planned(),
        ),
    ] {
        let opts = BuildOptions {
            backend,
            encoding,
            shards,
            ..BuildOptions::default()
        };
        let built = ShardedModel::from_dense(&dense, &opts).unwrap();
        assert_eq!(built.num_shards(), shards, "{name}: shard count");

        // The restart story: serve from a container round-trip, prewarm,
        // and demand allocation-freedom from the very first request.
        let model = ShardedModel::from_bytes(&built.to_bytes()).expect("container round-trip");
        model.prewarm_with(k, &serve);
        assert_eq!(model.is_planned(), serve.plans, "{name}: plan state");
        if serve.plans {
            assert!(model.plan_heap_bytes() > 0, "{name}: plan memory reported");
        }

        assert_alloc_free(&format!("{name} first batched right"), 1, || {
            model
                .right_multiply_panel(k, &x_panel, &mut y_panel)
                .unwrap();
        });
        assert_alloc_free(&format!("{name} first batched left"), 1, || {
            model
                .left_multiply_panel(k, &y_in_panel, &mut x_panel_out)
                .unwrap();
        });

        // Steady state: a mixed single-vector / batched loop.
        assert_alloc_free(&format!("{name} steady state"), 16, || {
            model.right_multiply_panel(1, &x, &mut y).unwrap();
            model.left_multiply_panel(1, &yv, &mut xo).unwrap();
            model
                .right_multiply_panel(k, &x_panel, &mut y_panel)
                .unwrap();
            model
                .left_multiply_panel(k, &y_in_panel, &mut x_panel_out)
                .unwrap();
        });

        // Row-subset serving: after one warm call, the subset path —
        // plan CSR row_ptr slicing for planned shards, the workspace
        // full-product fallback otherwise — is allocation-free too.
        // The range crosses shard boundaries so the per-shard clamp
        // and offset arithmetic are on the measured path.
        let sub = (rows / 4)..(rows - rows / 4);
        let mut y_sub = vec![0.0; sub.len() * k];
        model
            .right_multiply_rows(sub.clone(), k, &x_panel, &mut y_sub)
            .unwrap();
        assert_alloc_free(&format!("{name} row-subset steady state"), 16, || {
            model
                .right_multiply_rows(sub.clone(), k, &x_panel, &mut y_sub)
                .unwrap();
        });

        // Sparse-input serving: `right_multiply_sparse` — validation,
        // the kernel (scatter here; 3 of 12 columns is above the
        // density cutover), and the shard broadcast — is
        // allocation-free from the very first request, because the
        // prewarm's throwaway sparse pass sized the staging buffers.
        let x_nnz = [(1u32, 0.5), (5, 2.0), (11, -1.25)];
        let mut y_sparse = vec![0.0; rows];
        assert_alloc_free(&format!("{name} first sparse"), 1, || {
            model.right_multiply_sparse(&x_nnz, &mut y_sparse).unwrap();
        });
        assert_alloc_free(&format!("{name} sparse steady state"), 16, || {
            model.right_multiply_sparse(&x_nnz, &mut y_sparse).unwrap();
        });
    }

    // The activity-propagation sparse kernel specifically: on a planned
    // model wide enough that a few non-zeroes sit below the density
    // cutover, the lazy dependency index is built by the prewarm's
    // throwaway sparse pass, so even the first live request through the
    // activity walk stays off the heap — at every nnz up to the cutover
    // and across shard counts (1 exercises the single-shard fast path,
    // 3 the broadcast).
    let wide = repetitive(96, 60);
    for shards in [1usize, 3] {
        let built = ShardedModel::from_dense(
            &wide,
            &BuildOptions {
                backend: Backend::Compressed,
                encoding: Encoding::ReAns,
                shards,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let model = ShardedModel::from_bytes(&built.to_bytes()).expect("container round-trip");
        model.prewarm_with(1, &ServeOptions::planned());
        let mut y_sparse = vec![0.0; 96];
        for x_nnz in [
            &[(7u32, 1.5)][..],
            &[(3, 0.5), (40, -2.0)],
            &[(0, 1.0), (30, 1.0), (59, 1.0)],
        ] {
            assert_alloc_free(
                &format!("activity sparse s{shards} nnz={}", x_nnz.len()),
                8,
                || {
                    model.right_multiply_sparse(x_nnz, &mut y_sparse).unwrap();
                },
            );
        }
        // And the results are the real products.
        let mut x = vec![0.0; 60];
        for &(j, v) in &[(0u32, 1.0), (30, 1.0), (59, 1.0)] {
            x[j as usize] = v;
        }
        let mut y_ref = vec![0.0; 96];
        wide.right_multiply(&x, &mut y_ref).unwrap();
        for (a, b) in y_sparse.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9, "sparse s{shards}: {a} vs {b}");
        }
    }

    // The iterative solver drivers: after `SolverWorkspace::prepare`,
    // whole power-iteration, PageRank, and conjugate-gradient runs over
    // the sharded model perform zero heap allocation — the drivers own
    // no per-iteration state and the model's `MatVec` entry points
    // route through the panel paths proven flat above.
    let square = repetitive(60, 60);
    let solver_model = ShardedModel::from_dense(
        &square,
        &BuildOptions {
            backend: Backend::Compressed,
            encoding: Encoding::ReAns,
            shards: 3,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    solver_model.prewarm_with(1, &ServeOptions::planned());
    let mut sws = SolverWorkspace::new();
    sws.prepare(&solver_model).unwrap();
    let mut xs = vec![1.0; 60];
    assert_alloc_free("power iteration loop", 1, || {
        power_iterations_into(&solver_model, &mut xs, 20, &mut sws).unwrap();
    });
    xs.fill(1.0 / 60.0);
    assert_alloc_free("pagerank loop", 1, || {
        pagerank_into(&solver_model, &mut xs, 0.85, 20, 0.0, &mut sws).unwrap();
    });
    xs.fill(0.0);
    let b_target = vec![1.0; 60];
    assert_alloc_free("conjugate gradient loop", 1, || {
        conjugate_gradient_into(&solver_model, &b_target, &mut xs, 20, 0.0, &mut sws).unwrap();
    });

    // The v4 persisted-plan container must load by *casting*: zero plan
    // compilations (the process-wide counter stays flat across load AND
    // the post-load prewarm) and no grammar-decode-sized allocation —
    // loading stays within a small multiple of the container itself.
    let built = ShardedModel::from_dense(
        &dense,
        &BuildOptions {
            backend: Backend::Compressed,
            encoding: Encoding::ReAns,
            shards: 3,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    built.prewarm_with(k, &ServeOptions::planned());
    let bytes = built.to_bytes_with_plans();
    let compiles_before = gcm_core::plan_compiles();
    let live = alloc::reset_peak();
    let loaded = ShardedModel::from_bytes(&bytes).expect("v4 load");
    let grown = alloc::peak_bytes().saturating_sub(live);
    assert!(loaded.is_planned(), "persisted plans must arrive installed");
    loaded.prewarm_with(k, &ServeOptions::planned());
    assert_eq!(
        gcm_core::plan_compiles(),
        compiles_before,
        "v4 load + prewarm must cast persisted plans, never recompile"
    );
    assert!(
        grown < bytes.len() * 4 + (1 << 16),
        "v4 load allocated {grown} bytes for a {}-byte container — \
         that smells like a grammar decode on the load path",
        bytes.len()
    );

    // Sanity: the results the loop produced are the real products.
    let mut y_ref = vec![0.0; rows];
    dense.right_multiply(&x, &mut y_ref).unwrap();
    for (a, b) in y.iter().zip(&y_ref) {
        assert!((a - b).abs() < 1e-9);
    }
}
