//! High-level reordering driver (§5.3).
//!
//! Ties together CSM computation, pruning, and the four algorithms, both
//! for whole matrices (Table 3) and per row block (Table 4, where each of
//! the 16 blocks gets its own column order — legal because CSRV pairs keep
//! their original column indices).

use gcm_matrix::{CsrvMatrix, RowBlocks};

use crate::csm::{Csm, CsmConfig};
use crate::mwm::mwm_order;
use crate::pathcover::{path_cover, path_cover_plus};
use crate::tsp::{tsp_order, TspConfig};

/// The four column-reordering algorithms of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderAlgorithm {
    /// Lin–Kernighan-style TSP heuristic (slowest, near-best quality).
    Lkh,
    /// Greedy disjoint-path cover (fastest).
    PathCover,
    /// PathCover with path coalescing (reported worse in the paper).
    PathCoverPlus,
    /// Exact maximum-weight matching chains.
    Mwm,
}

impl ReorderAlgorithm {
    /// The algorithms reported in Table 3 (PathCover+ is excluded there).
    pub const TABLE3: [ReorderAlgorithm; 3] = [
        ReorderAlgorithm::Lkh,
        ReorderAlgorithm::PathCover,
        ReorderAlgorithm::Mwm,
    ];

    /// Paper name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            ReorderAlgorithm::Lkh => "LKH",
            ReorderAlgorithm::PathCover => "PathCover",
            ReorderAlgorithm::PathCoverPlus => "PathCover+",
            ReorderAlgorithm::Mwm => "MWM",
        }
    }
}

/// Computes a column order for `matrix` using `algo` over the
/// locally-pruned CSM with sparsity `k` (the configuration Table 3 found
/// best).
///
/// Returns `order` with `order[p]` = original column at new position `p`.
pub fn reorder_columns(
    matrix: &CsrvMatrix,
    algo: ReorderAlgorithm,
    csm_config: CsmConfig,
    k: usize,
) -> Vec<usize> {
    let csm = Csm::compute(matrix, csm_config);
    let graph = csm.locally_pruned(k);
    match algo {
        ReorderAlgorithm::Lkh => tsp_order(&graph, TspConfig::default()),
        ReorderAlgorithm::PathCover => path_cover(&graph),
        ReorderAlgorithm::PathCoverPlus => path_cover_plus(&graph),
        ReorderAlgorithm::Mwm => mwm_order(&graph),
    }
}

/// Reordering configuration for **one** row block: the algorithm plus
/// the CSM settings it runs with. The per-block driver takes one of
/// these per block, so a caller (the staged build pipeline) can give
/// every shard its own algorithm or pruning sparsity.
#[derive(Debug, Clone, Copy)]
pub struct BlockReorderConfig {
    /// Reordering algorithm (§5.2).
    pub algo: ReorderAlgorithm,
    /// CSM computation settings (§5.1).
    pub csm: CsmConfig,
    /// Local-pruning sparsity `k` (Table 3 found 8 best).
    pub k: usize,
}

impl BlockReorderConfig {
    /// The Table 3 defaults (exact CSM, `k = 8`) for `algo`.
    pub fn new(algo: ReorderAlgorithm) -> Self {
        Self {
            algo,
            csm: CsmConfig::exact(),
            k: 8,
        }
    }

    /// Computes this configuration's column order for `block` and applies
    /// it, returning the reordered block and the permutation
    /// (`order[p]` = original column at new position `p`).
    pub fn apply(&self, block: &CsrvMatrix) -> (CsrvMatrix, Vec<usize>) {
        let order = reorder_columns(block, self.algo, self.csm, self.k);
        let reordered = block.with_column_order(&order);
        (reordered, order)
    }
}

/// Applies `algo` independently to each of `blocks` row blocks (§5.3):
/// every block is reordered with its own permutation and returned as a
/// fresh CSRV matrix, ready for per-block compression. Thin wrapper over
/// [`reorder_blocks_with`] with one uniform configuration.
pub fn reorder_blocks(
    matrix: &CsrvMatrix,
    blocks: usize,
    algo: ReorderAlgorithm,
    csm_config: CsmConfig,
    k: usize,
) -> Vec<CsrvMatrix> {
    let config = BlockReorderConfig {
        algo,
        csm: csm_config,
        k,
    };
    RowBlocks::split(matrix, blocks)
        .into_blocks()
        .iter()
        .map(|block| config.apply(block).0)
        .collect()
}

/// The per-block driver (§5.3) with an explicit configuration per block:
/// `configs[i]` reorders row block `i`, and the permutation each block
/// was reordered with is returned alongside it — per-block column orders
/// are first-class, so callers can persist them as provenance (the
/// `GCMSERV1` container stores one per shard).
///
/// # Panics
/// Panics if `configs.len()` differs from the number of row blocks the
/// split produces (`RowBlocks::split(matrix, configs.len())` block
/// count — equal to `configs.len()` clamped to the row count).
pub fn reorder_blocks_with(
    matrix: &CsrvMatrix,
    configs: &[BlockReorderConfig],
) -> Vec<(CsrvMatrix, Vec<usize>)> {
    let parts = RowBlocks::split(matrix, configs.len().max(1));
    assert_eq!(
        parts.len(),
        configs.len(),
        "one config per block required (got {} configs for {} blocks)",
        configs.len(),
        parts.len()
    );
    parts
        .into_blocks()
        .iter()
        .zip(configs)
        .map(|(block, config)| config.apply(block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_matrix::DenseMatrix;

    /// A matrix with correlated column pairs placed far apart: columns
    /// (0,4) and (1,5) always carry identical values.
    fn correlated() -> DenseMatrix {
        let mut m = DenseMatrix::zeros(60, 6);
        for r in 0..60 {
            // Wide value domains keep the *cross* correlation (cols 0-1,
            // 0-5, ...) near zero while the duplicated columns still repeat.
            let a = ((r * 5 % 8) + 1) as f64;
            let b = ((r * 2 % 9) + 100) as f64;
            m.set(r, 0, a);
            m.set(r, 4, a);
            m.set(r, 1, b);
            m.set(r, 5, b);
            m.set(r, 2, ((r * 7 + 1) % 97 + 200) as f64);
            m.set(r, 3, ((r * 11 + 3) % 89 + 400) as f64);
        }
        m
    }

    fn assert_permutation(order: &[usize], n: usize) {
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &c in order {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn all_algorithms_return_permutations() {
        let csrv = CsrvMatrix::from_dense(&correlated()).unwrap();
        for algo in [
            ReorderAlgorithm::Lkh,
            ReorderAlgorithm::PathCover,
            ReorderAlgorithm::PathCoverPlus,
            ReorderAlgorithm::Mwm,
        ] {
            let order = reorder_columns(&csrv, algo, CsmConfig::exact(), 4);
            assert_permutation(&order, 6);
        }
    }

    #[test]
    fn correlated_columns_become_adjacent() {
        let csrv = CsrvMatrix::from_dense(&correlated()).unwrap();
        for algo in ReorderAlgorithm::TABLE3 {
            let order = reorder_columns(&csrv, algo, CsmConfig::exact(), 4);
            let pos: Vec<usize> = {
                let mut p = vec![0; 6];
                for (i, &c) in order.iter().enumerate() {
                    p[c] = i;
                }
                p
            };
            assert_eq!(
                pos[0].abs_diff(pos[4]),
                1,
                "{}: columns 0 and 4 not adjacent in {order:?}",
                algo.name()
            );
            assert_eq!(
                pos[1].abs_diff(pos[5]),
                1,
                "{}: columns 1 and 5 not adjacent in {order:?}",
                algo.name()
            );
        }
    }

    #[test]
    fn reordering_preserves_matrix_content() {
        let dense = correlated();
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let order = reorder_columns(&csrv, ReorderAlgorithm::PathCover, CsmConfig::exact(), 4);
        let reordered = csrv.with_column_order(&order);
        assert_eq!(reordered.to_dense(), dense);
    }

    #[test]
    fn per_block_configs_apply_independently_and_return_permutations() {
        let csrv = CsrvMatrix::from_dense(&correlated()).unwrap();
        let configs = [
            BlockReorderConfig::new(ReorderAlgorithm::PathCover),
            BlockReorderConfig::new(ReorderAlgorithm::Mwm),
            BlockReorderConfig::new(ReorderAlgorithm::PathCoverPlus),
            BlockReorderConfig::new(ReorderAlgorithm::Lkh),
        ];
        let out = reorder_blocks_with(&csrv, &configs);
        assert_eq!(out.len(), 4);
        let originals = RowBlocks::split(&csrv, 4);
        for ((block, order), original) in out.iter().zip(originals.blocks()) {
            assert_permutation(order, 6);
            // Reordering never changes the block's content.
            assert_eq!(block.to_dense(), original.to_dense());
        }
    }

    #[test]
    fn block_reordering_covers_all_rows() {
        let csrv = CsrvMatrix::from_dense(&correlated()).unwrap();
        let blocks = reorder_blocks(&csrv, 4, ReorderAlgorithm::Mwm, CsmConfig::exact(), 4);
        assert_eq!(blocks.len(), 4);
        let total: usize = blocks.iter().map(CsrvMatrix::rows).sum();
        assert_eq!(total, 60);
        let total_nnz: usize = blocks.iter().map(CsrvMatrix::nnz).sum();
        assert_eq!(total_nnz, csrv.nnz());
    }

    #[test]
    fn reordering_improves_grammar_compression() {
        // The end-to-end claim of §5: moving correlated columns together
        // shrinks the grammar-compressed size.
        use gcm_core::{CompressedMatrix, Encoding};
        let csrv = CsrvMatrix::from_dense(&correlated()).unwrap();
        let baseline = CompressedMatrix::compress(&csrv, Encoding::ReAns).stored_bytes();
        let order = reorder_columns(&csrv, ReorderAlgorithm::PathCover, CsmConfig::exact(), 4);
        let reordered = csrv.with_column_order(&order);
        let improved = CompressedMatrix::compress(&reordered, Encoding::ReAns).stored_bytes();
        assert!(
            improved <= baseline,
            "reordered {improved} should be <= baseline {baseline}"
        );
    }
}
