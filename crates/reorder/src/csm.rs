//! The column-column similarity matrix (§5.1).
//!
//! For columns `i ≠ j`, build the row-wise sequence of value pairs
//! `P_ij = ⟨M[1][i],M[1][j]⟩ … ⟨M[n][i],M[n][j]⟩`, keep only pairs with
//! both components non-zero, and let `RPNZ_ij` be the number of
//! *repetitions* among them (occurrences minus distinct pairs — the
//! reading consistent with the paper's `RPNZ₁₂ = 2` example; the text's
//! `RPNZ₁₃` walk-through is internally inconsistent, see DESIGN.md). Then
//! `CSM[i][j] = RPNZ_ij / n`.
//!
//! Computation is the paper's sorting approach: per column pair, collect
//! the combined 64-bit keys, sort, count duplicates. Cost is `O(m²·n log n)`
//! worst case; a row-sampling knob caps `n` for wide matrices (Mnist2m).

use gcm_matrix::CsrvMatrix;

/// Configuration for CSM computation.
#[derive(Debug, Clone, Copy)]
pub struct CsmConfig {
    /// Use at most this many rows (deterministic stride sampling).
    /// `None` = all rows.
    pub sample_rows: Option<usize>,
}

impl Default for CsmConfig {
    fn default() -> Self {
        Self {
            sample_rows: Some(4096),
        }
    }
}

impl CsmConfig {
    /// Use every row (the paper's exact definition).
    pub fn exact() -> Self {
        Self { sample_rows: None }
    }
}

/// The dense `m × m` similarity matrix.
#[derive(Debug, Clone)]
pub struct Csm {
    m: usize,
    /// Row-major upper-triangular-mirrored scores.
    scores: Vec<f64>,
}

/// A sparse similarity graph: undirected weighted edges `(i, j, w)` with
/// `i < j` and `w > 0`.
#[derive(Debug, Clone, Default)]
pub struct SimilarityGraph {
    /// Number of columns (nodes).
    pub nodes: usize,
    /// Edges, arbitrary order.
    pub edges: Vec<(u32, u32, f64)>,
}

impl Csm {
    /// Computes the CSM of `matrix` under `config`.
    pub fn compute(matrix: &CsrvMatrix, config: CsmConfig) -> Self {
        let m = matrix.cols();
        let n = matrix.rows();
        // Column-major value-id table: 0 = zero cell, else value-id + 1.
        // Sampling keeps every stride-th row (deterministic, seed-free).
        let codec = matrix.codec();
        let (sampled_rows, stride) = match config.sample_rows {
            Some(cap) if cap > 0 && n > cap => {
                let stride = n.div_ceil(cap);
                (n.div_ceil(stride), stride)
            }
            _ => (n, 1),
        };
        let mut table = vec![0u32; sampled_rows * m];
        for (r, row) in matrix.row_slices().enumerate() {
            if r % stride != 0 {
                continue;
            }
            let sr = r / stride;
            for &s in row {
                let (l, j) = codec.decode(s);
                table[sr * m + j as usize] = l + 1;
            }
        }
        let denominator = sampled_rows.max(1) as f64;
        let mut scores = vec![0.0f64; m * m];
        let mut scratch: Vec<u64> = Vec::with_capacity(sampled_rows);
        for i in 0..m {
            for j in (i + 1)..m {
                scratch.clear();
                for r in 0..sampled_rows {
                    let a = table[r * m + i];
                    let b = table[r * m + j];
                    if a != 0 && b != 0 {
                        scratch.push(((a as u64) << 32) | b as u64);
                    }
                }
                if scratch.len() < 2 {
                    continue;
                }
                scratch.sort_unstable();
                let mut distinct = 1usize;
                for w in scratch.windows(2) {
                    if w[0] != w[1] {
                        distinct += 1;
                    }
                }
                let rpnz = (scratch.len() - distinct) as f64;
                let score = rpnz / denominator;
                scores[i * m + j] = score;
                scores[j * m + i] = score;
            }
        }
        Self { m, scores }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.m
    }

    /// The similarity of columns `i` and `j` (0 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.scores[i * self.m + j]
    }

    /// The full graph: one edge per positive-similarity pair (Θ(m²) worst
    /// case).
    pub fn full_graph(&self) -> SimilarityGraph {
        let mut edges = Vec::new();
        for i in 0..self.m {
            for j in (i + 1)..self.m {
                let w = self.get(i, j);
                if w > 0.0 {
                    edges.push((i as u32, j as u32, w));
                }
            }
        }
        SimilarityGraph {
            nodes: self.m,
            edges,
        }
    }

    /// Locally-pruned CSM (`CSMᴾ`, §5.1): keep the `k` best-scoring
    /// partners of each column.
    pub fn locally_pruned(&self, k: usize) -> SimilarityGraph {
        let mut keep = vec![false; self.m * self.m];
        let mut partners: Vec<(f64, usize)> = Vec::with_capacity(self.m);
        for i in 0..self.m {
            partners.clear();
            for j in 0..self.m {
                if j != i {
                    let w = self.get(i, j);
                    if w > 0.0 {
                        partners.push((w, j));
                    }
                }
            }
            partners.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            for &(_, j) in partners.iter().take(k) {
                let (a, b) = (i.min(j), i.max(j));
                keep[a * self.m + b] = true;
            }
        }
        let mut edges = Vec::new();
        for i in 0..self.m {
            for j in (i + 1)..self.m {
                if keep[i * self.m + j] {
                    edges.push((i as u32, j as u32, self.get(i, j)));
                }
            }
        }
        SimilarityGraph {
            nodes: self.m,
            edges,
        }
    }

    /// Globally-pruned CSM (§5.1): keep the `m·k` best-scoring entries
    /// overall.
    pub fn globally_pruned(&self, k: usize) -> SimilarityGraph {
        let mut graph = self.full_graph();
        graph.edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        graph.edges.truncate(self.m * k);
        graph
    }
}

impl SimilarityGraph {
    /// Adjacency lists `(neighbour, weight)` per node.
    pub fn adjacency(&self) -> Vec<Vec<(u32, f64)>> {
        let mut adj = vec![Vec::new(); self.nodes];
        for &(i, j, w) in &self.edges {
            adj[i as usize].push((j, w));
            adj[j as usize].push((i, w));
        }
        adj
    }

    /// Weight lookup as a dense matrix (testing / small graphs).
    pub fn dense_weights(&self) -> Vec<f64> {
        let m = self.nodes;
        let mut w = vec![0.0; m * m];
        for &(i, j, wt) in &self.edges {
            w[i as usize * m + j as usize] = wt;
            w[j as usize * m + i as usize] = wt;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_matrix::DenseMatrix;

    /// The matrix of Figure 1.
    fn fig1() -> CsrvMatrix {
        CsrvMatrix::from_dense(&DenseMatrix::from_rows(&[
            &[1.2, 3.4, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 1.7],
            &[1.2, 3.4, 2.3, 4.5, 0.0],
            &[3.4, 0.0, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 0.0],
            &[1.2, 3.4, 2.3, 4.5, 3.4],
        ]))
        .unwrap()
    }

    #[test]
    fn paper_example_rpnz12() {
        // The paper: CSM[1][2] = 2/6 (columns 0 and 1 here).
        let csm = Csm::compute(&fig1(), CsmConfig::exact());
        assert!((csm.get(0, 1) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fig1_column_pair_0_2() {
        // Columns 0 and 2: pairs (1.2,5.6) x1, (2.3,2.3) x2, (1.2,2.3) x2,
        // (3.4,5.6) x1 -> repetitions = (2-1)+(2-1) = 2 -> 2/6.
        let csm = Csm::compute(&fig1(), CsmConfig::exact());
        assert!((csm.get(0, 2) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_and_zero_diagonal() {
        let csm = Csm::compute(&fig1(), CsmConfig::exact());
        for i in 0..5 {
            assert_eq!(csm.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(csm.get(i, j), csm.get(j, i));
            }
        }
    }

    #[test]
    fn identical_columns_have_max_similarity() {
        // Two identical non-zero columns: every pair repeats after the
        // first distinct one.
        let mut rows = Vec::new();
        for r in 0..10 {
            let v = ((r % 2) + 1) as f64;
            rows.push([v, v, (r + 1) as f64]);
        }
        let slices: Vec<&[f64]> = rows.iter().map(|r| &r[..]).collect();
        let m = CsrvMatrix::from_dense(&DenseMatrix::from_rows(&slices)).unwrap();
        let csm = Csm::compute(&m, CsmConfig::exact());
        // Columns 0,1: 10 pairs, 2 distinct -> 8/10.
        assert!((csm.get(0, 1) - 0.8).abs() < 1e-12);
        // Column 2 is unique-valued: no repetitions with anyone.
        assert_eq!(csm.get(0, 2), 0.0);
        assert_eq!(csm.get(1, 2), 0.0);
    }

    #[test]
    fn zeros_are_ignored() {
        // Pairs with a zero component never count.
        let m = CsrvMatrix::from_dense(&DenseMatrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 2.0],
            &[1.0, 2.0],
        ]))
        .unwrap();
        let csm = Csm::compute(&m, CsmConfig::exact());
        // Only rows 2,3 have both non-zero: (1,2) twice -> 1 repetition.
        assert!((csm.get(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_approximates_exact() {
        let mut rows = Vec::new();
        for r in 0..400 {
            let v = ((r % 3) + 1) as f64;
            rows.push([v, v * 2.0, ((r % 5) + 1) as f64]);
        }
        let slices: Vec<&[f64]> = rows.iter().map(|r| &r[..]).collect();
        let m = CsrvMatrix::from_dense(&DenseMatrix::from_rows(&slices)).unwrap();
        let exact = Csm::compute(&m, CsmConfig::exact());
        let sampled = Csm::compute(
            &m,
            CsmConfig {
                sample_rows: Some(100),
            },
        );
        // Scores are normalised by the (sampled) row count, so they should
        // be close.
        assert!((exact.get(0, 1) - sampled.get(0, 1)).abs() < 0.05);
    }

    #[test]
    fn local_pruning_keeps_k_per_column() {
        let csm = Csm::compute(&fig1(), CsmConfig::exact());
        let g1 = csm.locally_pruned(1);
        let g4 = csm.locally_pruned(4);
        assert!(g1.edges.len() <= g4.edges.len());
        // k=1: at most one kept partner per column (union over columns).
        assert!(g1.edges.len() <= 5);
        for &(i, j, w) in &g1.edges {
            assert!(i < j);
            assert!(w > 0.0);
        }
    }

    #[test]
    fn global_pruning_keeps_top_mk() {
        let csm = Csm::compute(&fig1(), CsmConfig::exact());
        let full = csm.full_graph();
        let pruned = csm.globally_pruned(1);
        assert!(pruned.edges.len() <= 5);
        // The kept edges are the heaviest ones.
        let min_kept = pruned.edges.iter().map(|e| e.2).fold(f64::MAX, f64::min);
        let dropped = full.edges.len() - pruned.edges.len();
        if dropped > 0 {
            let mut all: Vec<f64> = full.edges.iter().map(|e| e.2).collect();
            all.sort_by(|a, b| b.partial_cmp(a).unwrap());
            assert!(min_kept >= all[pruned.edges.len() - 1] - 1e-12);
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let csm = Csm::compute(&fig1(), CsmConfig::exact());
        let g = csm.full_graph();
        let adj = g.adjacency();
        let total: usize = adj.iter().map(|a| a.len()).sum();
        assert_eq!(total, 2 * g.edges.len());
    }
}
