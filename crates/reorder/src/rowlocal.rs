//! Row-local pair reordering — the future-work direction the paper opens
//! at the end of §3 ("as for future work, we plan to analyse the general
//! problem in which the elements in each row are reordered independently
//! of all other rows").
//!
//! Because the multiplication kernels never assume any within-row order
//! (every pair carries its own column), each row's pairs may be permuted
//! *independently*. Two simple global heuristics are provided:
//!
//! * [`canonical_row_order`] — sort each row's pairs by symbol id. Rows
//!   sharing subsets of symbols then expose identical subsequences to
//!   RePair regardless of the original column interleaving.
//! * [`frequency_row_order`] — sort each row's pairs by decreasing global
//!   symbol frequency (ties by id). Frequent symbols cluster at row heads,
//!   concentrating repetition where it pays most.
//!
//! Column reordering (§5) is the special case where all rows use one
//! shared permutation; these heuristics explore the unconstrained space.

use gcm_encodings::fxhash::FxHashMap;
use gcm_matrix::{CsrvMatrix, SEPARATOR};

use std::sync::Arc;

fn rebuild_with<F: FnMut(&mut Vec<u32>)>(matrix: &CsrvMatrix, mut f: F) -> CsrvMatrix {
    let mut symbols = Vec::with_capacity(matrix.symbols().len());
    let mut row: Vec<u32> = Vec::new();
    for &s in matrix.symbols() {
        if s == SEPARATOR {
            f(&mut row);
            symbols.extend_from_slice(&row);
            row.clear();
            symbols.push(SEPARATOR);
        } else {
            row.push(s);
        }
    }
    CsrvMatrix::from_parts(
        matrix.rows(),
        matrix.cols(),
        Arc::new(matrix.values().to_vec()),
        symbols,
    )
}

/// Sorts every row's pairs by symbol id.
pub fn canonical_row_order(matrix: &CsrvMatrix) -> CsrvMatrix {
    rebuild_with(matrix, |row| row.sort_unstable())
}

/// Sorts every row's pairs by decreasing global symbol frequency.
pub fn frequency_row_order(matrix: &CsrvMatrix) -> CsrvMatrix {
    let mut freq: FxHashMap<u32, u32> = FxHashMap::default();
    for &s in matrix.symbols() {
        if s != SEPARATOR {
            *freq.entry(s).or_insert(0) += 1;
        }
    }
    rebuild_with(matrix, |row| {
        row.sort_unstable_by_key(|s| (std::cmp::Reverse(freq[s]), *s));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_matrix::DenseMatrix;

    fn sample() -> CsrvMatrix {
        let mut m = DenseMatrix::zeros(30, 6);
        for r in 0..30 {
            // The same three values land in different columns per row, so
            // column order hides the repetition but row-local order can
            // expose it.
            let rot = r % 3;
            m.set(r, rot, 1.5);
            m.set(r, (rot + 2) % 6, 2.5);
            m.set(r, (rot + 4) % 6, 3.5);
        }
        CsrvMatrix::from_dense(&m).unwrap()
    }

    #[test]
    fn reordering_preserves_matrix() {
        let csrv = sample();
        for reordered in [canonical_row_order(&csrv), frequency_row_order(&csrv)] {
            assert_eq!(reordered.to_dense(), csrv.to_dense());
            assert_eq!(reordered.nnz(), csrv.nnz());
        }
    }

    #[test]
    fn reordering_preserves_multiplication() {
        let csrv = sample();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.0).collect();
        let mut y_ref = vec![0.0; 30];
        csrv.right_multiply(&x, &mut y_ref).unwrap();
        for reordered in [canonical_row_order(&csrv), frequency_row_order(&csrv)] {
            let mut y = vec![0.0; 30];
            reordered.right_multiply(&x, &mut y).unwrap();
            assert_eq!(y, y_ref);
        }
    }

    #[test]
    fn canonical_rows_are_sorted() {
        let csrv = canonical_row_order(&sample());
        for row in csrv.row_slices() {
            assert!(row.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn frequency_order_puts_common_symbols_first() {
        // One symbol dominates: it must lead every row containing it.
        let mut m = DenseMatrix::zeros(20, 4);
        for r in 0..20 {
            m.set(r, (r % 3) + 1, 7.0); // frequent value, varying column
            if r % 4 == 0 {
                m.set(r, 0, (r + 10) as f64); // rare values
            }
        }
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let freq_ordered = frequency_row_order(&csrv);
        let codec = csrv.codec();
        for row in freq_ordered.row_slices() {
            if row.len() == 2 {
                // The frequent 7.0-symbol must come before the rare one.
                let (l, _) = codec.decode(row[0]);
                assert_eq!(csrv.values()[l as usize], 7.0, "row {row:?}");
            }
        }
    }

    #[test]
    fn empty_and_single_rows() {
        let m = DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 0.0]]);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let out = canonical_row_order(&csrv);
        assert_eq!(out.to_dense(), m);
    }
}
