//! LKH-style TSP column reordering (§5.2).
//!
//! The paper models column reordering as a symmetric TSP: cities are
//! columns, distances are negated similarities, and the tour induces the
//! order. It solves it with Helsgaun's LKH binary. We implement the same
//! move-based local-search family in-tree: greedy nearest-neighbour
//! construction, then 2-opt and Or-opt improvement over candidate neighbour
//! lists with don't-look bits — the standard Lin–Kernighan ingredients.
//! The tour is finally cut at its weakest link to yield a path (ordering).
//!
//! As in the paper, this is by far the slowest reorderer; PathCover/MWM
//! reach similar quality orders of magnitude faster (Table 3).

use crate::csm::SimilarityGraph;

/// Tunables for the local search.
#[derive(Debug, Clone, Copy)]
pub struct TspConfig {
    /// Candidate neighbours per node.
    pub neighbors: usize,
    /// Maximum improvement sweeps.
    pub max_sweeps: usize,
}

impl Default for TspConfig {
    fn default() -> Self {
        Self {
            neighbors: 12,
            max_sweeps: 64,
        }
    }
}

/// Computes a column order by TSP local search over the similarity graph.
pub fn tsp_order(graph: &SimilarityGraph, config: TspConfig) -> Vec<usize> {
    let n = graph.nodes;
    if n <= 2 {
        return (0..n).collect();
    }
    let sim = graph.dense_weights();
    let s = |a: usize, b: usize| sim[a * n + b];

    // Candidate lists: top-k similar neighbours per node.
    let mut cand: Vec<Vec<u32>> = vec![Vec::new(); n];
    {
        let mut partners: Vec<(f64, u32)> = Vec::new();
        for (i, c) in cand.iter_mut().enumerate() {
            partners.clear();
            for j in 0..n {
                if j != i && s(i, j) > 0.0 {
                    partners.push((s(i, j), j as u32));
                }
            }
            partners.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            c.extend(partners.iter().take(config.neighbors).map(|&(_, j)| j));
        }
    }

    // Greedy nearest-neighbour construction.
    let mut tour = Vec::with_capacity(n);
    let mut in_tour = vec![false; n];
    let mut cur = 0usize;
    tour.push(0);
    in_tour[0] = true;
    for _ in 1..n {
        // Prefer candidate neighbours; fall back to any unvisited node.
        let next = cand[cur]
            .iter()
            .map(|&j| j as usize)
            .find(|&j| !in_tour[j])
            .or_else(|| {
                (0..n)
                    .max_by(|&a, &b| {
                        let (sa, sb) = (
                            if in_tour[a] { f64::MIN } else { s(cur, a) },
                            if in_tour[b] { f64::MIN } else { s(cur, b) },
                        );
                        sa.partial_cmp(&sb).unwrap()
                    })
                    .filter(|&j| !in_tour[j])
            })
            .unwrap_or_else(|| (0..n).find(|&j| !in_tour[j]).unwrap());
        tour.push(next);
        in_tour[next] = true;
        cur = next;
    }

    let mut pos = vec![0usize; n];
    for (p, &c) in tour.iter().enumerate() {
        pos[c] = p;
    }

    // 2-opt + Or-opt sweeps with don't-look bits. We MAXIMISE total
    // adjacent similarity (equivalently minimise negated distances).
    let mut dont_look = vec![false; n];
    for sweep in 0..config.max_sweeps {
        let mut improved = false;
        for a in 0..n {
            if dont_look[a] {
                continue;
            }
            let mut local_gain = false;
            // --- 2-opt ---
            // Edge (a, succ(a)) vs (c, succ(c)) for candidates c of a.
            let pa = pos[a];
            let b = tour[(pa + 1) % n];
            for &c_u in &cand[a] {
                let c = c_u as usize;
                if c == b || c == a {
                    continue;
                }
                let pc = pos[c];
                let d = tour[(pc + 1) % n];
                if d == a {
                    continue;
                }
                let old = s(a, b) + s(c, d);
                let new = s(a, c) + s(b, d);
                if new > old + 1e-15 {
                    // Reverse the segment between b..c (inclusive).
                    reverse_segment(&mut tour, &mut pos, (pa + 1) % n, pc);
                    dont_look[a] = false;
                    dont_look[b] = false;
                    dont_look[c] = false;
                    dont_look[d] = false;
                    local_gain = true;
                    improved = true;
                    break;
                }
            }
            if local_gain {
                continue;
            }
            // --- Or-opt: move segments of length 1..=3 after a candidate ---
            'oropt: for seg_len in 1..=3usize {
                let p0 = pos[a];
                let seg_start = p0;
                let seg_end = (p0 + seg_len - 1) % n;
                let prev = tour[(p0 + n - 1) % n];
                let next = tour[(seg_end + 1) % n];
                if prev == tour[seg_end] || next == a {
                    continue;
                }
                let seg_first = tour[seg_start];
                let seg_last = tour[seg_end];
                let removal = s(prev, seg_first) + s(seg_last, next) - s(prev, next);
                for &t_u in &cand[a] {
                    let t = t_u as usize;
                    // Insert segment after t.
                    let pt = pos[t];
                    // t must be outside the segment.
                    if within(seg_start, seg_len, pt, n) || t == prev {
                        continue;
                    }
                    let t_next = tour[(pt + 1) % n];
                    if within(seg_start, seg_len, pos[t_next], n) {
                        continue;
                    }
                    let insertion = s(t, seg_first) + s(seg_last, t_next) - s(t, t_next);
                    if insertion > removal + 1e-15 {
                        move_segment(&mut tour, &mut pos, seg_start, seg_len, pt);
                        dont_look[a] = false;
                        dont_look[prev] = false;
                        dont_look[next] = false;
                        dont_look[t] = false;
                        improved = true;
                        break 'oropt;
                    }
                }
            }
            if !improved {
                dont_look[a] = true;
            }
        }
        if !improved && sweep > 0 {
            break;
        }
    }

    // Cut the tour at the weakest adjacent similarity to get a path.
    let mut cut = 0usize;
    let mut worst = f64::MAX;
    for p in 0..n {
        let w = s(tour[p], tour[(p + 1) % n]);
        if w < worst {
            worst = w;
            cut = p;
        }
    }
    let mut order = Vec::with_capacity(n);
    for k in 1..=n {
        order.push(tour[(cut + k) % n]);
    }
    order
}

/// Whether position `p` lies within the cyclic segment `[start, start+len)`.
#[inline]
fn within(start: usize, len: usize, p: usize, n: usize) -> bool {
    let rel = (p + n - start) % n;
    rel < len
}

/// Reverses the cyclic tour segment from position `from` to position `to`.
fn reverse_segment(tour: &mut [usize], pos: &mut [usize], from: usize, to: usize) {
    let n = tour.len();
    let seg_len = (to + n - from) % n + 1;
    for k in 0..seg_len / 2 {
        let i = (from + k) % n;
        let j = (to + n - k) % n;
        tour.swap(i, j);
        pos[tour[i]] = i;
        pos[tour[j]] = j;
    }
}

/// Moves the cyclic segment starting at `seg_start` (length `seg_len`) to
/// just after position `after`.
fn move_segment(
    tour: &mut Vec<usize>,
    pos: &mut [usize],
    seg_start: usize,
    seg_len: usize,
    after: usize,
) {
    let n = tour.len();
    let seg: Vec<usize> = (0..seg_len).map(|k| tour[(seg_start + k) % n]).collect();
    let after_node = tour[after];
    // Rebuild the tour without the segment, then splice it back in.
    let mut rest = Vec::with_capacity(n - seg_len);
    for (p, &node) in tour.iter().enumerate() {
        if !within(seg_start, seg_len, p, n) {
            rest.push(node);
        }
    }
    let mut out = Vec::with_capacity(n);
    for &node in &rest {
        out.push(node);
        if node == after_node {
            out.extend_from_slice(&seg);
        }
    }
    debug_assert_eq!(out.len(), n);
    *tour = out;
    for (p, &c) in tour.iter().enumerate() {
        pos[c] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_permutation(order: &[usize], n: usize) {
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &c in order {
            assert!(!seen[c], "duplicate {c} in {order:?}");
            seen[c] = true;
        }
    }

    fn order_score(order: &[usize], g: &SimilarityGraph) -> f64 {
        let w = g.dense_weights();
        order.windows(2).map(|p| w[p[0] * g.nodes + p[1]]).sum()
    }

    #[test]
    fn trivial_sizes() {
        for n in 0..=2 {
            let g = SimilarityGraph {
                nodes: n,
                edges: vec![],
            };
            let order = tsp_order(&g, TspConfig::default());
            assert_permutation(&order, n);
        }
    }

    #[test]
    fn recovers_chain_structure() {
        // Similarity forms a path 0-1-2-...-7 with strong weights; TSP must
        // recover (a rotation/reflection of) it.
        let mut edges = Vec::new();
        for i in 0..7u32 {
            edges.push((i, i + 1, 1.0));
        }
        // Weak noise edges.
        edges.push((0, 5, 0.05));
        edges.push((2, 6, 0.05));
        let g = SimilarityGraph { nodes: 8, edges };
        let order = tsp_order(&g, TspConfig::default());
        assert_permutation(&order, 8);
        let score = order_score(&order, &g);
        assert!(score >= 6.9, "score {score}, order {order:?}");
    }

    #[test]
    fn groups_similar_clusters() {
        // Two clusters {0,1,2} and {3,4,5} with high intra-similarity.
        let mut edges = Vec::new();
        for &(a, b) in &[(0u32, 1u32), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            edges.push((a, b, 0.9));
        }
        edges.push((2, 3, 0.1));
        let g = SimilarityGraph { nodes: 6, edges };
        let order = tsp_order(&g, TspConfig::default());
        assert_permutation(&order, 6);
        // Each cluster's columns must be contiguous.
        let posn: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &c) in order.iter().enumerate() {
                p[c] = i;
            }
            p
        };
        let spread = |cluster: &[usize]| {
            let ps: Vec<usize> = cluster.iter().map(|&c| posn[c]).collect();
            ps.iter().max().unwrap() - ps.iter().min().unwrap()
        };
        assert_eq!(spread(&[0, 1, 2]), 2, "order {order:?}");
        assert_eq!(spread(&[3, 4, 5]), 2, "order {order:?}");
    }

    #[test]
    fn improves_over_identity_on_random_graph() {
        let mut state = 42u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 1000.0
        };
        let n = 24;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                let w = rng();
                if w > 0.5 {
                    edges.push((i, j, w));
                }
            }
        }
        let g = SimilarityGraph { nodes: n, edges };
        let order = tsp_order(&g, TspConfig::default());
        assert_permutation(&order, n);
        let identity: Vec<usize> = (0..n).collect();
        assert!(
            order_score(&order, &g) >= order_score(&identity, &g),
            "TSP should not be worse than identity"
        );
    }

    #[test]
    fn segment_helpers() {
        let mut tour = vec![0, 1, 2, 3, 4, 5];
        let mut pos = vec![0, 1, 2, 3, 4, 5];
        reverse_segment(&mut tour, &mut pos, 1, 3);
        assert_eq!(tour, vec![0, 3, 2, 1, 4, 5]);
        for (p, &c) in tour.iter().enumerate() {
            assert_eq!(pos[c], p);
        }
        let mut tour = vec![0, 1, 2, 3, 4, 5];
        let mut pos = vec![0, 1, 2, 3, 4, 5];
        move_segment(&mut tour, &mut pos, 1, 2, 4);
        assert_eq!(tour, vec![0, 3, 4, 1, 2, 5]);
        for (p, &c) in tour.iter().enumerate() {
            assert_eq!(pos[c], p);
        }
    }

    #[test]
    fn wraparound_segment_reverse() {
        let mut tour = vec![0, 1, 2, 3, 4];
        let mut pos = vec![0, 1, 2, 3, 4];
        // Reverse cyclic segment positions 3..=1 (wraps): nodes 3,4,0,1.
        reverse_segment(&mut tour, &mut pos, 3, 1);
        for (p, &c) in tour.iter().enumerate() {
            assert_eq!(pos[c], p, "pos index broken: {tour:?}");
        }
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
