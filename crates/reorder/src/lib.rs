//! Column reordering for grammar compression (§5 of the paper).
//!
//! Grammar compression replaces pairs of *adjacent* symbols, so correlated
//! columns help only when they sit next to each other. This crate provides:
//!
//! * [`Csm`] — the column-column similarity matrix: `CSM[i][j] = RPNZ_ij/n`,
//!   where `RPNZ_ij` counts repeated non-zero value pairs between columns
//!   `i` and `j` across rows (§5.1), plus the locally- and globally-pruned
//!   sparse variants;
//! * four reordering algorithms (§5.2): an **LKH-style TSP heuristic**
//!   ([`tsp`]), **PathCover** ([`pathcover`]), **PathCover+**
//!   ([`pathcover`]), and **maximum-weight matching** ([`mwm`], exact
//!   Hungarian algorithm);
//! * a [`driver`] that applies any of them to a whole matrix or per row
//!   block (§5.3), returning the column order to feed into
//!   [`gcm_matrix::CsrvMatrix::with_column_order`].
//!
//! Reordering never changes multiplication results: CSRV pairs keep their
//! original column indices; only their order inside each row changes.

pub mod csm;
pub mod driver;
pub mod mwm;
pub mod pathcover;
pub mod rowlocal;
pub mod tsp;

pub use csm::{Csm, CsmConfig, SimilarityGraph};
pub use driver::{
    reorder_blocks, reorder_blocks_with, reorder_columns, BlockReorderConfig, ReorderAlgorithm,
};
pub use rowlocal::{canonical_row_order, frequency_row_order};
