//! Maximum-weight matching column reordering (§5.2).
//!
//! The paper builds a bipartite graph with `2m` nodes: choosing edge
//! `(i, j)` with `i < j` means "column `i` immediately precedes column `j`"
//! in the final order. A maximum-weight matching then gives every column at
//! most one successor and at most one predecessor; because edges are
//! oriented `i < j`, no cycles can arise, so the matching decomposes into
//! chains, which are concatenated (in arbitrary order) into the final
//! permutation.
//!
//! Where the paper calls Boost's `maximum_weight_matching`, we solve the
//! bipartite problem exactly with the Hungarian algorithm (O(m³) — the
//! same asymptotic class as the Θ(m³) algorithm the paper cites).

use crate::csm::SimilarityGraph;

/// Exact maximum-weight bipartite assignment (Hungarian / Jonker-Volgenant
/// potentials).
///
/// `weight[i * n + j]` is the (non-negative) benefit of assigning left node
/// `i` to right node `j`. Returns for each left node its assigned right
/// node. Zero-weight assignments are as good as "unmatched".
pub fn hungarian_max(weight: &[f64], n: usize) -> Vec<usize> {
    assert_eq!(weight.len(), n * n);
    if n == 0 {
        return Vec::new();
    }
    // Convert to min-cost: cost = max_w - w  (all costs >= 0).
    let max_w = weight.iter().cloned().fold(0.0f64, f64::max);
    let cost = |i: usize, j: usize| max_w - weight[i * n + j];

    // Classic O(n³) Hungarian with potentials; 1-based helper arrays.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = left node matched to right j (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// MWM column reordering: chains from the predecessor/successor matching.
pub fn mwm_order(graph: &SimilarityGraph) -> Vec<usize> {
    let m = graph.nodes;
    if m == 0 {
        return Vec::new();
    }
    // Bipartite weights: left = predecessor role, right = successor role;
    // only i < j edges carry weight (the paper's orientation trick).
    let mut weight = vec![0.0f64; m * m];
    for &(i, j, w) in &graph.edges {
        let (a, b) = (i.min(j) as usize, i.max(j) as usize);
        weight[a * m + b] = w;
    }
    let assignment = hungarian_max(&weight, m);
    // successor[i] = j iff the matched pair carries positive weight.
    let mut successor = vec![usize::MAX; m];
    let mut has_pred = vec![false; m];
    for i in 0..m {
        let j = assignment[i];
        if weight[i * m + j] > 0.0 {
            successor[i] = j;
            has_pred[j] = true;
        }
    }
    // Walk chains from their heads.
    let mut order = Vec::with_capacity(m);
    let mut visited = vec![false; m];
    for start in 0..m {
        if has_pred[start] || visited[start] {
            continue;
        }
        let mut cur = start;
        while cur != usize::MAX && !visited[cur] {
            visited[cur] = true;
            order.push(cur);
            cur = successor[cur];
        }
    }
    // Any columns missed (can only happen under degenerate weights) are
    // appended to keep the permutation total.
    for (c, &seen) in visited.iter().enumerate() {
        if !seen {
            order.push(c);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_permutation(order: &[usize], n: usize) {
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &c in order {
            assert!(!seen[c], "duplicate {c} in {order:?}");
            seen[c] = true;
        }
    }

    /// Brute-force max-weight assignment for validation.
    fn brute_force(weight: &[f64], n: usize) -> f64 {
        fn rec(weight: &[f64], n: usize, i: usize, used: &mut [bool]) -> f64 {
            if i == n {
                return 0.0;
            }
            let mut best = f64::MIN;
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    let v = weight[i * n + j] + rec(weight, n, i + 1, used);
                    used[j] = false;
                    best = best.max(v);
                }
            }
            best
        }
        rec(weight, n, 0, &mut vec![false; n])
    }

    #[test]
    fn hungarian_matches_brute_force() {
        let mut state = 123456789u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        for n in [1usize, 2, 3, 5, 6] {
            for _ in 0..5 {
                let weight: Vec<f64> = (0..n * n).map(|_| rng()).collect();
                let assignment = hungarian_max(&weight, n);
                let total: f64 = (0..n).map(|i| weight[i * n + assignment[i]]).sum();
                let best = brute_force(&weight, n);
                assert!(
                    (total - best).abs() < 1e-9,
                    "n={n}: hungarian {total} vs brute {best}"
                );
                // Assignment must be a permutation.
                assert_permutation(&assignment, n);
            }
        }
    }

    #[test]
    fn mwm_chains_heavy_pairs() {
        let g = SimilarityGraph {
            nodes: 6,
            edges: vec![(0, 1, 0.9), (2, 3, 0.8), (4, 5, 0.7), (1, 2, 0.2)],
        };
        let order = mwm_order(&g);
        assert_permutation(&order, 6);
        let adjacent = |a: usize, b: usize| {
            order
                .windows(2)
                .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
        };
        assert!(adjacent(0, 1));
        assert!(adjacent(2, 3));
        assert!(adjacent(4, 5));
    }

    #[test]
    fn mwm_builds_longer_chains_via_distinct_roles() {
        // 0->1 and 1->2 can coexist: 1 is a successor once and a
        // predecessor once.
        let g = SimilarityGraph {
            nodes: 3,
            edges: vec![(0, 1, 0.9), (1, 2, 0.9)],
        };
        let order = mwm_order(&g);
        assert_permutation(&order, 3);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_identity_like() {
        let g = SimilarityGraph {
            nodes: 4,
            edges: vec![],
        };
        let order = mwm_order(&g);
        assert_permutation(&order, 4);
    }

    #[test]
    fn zero_nodes() {
        let g = SimilarityGraph {
            nodes: 0,
            edges: vec![],
        };
        assert!(mwm_order(&g).is_empty());
    }

    #[test]
    fn no_cycles_possible() {
        // Dense pairwise similarities: the i<j orientation must still yield
        // a valid (acyclic) permutation.
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j, 1.0 / (1.0 + (j - i) as f64)));
            }
        }
        let order = mwm_order(&SimilarityGraph { nodes: 8, edges });
        assert_permutation(&order, 8);
    }
}
