//! PathCover and PathCover+ column-reordering algorithms (§5.2).
//!
//! **PathCover** scans the similarity edges by decreasing weight and keeps
//! an edge iff it extends a set of vertex-disjoint simple paths (both
//! endpoints have degree < 2 and lie in different components) — a
//! Kruskal-style greedy reminiscent of single-linkage clustering. The
//! resulting paths (plus isolated columns) are concatenated into a full
//! column order.
//!
//! **PathCover+** additionally *coalesces* a grown path into a macro-node:
//! after an edge extends path `P`, the weight from any outside node `v` to
//! `P` becomes `min_{u ∈ P} w(v, u)` (the paper's pessimistic update, in
//! the spirit of Sibeyn's MST algorithm). The paper reports PathCover+
//! always compresses worse than PathCover; we implement it to reproduce
//! that ablation.

use crate::csm::SimilarityGraph;

/// Disjoint-set over columns.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra as usize] = rb;
    }
}

/// Assembles the chosen path edges (+ isolated nodes) into a column order.
///
/// `degree`/`neighbors` describe the union of disjoint simple paths.
fn chain_order(nodes: usize, neighbors: &[Vec<u32>]) -> Vec<usize> {
    let mut order = Vec::with_capacity(nodes);
    let mut visited = vec![false; nodes];
    // Walk each path from one endpoint (degree <= 1).
    for start in 0..nodes {
        if visited[start] || neighbors[start].len() > 1 {
            continue;
        }
        let mut cur = start as u32;
        let mut prev = u32::MAX;
        loop {
            visited[cur as usize] = true;
            order.push(cur as usize);
            let next = neighbors[cur as usize]
                .iter()
                .copied()
                .find(|&n| n != prev && !visited[n as usize]);
            match next {
                Some(n) => {
                    prev = cur;
                    cur = n;
                }
                None => break,
            }
        }
    }
    // Safety net: cycles cannot occur by construction, but make sure every
    // node is emitted.
    for (v, &seen) in visited.iter().enumerate() {
        if !seen {
            order.push(v);
        }
    }
    order
}

/// PathCover: greedy maximum-weight disjoint-path cover.
///
/// Returns a permutation `order` with `order[k]` = original column at new
/// position `k`.
pub fn path_cover(graph: &SimilarityGraph) -> Vec<usize> {
    let n = graph.nodes;
    let mut edges = graph.edges.clone();
    edges.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap()
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut degree = vec![0u8; n];
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut uf = UnionFind::new(n);
    for (i, j, _) in edges {
        let (iu, ju) = (i as usize, j as usize);
        if degree[iu] >= 2 || degree[ju] >= 2 {
            continue;
        }
        if uf.find(i) == uf.find(j) {
            continue; // would close a cycle
        }
        degree[iu] += 1;
        degree[ju] += 1;
        neighbors[iu].push(j);
        neighbors[ju].push(i);
        uf.union(i, j);
    }
    chain_order(n, &neighbors)
}

/// PathCover+: PathCover with path coalescing (minimum-weight update).
pub fn path_cover_plus(graph: &SimilarityGraph) -> Vec<usize> {
    let n = graph.nodes;
    // Inter-component weights start as the edge weights and are updated to
    // the *minimum* across merged components (the paper's coalescing rule).
    use gcm_encodings::fxhash::FxHashMap;
    let mut comp_weight: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let mut uf = UnionFind::new(n);
    let mut degree = vec![0u8; n];
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Deterministic round-based implementation: iterate rounds, each round
    // picking the globally heaviest valid component-pair edge. Component
    // count shrinks every round, so at most n-1 rounds; with the pruned
    // graphs of §5.1 this is fast enough for m ≤ 784.
    for &(i, j, w) in &graph.edges {
        let key = (i.min(j), i.max(j));
        let e = comp_weight.entry(key).or_insert(w);
        if w < *e {
            *e = w;
        }
    }
    loop {
        // Find the heaviest endpoint-valid edge between components, using
        // the coalesced (minimum) component weight.
        let mut best: Option<(f64, u32, u32)> = None;
        let mut comp_min: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        for (&(i, j), &w) in &comp_weight {
            if degree[i as usize] >= 2 || degree[j as usize] >= 2 {
                continue;
            }
            let (ci, cj) = (uf.find(i), uf.find(j));
            if ci == cj {
                continue;
            }
            let ckey = (ci.min(cj), ci.max(cj));
            let e = comp_min.entry(ckey).or_insert(w);
            if w < *e {
                *e = w;
            }
        }
        for &(i, j) in comp_weight.keys() {
            if degree[i as usize] >= 2 || degree[j as usize] >= 2 {
                continue;
            }
            let (ci, cj) = (uf.find(i), uf.find(j));
            if ci == cj {
                continue;
            }
            let ckey = (ci.min(cj), ci.max(cj));
            let cw = comp_min[&ckey];
            match best {
                Some((bw, bi, bj)) => {
                    if cw > bw || (cw == bw && (i, j) < (bi, bj)) {
                        best = Some((cw, i, j));
                    }
                }
                None => best = Some((cw, i, j)),
            }
        }
        let Some((_, i, j)) = best else { break };
        degree[i as usize] += 1;
        degree[j as usize] += 1;
        neighbors[i as usize].push(j);
        neighbors[j as usize].push(i);
        uf.union(i, j);
    }
    chain_order(n, &neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(nodes: usize, edges: &[(u32, u32, f64)]) -> SimilarityGraph {
        SimilarityGraph {
            nodes,
            edges: edges.to_vec(),
        }
    }

    fn assert_permutation(order: &[usize], n: usize) {
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &c in order {
            assert!(!seen[c], "duplicate column {c}");
            seen[c] = true;
        }
    }

    fn adjacent(order: &[usize], a: usize, b: usize) -> bool {
        order
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
    }

    #[test]
    fn empty_graph_identity_cover() {
        let order = path_cover(&graph(4, &[]));
        assert_permutation(&order, 4);
    }

    #[test]
    fn single_heavy_edge_becomes_adjacent() {
        let order = path_cover(&graph(5, &[(1, 3, 0.9), (0, 2, 0.1)]));
        assert_permutation(&order, 5);
        assert!(adjacent(&order, 1, 3));
        assert!(adjacent(&order, 0, 2));
    }

    #[test]
    fn degree_constraint_respected() {
        // Star graph: centre 0 similar to everyone; only two of the spokes
        // can be adjacent to 0.
        let order = path_cover(&graph(
            5,
            &[(0, 1, 0.9), (0, 2, 0.8), (0, 3, 0.7), (0, 4, 0.6)],
        ));
        assert_permutation(&order, 5);
        let pos0 = order.iter().position(|&c| c == 0).unwrap();
        let mut adj_count = 0;
        if pos0 > 0 && [1, 2, 3, 4].contains(&order[pos0 - 1]) {
            adj_count += 1;
        }
        if pos0 + 1 < 5 && [1, 2, 3, 4].contains(&order[pos0 + 1]) {
            adj_count += 1;
        }
        assert!(adj_count <= 2);
        // The two heaviest spokes (1 and 2) win.
        assert!(adjacent(&order, 0, 1));
        assert!(adjacent(&order, 0, 2));
    }

    #[test]
    fn cycle_is_refused() {
        // Triangle: only two of the three edges may be taken.
        let order = path_cover(&graph(3, &[(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.7)]));
        assert_permutation(&order, 3);
        assert!(adjacent(&order, 0, 1));
        assert!(adjacent(&order, 1, 2));
        assert!(!adjacent(&order, 0, 2));
    }

    #[test]
    fn chain_graph_reconstructed() {
        let order = path_cover(&graph(
            6,
            &[
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
                (3, 4, 0.5),
                (4, 5, 0.5),
            ],
        ));
        assert_permutation(&order, 6);
        for w in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            assert!(
                adjacent(&order, w.0, w.1),
                "{w:?} not adjacent in {order:?}"
            );
        }
    }

    #[test]
    fn path_cover_plus_valid_permutation() {
        let g = graph(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.8),
                (2, 3, 0.7),
                (3, 4, 0.2),
                (4, 5, 0.95),
                (0, 5, 0.3),
            ],
        );
        let order = path_cover_plus(&g);
        assert_permutation(&order, 6);
        // The heaviest edge must be taken first in both variants.
        assert!(adjacent(&order, 4, 5));
    }

    #[test]
    fn plus_coalescing_can_differ_from_plain() {
        // Construct a case where coalescing (min weight to a path) changes
        // a later choice: after (0,1), node 2's weight to the path is
        // min(w(2,0), w(2,1)).
        let g = graph(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 0.9),
                (0, 2, 0.1),
                (2, 3, 0.85),
                (1, 3, 0.05),
            ],
        );
        let plain = path_cover(&g);
        let plus = path_cover_plus(&g);
        assert_permutation(&plain, 4);
        assert_permutation(&plus, 4);
        // Plain takes (0,1) then (1,2) then (2,3): chain 0-1-2-3.
        assert!(adjacent(&plain, 1, 2));
        // Plus evaluates (1,2) at min(0.9, w(0,2)=0.1) = 0.1 < (2,3)=0.85,
        // so (2,3) is taken before (1,2).
        assert!(adjacent(&plus, 2, 3));
    }

    #[test]
    fn isolated_nodes_appended() {
        let order = path_cover(&graph(7, &[(2, 5, 0.4)]));
        assert_permutation(&order, 7);
        assert!(adjacent(&order, 2, 5));
    }
}
