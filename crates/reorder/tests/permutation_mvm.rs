//! Integration tests for the reordering stack: every algorithm, on every
//! test matrix, must (a) return a valid permutation of the columns and
//! (b) leave both matrix-vector products bit-for-bit unchanged — including
//! after grammar compression of the reordered matrix.

use gcm_core::{CompressedMatrix, Encoding};
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec};
use gcm_reorder::{reorder_blocks, reorder_columns, CsmConfig, ReorderAlgorithm};

const ALL_ALGORITHMS: [ReorderAlgorithm; 4] = [
    ReorderAlgorithm::Lkh,
    ReorderAlgorithm::PathCover,
    ReorderAlgorithm::PathCoverPlus,
    ReorderAlgorithm::Mwm,
];

/// A deterministic family of matrices with varied shapes: repeated column
/// pairs, sparse rows, a single column, and an all-zero matrix.
fn test_matrices() -> Vec<DenseMatrix> {
    let mut out = Vec::new();

    // Correlated pairs far apart (the case reordering exists for).
    let mut m = DenseMatrix::zeros(40, 8);
    for r in 0..40 {
        let a = ((r % 5) + 1) as f64;
        let b = ((r % 7) + 10) as f64;
        m.set(r, 0, a);
        m.set(r, 6, a);
        m.set(r, 2, b);
        m.set(r, 7, b);
        if r % 3 == 0 {
            m.set(r, 4, 99.0);
        }
    }
    out.push(m);

    // Sparse with empty rows and empty columns.
    let mut m = DenseMatrix::zeros(20, 10);
    for r in (0..20).step_by(4) {
        m.set(r, r % 10, (r + 1) as f64 * 0.5);
        m.set(r, (r + 3) % 10, -1.25);
    }
    out.push(m);

    // Single column.
    let mut m = DenseMatrix::zeros(12, 1);
    for r in 0..12 {
        m.set(r, 0, ((r % 4) + 1) as f64);
    }
    out.push(m);

    // All zeros (no pairs at all — the degenerate CSM).
    out.push(DenseMatrix::zeros(6, 5));

    out
}

fn assert_permutation(order: &[usize], n: usize, what: &str) {
    assert_eq!(order.len(), n, "{what}: wrong length");
    let mut seen = vec![false; n];
    for &c in order {
        assert!(c < n, "{what}: column {c} out of range");
        assert!(!seen[c], "{what}: column {c} repeated");
        seen[c] = true;
    }
}

fn assert_same_products(dense: &DenseMatrix, reordered: &CsrvMatrix, what: &str) {
    let (rows, cols) = (dense.rows(), dense.cols());
    let x: Vec<f64> = (0..cols).map(|i| ((i % 5) as f64) - 1.5).collect();
    let yv: Vec<f64> = (0..rows).map(|i| ((i % 3) as f64) + 0.25).collect();

    let mut y_ref = vec![0.0; rows];
    let mut x_ref = vec![0.0; cols];
    dense.right_multiply(&x, &mut y_ref).unwrap();
    dense.left_multiply(&yv, &mut x_ref).unwrap();

    let mut y = vec![0.0; rows];
    let mut xo = vec![0.0; cols];
    reordered.right_multiply(&x, &mut y).unwrap();
    reordered.left_multiply(&yv, &mut xo).unwrap();
    for (a, b) in y_ref.iter().zip(&y) {
        assert!((a - b).abs() < 1e-9, "{what}: right product diverged");
    }
    for (a, b) in x_ref.iter().zip(&xo) {
        assert!((a - b).abs() < 1e-9, "{what}: left product diverged");
    }

    // The same must hold after grammar compression of the reordered matrix.
    let cm = CompressedMatrix::compress(reordered, Encoding::ReAns);
    let mut y = vec![0.0; rows];
    cm.right_multiply(&x, &mut y).unwrap();
    for (a, b) in y_ref.iter().zip(&y) {
        assert!(
            (a - b).abs() < 1e-9,
            "{what}: compressed right product diverged"
        );
    }
}

#[test]
fn every_algorithm_returns_a_valid_permutation() {
    for (mi, dense) in test_matrices().iter().enumerate() {
        let csrv = CsrvMatrix::from_dense(dense).unwrap();
        for algo in ALL_ALGORITHMS {
            for config in [CsmConfig::exact(), CsmConfig::default()] {
                let order = reorder_columns(&csrv, algo, config, 4);
                let what = format!("matrix {mi}, {}", algo.name());
                assert_permutation(&order, dense.cols(), &what);
            }
        }
    }
}

#[test]
fn every_algorithm_preserves_mvm_results() {
    for (mi, dense) in test_matrices().iter().enumerate() {
        let csrv = CsrvMatrix::from_dense(dense).unwrap();
        for algo in ALL_ALGORITHMS {
            let order = reorder_columns(&csrv, algo, CsmConfig::exact(), 4);
            let reordered = csrv.with_column_order(&order);
            let what = format!("matrix {mi}, {}", algo.name());
            assert_same_products(dense, &reordered, &what);
            assert_eq!(reordered.to_dense(), *dense, "{what}: content changed");
        }
    }
}

#[test]
fn per_block_reordering_preserves_mvm_results() {
    let dense = &test_matrices()[0];
    let csrv = CsrvMatrix::from_dense(dense).unwrap();
    for algo in ALL_ALGORITHMS {
        let blocks = reorder_blocks(&csrv, 3, algo, CsmConfig::default(), 4);
        // Stack the per-block products back together.
        let x: Vec<f64> = (0..dense.cols()).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let mut y_ref = vec![0.0; dense.rows()];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        let mut y = Vec::new();
        for b in &blocks {
            let mut part = vec![0.0; b.rows()];
            b.right_multiply(&x, &mut part).unwrap();
            y.extend(part);
        }
        assert_eq!(y.len(), dense.rows(), "{}: row count", algo.name());
        for (a, b) in y_ref.iter().zip(&y) {
            assert!(
                (a - b).abs() < 1e-9,
                "{}: blocked product diverged",
                algo.name()
            );
        }
    }
}
