//! Property-based tests of the per-block reordering driver (§5.3):
//!
//! * every permutation `reorder_blocks_with` returns is a valid
//!   permutation of the columns, for every algorithm and any matrix;
//! * reordering never changes a block's content (CSRV pairs keep their
//!   original column indices), so the reassembled blocks equal the
//!   original matrix row range for row range;
//! * the per-block driver with one uniform config agrees with the
//!   classic `reorder_blocks` wrapper.

use proptest::prelude::*;

use gcm_matrix::{CsrvMatrix, DenseMatrix, RowBlocks};
use gcm_reorder::{reorder_blocks, reorder_blocks_with, BlockReorderConfig, ReorderAlgorithm};

/// Random small dense matrices: value 0 (zero entry) or a handful of
/// repeated magnitudes, so reordering has correlations to chew on.
fn dense_strategy() -> impl Strategy<Value = DenseMatrix> {
    (1usize..24, 1usize..9).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(0u32..5, rows * cols).prop_map(move |vals| {
            let mut m = DenseMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    let v = vals[r * cols + c];
                    if v != 0 {
                        m.set(r, c, v as f64 * 0.75);
                    }
                }
            }
            m
        })
    })
}

fn algos() -> impl Strategy<Value = ReorderAlgorithm> {
    prop_oneof![
        Just(ReorderAlgorithm::PathCover),
        Just(ReorderAlgorithm::PathCoverPlus),
        Just(ReorderAlgorithm::Mwm),
        Just(ReorderAlgorithm::Lkh),
    ]
}

fn check_permutation(order: &[usize], cols: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(order.len(), cols);
    let mut seen = vec![false; cols];
    for &c in order {
        prop_assert!(c < cols, "column {} out of range", c);
        prop_assert!(!seen[c], "column {} repeated", c);
        seen[c] = true;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn per_block_orders_are_valid_permutations(
        dense in dense_strategy(),
        algo in algos(),
        blocks in 1usize..6,
    ) {
        let csrv = CsrvMatrix::from_dense(&dense).expect("csrv");
        let n_blocks = RowBlocks::split(&csrv, blocks).len();
        let configs = vec![BlockReorderConfig::new(algo); n_blocks];
        let reordered = reorder_blocks_with(&csrv, &configs);
        prop_assert_eq!(reordered.len(), n_blocks);
        for (_, order) in &reordered {
            check_permutation(order, dense.cols())?;
        }
    }

    #[test]
    fn reordered_blocks_preserve_content(
        dense in dense_strategy(),
        algo in algos(),
        blocks in 1usize..6,
    ) {
        let csrv = CsrvMatrix::from_dense(&dense).expect("csrv");
        let originals = RowBlocks::split(&csrv, blocks);
        let configs = vec![BlockReorderConfig::new(algo); originals.len()];
        let reordered = reorder_blocks_with(&csrv, &configs);
        let mut rows = 0usize;
        for ((block, _), original) in reordered.iter().zip(originals.blocks()) {
            prop_assert_eq!(block.to_dense(), original.to_dense());
            prop_assert_eq!(block.nnz(), original.nnz());
            rows += block.rows();
        }
        prop_assert_eq!(rows, dense.rows());
    }

    #[test]
    fn uniform_configs_agree_with_the_classic_wrapper(
        dense in dense_strategy(),
        algo in algos(),
        blocks in 1usize..5,
    ) {
        let csrv = CsrvMatrix::from_dense(&dense).expect("csrv");
        let via_wrapper = reorder_blocks(
            &csrv,
            blocks,
            algo,
            gcm_reorder::CsmConfig::exact(),
            8,
        );
        let configs = vec![BlockReorderConfig::new(algo); via_wrapper.len()];
        let via_configs = reorder_blocks_with(&csrv, &configs);
        prop_assert_eq!(via_wrapper.len(), via_configs.len());
        for (a, (b, _)) in via_wrapper.iter().zip(&via_configs) {
            prop_assert_eq!(a.symbols(), b.symbols());
        }
    }
}
