//! Simple matrix IO: a MatrixMarket-like text format and a compact binary
//! format for dense matrices.
//!
//! The paper's datasets ship as numeric tables; these readers/writers make
//! the examples and harnesses self-contained without external parsers.

use std::io::{self, BufRead, Write};

use crate::dense::DenseMatrix;
use crate::error::MatrixError;

/// Writes a dense matrix as text: a header line `rows cols`, then one line
/// of space-separated values per row.
pub fn write_dense_text<W: Write>(m: &DenseMatrix, mut w: W) -> io::Result<()> {
    writeln!(w, "{} {}", m.rows(), m.cols())?;
    let mut line = String::new();
    for r in 0..m.rows() {
        line.clear();
        for (c, v) in m.row(r).iter().enumerate() {
            if c > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{v}"));
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads the text format produced by [`write_dense_text`].
///
/// # Errors
/// Fails on malformed headers, rows of the wrong length, or unparsable
/// numbers.
pub fn read_dense_text<R: BufRead>(r: R) -> Result<DenseMatrix, MatrixError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Parse("empty input".into()))?
        .map_err(|e| MatrixError::Parse(e.to_string()))?;
    let mut parts = header.split_whitespace();
    let rows: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| MatrixError::Parse("bad row count".into()))?;
    let cols: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| MatrixError::Parse("bad column count".into()))?;
    let mut data = Vec::with_capacity(rows * cols);
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| MatrixError::Parse(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let before = data.len();
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|_| MatrixError::Parse(format!("bad number {tok:?} on row {i}")))?;
            data.push(v);
        }
        if data.len() - before != cols {
            return Err(MatrixError::Parse(format!(
                "row {i} has {} values, expected {cols}",
                data.len() - before
            )));
        }
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Magic bytes of the binary dense format.
const MAGIC: &[u8; 8] = b"GCMDNSE1";

/// Writes a dense matrix in a compact little-endian binary format.
pub fn write_dense_binary<W: Write>(m: &DenseMatrix, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    Ok(())
}

/// Reads the binary format produced by [`write_dense_binary`].
///
/// # Errors
/// Fails on bad magic or truncated payloads.
pub fn read_dense_binary(data: &[u8]) -> Result<DenseMatrix, MatrixError> {
    if data.len() < 24 || &data[..8] != MAGIC {
        return Err(MatrixError::Parse("bad magic".into()));
    }
    let rows = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
    let cols = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
    let need = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| MatrixError::Parse("size overflow".into()))?;
    let payload = &data[24..];
    if payload.len() < need {
        return Err(MatrixError::Parse(format!(
            "truncated payload: need {need} bytes, have {}",
            payload.len()
        )));
    }
    let mut values = Vec::with_capacity(rows * cols);
    for chunk in payload[..need].chunks_exact(8) {
        values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
    }
    DenseMatrix::from_vec(rows, cols, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.25, 0.0, -3.5], &[0.0, 2.75, 0.0]])
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        let mut buf = Vec::new();
        write_dense_text(&m, &mut buf).unwrap();
        let back = read_dense_text(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn binary_roundtrip() {
        let m = sample();
        let mut buf = Vec::new();
        write_dense_binary(&m, &mut buf).unwrap();
        let back = read_dense_binary(&buf).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn text_rejects_ragged_rows() {
        let input = "2 3\n1 2 3\n4 5\n";
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn text_rejects_bad_numbers() {
        let input = "1 2\n1 abc\n";
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let m = sample();
        let mut buf = Vec::new();
        write_dense_binary(&m, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_dense_binary(&buf).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_dense_binary(b"NOTMAGIC________________").is_err());
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = DenseMatrix::zeros(0, 3);
        let mut buf = Vec::new();
        write_dense_text(&m, &mut buf).unwrap();
        let back = read_dense_text(&buf[..]).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(back.cols(), 3);
    }
}
