//! Simple matrix IO: a MatrixMarket-like text format and a compact binary
//! format for dense matrices.
//!
//! The paper's datasets ship as numeric tables; these readers/writers make
//! the examples and harnesses self-contained without external parsers.

use std::io::{self, BufRead, Write};

use gcm_encodings::varint;

use crate::csrv::CsrvMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;

/// Writes a dense matrix as text: a header line `rows cols`, then one line
/// of space-separated values per row.
pub fn write_dense_text<W: Write>(m: &DenseMatrix, mut w: W) -> io::Result<()> {
    writeln!(w, "{} {}", m.rows(), m.cols())?;
    let mut line = String::new();
    for r in 0..m.rows() {
        line.clear();
        for (c, v) in m.row(r).iter().enumerate() {
            if c > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{v}"));
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads the text format produced by [`write_dense_text`].
///
/// The header is treated as untrusted: a `rows × cols` product that
/// overflows is rejected before anything is allocated, the initial
/// reservation is capped so a lying header cannot force a huge
/// allocation, and a body that is longer or shorter than the header
/// promises is an error.
///
/// # Errors
/// Fails on malformed headers, dimension overflow, rows of the wrong
/// length, a body length that mismatches the header, or unparsable
/// numbers.
pub fn read_dense_text<R: BufRead>(r: R) -> Result<DenseMatrix, MatrixError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Parse("empty input".into()))?
        .map_err(|e| MatrixError::Parse(e.to_string()))?;
    let mut parts = header.split_whitespace();
    let rows: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| MatrixError::Parse("bad row count".into()))?;
    let cols: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| MatrixError::Parse("bad column count".into()))?;
    let total = rows
        .checked_mul(cols)
        .filter(|&n| n.checked_mul(8).is_some())
        .ok_or_else(|| MatrixError::Parse(format!("matrix dimensions {rows} x {cols} overflow")))?;
    // Cap the up-front reservation: the body itself proves the real size.
    let mut data = Vec::with_capacity(total.min(1 << 20));
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| MatrixError::Parse(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        if data.len() + cols > total {
            return Err(MatrixError::Parse(format!(
                "body has more than the {rows} rows promised by the header"
            )));
        }
        let before = data.len();
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|_| MatrixError::Parse(format!("bad number {tok:?} on row {i}")))?;
            data.push(v);
            if data.len() - before > cols {
                return Err(MatrixError::Parse(format!(
                    "row {i} has more than {cols} values"
                )));
            }
        }
        if data.len() - before != cols {
            return Err(MatrixError::Parse(format!(
                "row {i} has {} values, expected {cols}",
                data.len() - before
            )));
        }
    }
    if data.len() != total {
        return Err(MatrixError::Parse(format!(
            "body has {} values, header promises {rows} x {cols} = {total}",
            data.len()
        )));
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Magic bytes of the binary dense format.
const MAGIC: &[u8; 8] = b"GCMDNSE1";

/// Writes a dense matrix in a compact little-endian binary format.
pub fn write_dense_binary<W: Write>(m: &DenseMatrix, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    Ok(())
}

/// Reads the binary format produced by [`write_dense_binary`].
///
/// # Errors
/// Fails on bad magic or truncated payloads.
pub fn read_dense_binary(data: &[u8]) -> Result<DenseMatrix, MatrixError> {
    if data.len() < 24 || &data[..8] != MAGIC {
        return Err(MatrixError::Parse("bad magic".into()));
    }
    let rows = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
    let cols = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
    let need = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| MatrixError::Parse("size overflow".into()))?;
    let payload = &data[24..];
    if payload.len() < need {
        return Err(MatrixError::Parse(format!(
            "truncated payload: need {need} bytes, have {}",
            payload.len()
        )));
    }
    let mut values = Vec::with_capacity(rows * cols);
    for chunk in payload[..need].chunks_exact(8) {
        values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
    }
    DenseMatrix::from_vec(rows, cols, values)
}

/// Magic bytes of the binary CSRV section format.
const CSRV_MAGIC: &[u8; 8] = b"GCMCSRV1";

/// Appends a CSRV matrix as a self-delimiting binary section:
///
/// ```text
/// magic "GCMCSRV1" | varint rows, cols | varint |V| + f64 LE values
/// varint |S| + u32 LE symbols
/// ```
///
/// The model-store containers of the serve layer embed these sections;
/// [`read_csrv_bytes`] validates them fully before handing the symbols
/// to any multiplication kernel.
pub fn write_csrv_bytes(m: &CsrvMatrix, out: &mut Vec<u8>) {
    out.extend_from_slice(CSRV_MAGIC);
    varint::write_u64(out, m.rows() as u64);
    varint::write_u64(out, m.cols() as u64);
    varint::write_u64(out, m.values().len() as u64);
    for &v in m.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    varint::write_u64(out, m.symbols().len() as u64);
    for &s in m.symbols() {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

/// Reads a section written by [`write_csrv_bytes`], advancing `pos`.
///
/// Deserialisation is validating, so corrupt input can never panic a
/// kernel: every symbol must lie below the terminal limit `1 + |V|·cols`
/// (which bounds both the value index and the column of every pair) and
/// the separator count must equal the row count. Returns `None` on any
/// violation.
pub fn read_csrv_bytes(data: &[u8], pos: &mut usize) -> Option<CsrvMatrix> {
    if data.len() < *pos + 8 || &data[*pos..*pos + 8] != CSRV_MAGIC {
        return None;
    }
    *pos += 8;
    let rows = varint::read_u64(data, pos)?;
    let cols = varint::read_u64(data, pos)?;
    // The symbol codec addresses columns (and rows via separators) as
    // u32, so larger headers can only be forged.
    if rows > u64::from(u32::MAX) || cols > u64::from(u32::MAX) {
        return None;
    }
    let (rows, cols) = (rows as usize, cols as usize);
    let n_values = varint::read_u64(data, pos)? as usize;
    let need = n_values.checked_mul(8)?;
    let end = pos.checked_add(need).filter(|&e| e <= data.len())?;
    let values: Vec<f64> = data[*pos..end]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    *pos = end;
    let n_syms = varint::read_u64(data, pos)? as usize;
    let need = n_syms.checked_mul(4)?;
    pos.checked_add(need).filter(|&e| e <= data.len())?;
    let limit = (n_values as u64).checked_mul(cols as u64)?.checked_add(1)?;
    if limit > u64::from(u32::MAX) + 1 {
        return None;
    }
    let mut symbols = Vec::with_capacity(n_syms);
    let mut separators = 0usize;
    for c in data[*pos..*pos + need].chunks_exact(4) {
        let s = u32::from_le_bytes(c.try_into().unwrap());
        if u64::from(s) >= limit {
            return None;
        }
        if s == crate::csrv::SEPARATOR {
            separators += 1;
        } else if separators >= rows {
            // Every row ends with `$`, so no pair may trail the final
            // separator — the left kernels index `y[row]` per pair and
            // would run out of bounds otherwise.
            return None;
        }
        symbols.push(s);
    }
    *pos += need;
    if separators != rows {
        return None;
    }
    Some(CsrvMatrix::from_parts(
        rows,
        cols,
        std::sync::Arc::new(values),
        symbols,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.25, 0.0, -3.5], &[0.0, 2.75, 0.0]])
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        let mut buf = Vec::new();
        write_dense_text(&m, &mut buf).unwrap();
        let back = read_dense_text(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn binary_roundtrip() {
        let m = sample();
        let mut buf = Vec::new();
        write_dense_binary(&m, &mut buf).unwrap();
        let back = read_dense_binary(&buf).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn text_rejects_ragged_rows() {
        let input = "2 3\n1 2 3\n4 5\n";
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn text_rejects_bad_numbers() {
        let input = "1 2\n1 abc\n";
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let m = sample();
        let mut buf = Vec::new();
        write_dense_binary(&m, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_dense_binary(&buf).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_dense_binary(b"NOTMAGIC________________").is_err());
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = DenseMatrix::zeros(0, 3);
        let mut buf = Vec::new();
        write_dense_text(&m, &mut buf).unwrap();
        let back = read_dense_text(&buf[..]).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(back.cols(), 3);
    }

    #[test]
    fn text_rejects_overflowing_header() {
        // rows * cols overflows usize: must fail fast, before allocating.
        let input = format!("{} {}\n", usize::MAX, 3);
        assert!(read_dense_text(input.as_bytes()).is_err());
        // rows * cols fits but the f64 byte count would overflow.
        let input = format!("{} {}\n", usize::MAX / 4, 3);
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn text_rejects_body_shorter_than_header() {
        let input = "3 2\n1 2\n3 4\n";
        let err = read_dense_text(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header promises"), "{err}");
    }

    #[test]
    fn text_rejects_body_longer_than_header() {
        let input = "1 2\n1 2\n3 4\n";
        assert!(read_dense_text(input.as_bytes()).is_err());
        // A single over-long row is caught as soon as it overruns.
        let input = "1 2\n1 2 3\n";
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn huge_header_with_empty_body_does_not_allocate_its_claim() {
        // A lying header may promise ~2^57 values; the reader must reject
        // it from the actual body without reserving that much.
        let input = format!("{} {}\n", 1usize << 30, 1usize << 27);
        assert!(read_dense_text(input.as_bytes()).is_err());
    }

    #[test]
    fn csrv_bytes_roundtrip() {
        let m = DenseMatrix::from_rows(&[
            &[1.5, 0.0, 2.5, 0.0],
            &[0.0, 1.5, 0.0, 2.5],
            &[1.5, 1.5, 0.0, 0.0],
        ]);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let mut buf = vec![0xAA; 3]; // leading junk: sections are positional
        write_csrv_bytes(&csrv, &mut buf);
        let end = buf.len();
        buf.extend_from_slice(b"trailing");
        let mut pos = 3usize;
        let back = read_csrv_bytes(&buf, &mut pos).expect("roundtrip");
        assert_eq!(pos, end, "section must be self-delimiting");
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 4);
        assert_eq!(back.symbols(), csrv.symbols());
        assert_eq!(back.values(), csrv.values());
        assert_eq!(back.to_dense(), m);
    }

    #[test]
    fn csrv_bytes_reject_truncation_and_corruption() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let mut buf = Vec::new();
        write_csrv_bytes(&csrv, &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                read_csrv_bytes(&buf[..cut], &mut pos).is_none(),
                "cut at {cut}"
            );
        }
        // An out-of-range symbol (>= terminal limit) must be rejected:
        // patch the last symbol, which sits in the final 4 bytes.
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(read_csrv_bytes(&bad, &mut pos).is_none());
        // A separator-count mismatch (row count patched) is rejected too.
        let mut bad = buf.clone();
        bad[8] = bad[8].wrapping_add(1); // rows varint (values < 128 here)
        let mut pos = 0;
        assert!(read_csrv_bytes(&bad, &mut pos).is_none());
    }

    #[test]
    fn csrv_bytes_reject_pairs_trailing_the_final_separator() {
        // A forged stream whose separator COUNT matches the row count but
        // whose final separator is followed by more pairs would send the
        // left-multiply kernels out of bounds on `y[row]`.
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        // rows=2, symbols forged to [pair, $, $, pair].
        let pair = *csrv.symbols().iter().find(|&&s| s != 0).unwrap();
        let forged = CsrvMatrix::from_parts(
            2,
            2,
            std::sync::Arc::new(csrv.values().to_vec()),
            vec![pair, 0, 0, pair],
        );
        let mut buf = Vec::new();
        write_csrv_bytes(&forged, &mut buf);
        let mut pos = 0;
        assert!(read_csrv_bytes(&buf, &mut pos).is_none());
    }

    #[test]
    fn csrv_bytes_empty_matrix() {
        let csrv = CsrvMatrix::from_dense(&DenseMatrix::zeros(2, 3)).unwrap();
        let mut buf = Vec::new();
        write_csrv_bytes(&csrv, &mut buf);
        let mut pos = 0;
        let back = read_csrv_bytes(&buf, &mut pos).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 3);
        assert_eq!(back.nnz(), 0);
    }
}
