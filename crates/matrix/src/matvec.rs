//! A common interface for everything that can multiply by a vector.
//!
//! The paper benchmarks the same iterative kernel (Eq. 4) over several
//! representations (csrv, re_32, re_iv, re_ans, CLA, dense); this trait is
//! what lets the harness treat them uniformly.

use crate::csr::CsrMatrix;
use crate::csrv::CsrvMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;

/// Matrix-vector multiplication from both sides.
pub trait MatVec {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// Right multiplication `y = M·x`.
    ///
    /// # Errors
    /// Implementations fail on dimension mismatches.
    fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError>;

    /// Left multiplication `xᵗ = yᵗ·M`.
    ///
    /// # Errors
    /// Implementations fail on dimension mismatches.
    fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError>;

    /// Matrix-matrix product `Y = M·B` by repeated right multiplication
    /// over `B`'s columns (the MVM-chain pattern of ML scoring loops).
    ///
    /// # Errors
    /// Fails if `B` has a different row count than `M` has columns.
    fn right_multiply_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
        if b.rows() != self.cols() {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols(),
                actual: b.rows(),
                what: "B rows",
            });
        }
        let (n, k) = (self.rows(), b.cols());
        let mut out = DenseMatrix::zeros(n, k);
        let mut x = vec![0.0f64; self.cols()];
        let mut y = vec![0.0f64; n];
        for j in 0..k {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = b.get(i, j);
            }
            self.right_multiply(&x, &mut y)?;
            for (i, &yi) in y.iter().enumerate() {
                out.set(i, j, yi);
            }
        }
        Ok(out)
    }
}

impl MatVec for DenseMatrix {
    fn rows(&self) -> usize {
        DenseMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DenseMatrix::cols(self)
    }

    fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        DenseMatrix::right_multiply(self, x, y)
    }

    fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        DenseMatrix::left_multiply(self, y, x)
    }
}

impl MatVec for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }

    fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        CsrMatrix::right_multiply(self, x, y)
    }

    fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        CsrMatrix::left_multiply(self, y, x)
    }
}

impl MatVec for CsrvMatrix {
    fn rows(&self) -> usize {
        CsrvMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrvMatrix::cols(self)
    }

    fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        CsrvMatrix::right_multiply(self, x, y)
    }

    fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        CsrvMatrix::left_multiply(self, y, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]])
    }

    fn check_impl(m: &dyn MatVec, reference: &DenseMatrix) {
        let x = [1.0, 2.0, 3.0];
        let mut y_ref = vec![0.0; 2];
        let mut y = vec![0.0; 2];
        reference.right_multiply(&x, &mut y_ref).unwrap();
        m.right_multiply(&x, &mut y).unwrap();
        assert_eq!(y, y_ref);

        let yy = [1.0, -1.0];
        let mut x_ref = vec![0.0; 3];
        let mut x_out = vec![0.0; 3];
        reference.left_multiply(&yy, &mut x_ref).unwrap();
        m.left_multiply(&yy, &mut x_out).unwrap();
        assert_eq!(x_out, x_ref);
    }

    #[test]
    fn trait_objects_work_for_all_formats() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        let csrv = CsrvMatrix::from_dense(&d).unwrap();
        check_impl(&d, &d);
        check_impl(&csr, &d);
        check_impl(&csrv, &d);
    }

    #[test]
    fn matrix_matrix_product() {
        let m = sample(); // 2x3
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]); // 3x2
        let y = m.right_multiply_matrix(&b).unwrap();
        // [[1,0,2],[0,3,0]] * [[1,0],[0,1],[1,1]] = [[3,2],[0,3]]
        assert_eq!(y.get(0, 0), 3.0);
        assert_eq!(y.get(0, 1), 2.0);
        assert_eq!(y.get(1, 0), 0.0);
        assert_eq!(y.get(1, 1), 3.0);
        // Dimension check.
        let bad = DenseMatrix::zeros(2, 2);
        assert!(m.right_multiply_matrix(&bad).is_err());
    }
}
