//! A common interface for everything that can multiply by a vector.
//!
//! The paper benchmarks the same iterative kernel (Eq. 4) over several
//! representations (csrv, re_32, re_iv, re_ans, CLA, dense); this trait is
//! what lets the harness treat them uniformly.
//!
//! The trait is split into two layers:
//!
//! * the **execution layer** — [`MatVec::right_multiply_into`] /
//!   [`MatVec::left_multiply_into`] and the batched
//!   [`MatVec::right_multiply_matrix_into`] /
//!   [`MatVec::left_multiply_matrix_into`] — takes every scratch buffer
//!   from a caller-owned [`Workspace`], so a steady-state serving loop
//!   performs no heap allocation;
//! * the **convenience layer** — [`MatVec::right_multiply`],
//!   [`MatVec::left_multiply`], [`MatVec::right_multiply_matrix`],
//!   [`MatVec::left_multiply_matrix`] — thin wrappers that conjure a
//!   throwaway workspace (and, for the matrix products, the output) per
//!   call.
//!
//! Batched products use **row-major panels**: the `k` right-hand sides of
//! `Y = M·X` are the *columns* of a `cols × k` [`DenseMatrix`], so the `k`
//! values a kernel needs for input coordinate `j` are the contiguous row
//! `X[j, ·]`. Compressed backends override the batched methods to traverse
//! their representation **once per batch** instead of once per column.

use crate::csr::CsrMatrix;
use crate::csrv::CsrvMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::workspace::Workspace;

/// Matrix-vector multiplication from both sides.
pub trait MatVec {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// Right multiplication `y = M·x`, drawing scratch from `ws`.
    ///
    /// # Errors
    /// Implementations fail on dimension mismatches.
    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError>;

    /// Left multiplication `xᵗ = yᵗ·M`, drawing scratch from `ws`.
    ///
    /// # Errors
    /// Implementations fail on dimension mismatches.
    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError>;

    /// Right multiplication `y = M·x` (allocating wrapper).
    ///
    /// # Errors
    /// Implementations fail on dimension mismatches.
    fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        let mut ws = Workspace::new();
        self.right_multiply_into(x, y, &mut ws)
    }

    /// Left multiplication `xᵗ = yᵗ·M` (allocating wrapper).
    ///
    /// # Errors
    /// Implementations fail on dimension mismatches.
    fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        let mut ws = Workspace::new();
        self.left_multiply_into(y, x, &mut ws)
    }

    /// Batched right product `Y = M·B` into a preallocated `out`
    /// (`rows × k` for a `cols × k` input `B`), drawing scratch from `ws`.
    ///
    /// The default walks `B`'s columns one at a time through
    /// [`right_multiply_into`](Self::right_multiply_into); compressed
    /// backends override it with kernels that traverse the representation
    /// once for the whole batch.
    ///
    /// # Errors
    /// Fails if `B` has a different row count than `M` has columns, or if
    /// `out` is not `rows × B.cols()`.
    fn right_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_right_batch(self.rows(), self.cols(), b, out)?;
        let k = b.cols();
        let mut x = ws.take(self.cols());
        let mut y = ws.take(self.rows());
        for j in 0..k {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = b.get(i, j);
            }
            self.right_multiply_into(&x, &mut y, ws)?;
            for (i, &yi) in y.iter().enumerate() {
                out.set(i, j, yi);
            }
        }
        ws.put(x);
        ws.put(y);
        Ok(())
    }

    /// Matrix-matrix product `Y = M·B` (the MVM-chain pattern of ML
    /// scoring loops); allocating wrapper over
    /// [`right_multiply_matrix_into`](Self::right_multiply_matrix_into).
    ///
    /// # Errors
    /// Fails if `B` has a different row count than `M` has columns.
    fn right_multiply_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
        let mut out = DenseMatrix::zeros(self.rows(), b.cols());
        let mut ws = Workspace::new();
        self.right_multiply_matrix_into(b, &mut out, &mut ws)?;
        Ok(out)
    }

    /// Batched left product `X = Mᵗ·B` into a preallocated `out`
    /// (`cols × k` for a `rows × k` input `B`; column `j` of `out` is
    /// `B[·,j]ᵗ·M`), drawing scratch from `ws`.
    ///
    /// # Errors
    /// Fails if `B` has a different row count than `M` has rows, or if
    /// `out` is not `cols × B.cols()`.
    fn left_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_left_batch(self.rows(), self.cols(), b, out)?;
        let k = b.cols();
        let mut y = ws.take(self.rows());
        let mut x = ws.take(self.cols());
        for j in 0..k {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = b.get(i, j);
            }
            self.left_multiply_into(&y, &mut x, ws)?;
            for (i, &xi) in x.iter().enumerate() {
                out.set(i, j, xi);
            }
        }
        ws.put(y);
        ws.put(x);
        Ok(())
    }

    /// Batched left product `X = Mᵗ·B`; allocating wrapper over
    /// [`left_multiply_matrix_into`](Self::left_multiply_matrix_into).
    ///
    /// # Errors
    /// Fails if `B` has a different row count than `M` has rows.
    fn left_multiply_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
        let mut out = DenseMatrix::zeros(self.cols(), b.cols());
        let mut ws = Workspace::new();
        self.left_multiply_matrix_into(b, &mut out, &mut ws)?;
        Ok(out)
    }
}

/// Validates shapes for `Y = M·B`: `B` is `cols × k`, `out` is `rows × k`.
///
/// Exposed for backend crates implementing the batched [`MatVec`]
/// overrides.
///
/// # Errors
/// Fails on any shape mismatch.
pub fn check_right_batch(
    rows: usize,
    cols: usize,
    b: &DenseMatrix,
    out: &DenseMatrix,
) -> Result<(), MatrixError> {
    if b.rows() != cols {
        return Err(MatrixError::DimensionMismatch {
            expected: cols,
            actual: b.rows(),
            what: "B rows",
        });
    }
    if out.rows() != rows {
        return Err(MatrixError::DimensionMismatch {
            expected: rows,
            actual: out.rows(),
            what: "out rows",
        });
    }
    if out.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            expected: b.cols(),
            actual: out.cols(),
            what: "out cols",
        });
    }
    Ok(())
}

/// Validates shapes for `X = Mᵗ·B`: `B` is `rows × k`, `out` is `cols × k`.
///
/// Exposed for backend crates implementing the batched [`MatVec`]
/// overrides.
///
/// # Errors
/// Fails on any shape mismatch.
pub fn check_left_batch(
    rows: usize,
    cols: usize,
    b: &DenseMatrix,
    out: &DenseMatrix,
) -> Result<(), MatrixError> {
    if b.rows() != rows {
        return Err(MatrixError::DimensionMismatch {
            expected: rows,
            actual: b.rows(),
            what: "B rows",
        });
    }
    if out.rows() != cols {
        return Err(MatrixError::DimensionMismatch {
            expected: cols,
            actual: out.rows(),
            what: "out rows",
        });
    }
    if out.cols() != b.cols() {
        return Err(MatrixError::DimensionMismatch {
            expected: b.cols(),
            actual: out.cols(),
            what: "out cols",
        });
    }
    Ok(())
}

/// Validates row-major panel slice lengths for a `rows × cols` operator
/// with batch width `k`: `x_panel` must hold `cols·k` values and
/// `y_panel` `rows·k`. Shared by every backend exposing raw panel-slice
/// entry points (`BlockedMatrix`, `ParallelCsrv`, the serve layer).
///
/// # Errors
/// Fails on either length mismatch.
pub fn check_panels(
    rows: usize,
    cols: usize,
    k: usize,
    x_len: usize,
    y_len: usize,
) -> Result<(), MatrixError> {
    if x_len != cols * k {
        return Err(MatrixError::DimensionMismatch {
            expected: cols * k,
            actual: x_len,
            what: "x panel length",
        });
    }
    if y_len != rows * k {
        return Err(MatrixError::DimensionMismatch {
            expected: rows * k,
            actual: y_len,
            what: "y panel length",
        });
    }
    Ok(())
}

impl MatVec for DenseMatrix {
    fn rows(&self) -> usize {
        DenseMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DenseMatrix::cols(self)
    }

    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        DenseMatrix::right_multiply(self, x, y)
    }

    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        DenseMatrix::left_multiply(self, y, x)
    }
}

impl MatVec for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }

    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        CsrMatrix::right_multiply(self, x, y)
    }

    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        CsrMatrix::left_multiply(self, y, x)
    }
}

impl MatVec for CsrvMatrix {
    fn rows(&self) -> usize {
        CsrvMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrvMatrix::cols(self)
    }

    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        CsrvMatrix::right_multiply(self, x, y)
    }

    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        CsrvMatrix::left_multiply(self, y, x)
    }

    fn right_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_right_batch(self.rows(), self.cols(), b, out)?;
        self.right_multiply_panel(b.as_slice(), out.as_mut_slice(), b.cols())
    }

    fn left_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_left_batch(self.rows(), self.cols(), b, out)?;
        self.left_multiply_panel(b.as_slice(), out.as_mut_slice(), b.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]])
    }

    fn check_impl(m: &dyn MatVec, reference: &DenseMatrix) {
        let x = [1.0, 2.0, 3.0];
        let mut y_ref = vec![0.0; 2];
        let mut y = vec![0.0; 2];
        reference.right_multiply(&x, &mut y_ref).unwrap();
        m.right_multiply(&x, &mut y).unwrap();
        assert_eq!(y, y_ref);

        let yy = [1.0, -1.0];
        let mut x_ref = vec![0.0; 3];
        let mut x_out = vec![0.0; 3];
        reference.left_multiply(&yy, &mut x_ref).unwrap();
        m.left_multiply(&yy, &mut x_out).unwrap();
        assert_eq!(x_out, x_ref);

        // The workspace paths agree with the allocating wrappers.
        let mut ws = Workspace::new();
        let mut y2 = vec![0.0; 2];
        m.right_multiply_into(&x, &mut y2, &mut ws).unwrap();
        assert_eq!(y2, y_ref);
        let mut x2 = vec![0.0; 3];
        m.left_multiply_into(&yy, &mut x2, &mut ws).unwrap();
        assert_eq!(x2, x_ref);
    }

    #[test]
    fn trait_objects_work_for_all_formats() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        let csrv = CsrvMatrix::from_dense(&d).unwrap();
        check_impl(&d, &d);
        check_impl(&csr, &d);
        check_impl(&csrv, &d);
    }

    #[test]
    fn matrix_matrix_product() {
        let m = sample(); // 2x3
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]); // 3x2
        let y = m.right_multiply_matrix(&b).unwrap();
        // [[1,0,2],[0,3,0]] * [[1,0],[0,1],[1,1]] = [[3,2],[0,3]]
        assert_eq!(y.get(0, 0), 3.0);
        assert_eq!(y.get(0, 1), 2.0);
        assert_eq!(y.get(1, 0), 0.0);
        assert_eq!(y.get(1, 1), 3.0);
        // Dimension check.
        let bad = DenseMatrix::zeros(2, 2);
        assert!(m.right_multiply_matrix(&bad).is_err());
    }

    #[test]
    fn left_matrix_product_matches_column_loop() {
        let m = sample(); // 2x3
        let b = DenseMatrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]); // 2x2
        let x = m.left_multiply_matrix(&b).unwrap();
        assert_eq!((x.rows(), x.cols()), (3, 2));
        for j in 0..2 {
            let y: Vec<f64> = (0..2).map(|i| b.get(i, j)).collect();
            let mut x_ref = vec![0.0; 3];
            m.left_multiply(&y, &mut x_ref).unwrap();
            for (i, &xi) in x_ref.iter().enumerate() {
                assert!((x.get(i, j) - xi).abs() < 1e-12);
            }
        }
        // Dimension check: B must have rows() rows.
        let bad = DenseMatrix::zeros(3, 2);
        assert!(m.left_multiply_matrix(&bad).is_err());
    }

    #[test]
    fn batched_into_validates_out_shape() {
        let m = sample();
        let b = DenseMatrix::zeros(3, 2);
        let mut ws = Workspace::new();
        let mut bad_out = DenseMatrix::zeros(2, 3);
        assert!(m
            .right_multiply_matrix_into(&b, &mut bad_out, &mut ws)
            .is_err());
        let mut ok_out = DenseMatrix::zeros(2, 2);
        assert!(m
            .right_multiply_matrix_into(&b, &mut ok_out, &mut ws)
            .is_ok());
    }

    #[test]
    fn csrv_batched_equals_dense_batched() {
        let d = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 2.0, 1.0],
            &[0.0, 3.0, 0.0, 1.0],
            &[2.0, 0.0, 2.0, 0.0],
        ]);
        let csrv = CsrvMatrix::from_dense(&d).unwrap();
        let b = DenseMatrix::from_rows(&[
            &[1.0, 0.5, -1.0],
            &[0.0, 1.0, 2.0],
            &[1.0, 1.0, 0.0],
            &[-2.0, 0.0, 1.0],
        ]);
        let want = d.right_multiply_matrix(&b).unwrap();
        let got = csrv.right_multiply_matrix(&b).unwrap();
        assert_eq!(got, want);

        let by = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, -1.0], &[0.5, 0.0]]);
        let want = d.left_multiply_matrix(&by).unwrap();
        let got = csrv.left_multiply_matrix(&by).unwrap();
        for i in 0..want.rows() {
            for j in 0..want.cols() {
                assert!((got.get(i, j) - want.get(i, j)).abs() < 1e-12);
            }
        }
    }
}
