//! Reusable multiplication scratch: the heart of the zero-allocation
//! serving loop.
//!
//! Every `*_into` method on [`MatVec`](crate::MatVec) draws its scratch
//! (the grammar `w` array, per-block partial vectors, batch panels) from a
//! [`Workspace`] instead of allocating. A workspace is a free list of
//! `f64` buffers: [`Workspace::take`] pops a buffer and resizes it to the
//! requested length, [`Workspace::put`] returns it. After the first call
//! of a steady-state loop the buffers have reached their final
//! capacities, so subsequent `take`/`put` cycles perform **no heap
//! allocation** — only an `O(len)` zero-fill, which the kernels pay
//! anyway.
//!
//! Reuse across differently-shaped matrices is safe by construction:
//! `take` always resizes to the exact requested length (growing the
//! allocation only when a larger matrix arrives), so a workspace can be
//! shared by matrices of any shapes, trading only the fill cost.
//!
//! ```
//! use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec, Workspace};
//!
//! let m = CsrvMatrix::from_dense(&DenseMatrix::from_rows(&[
//!     &[1.0, 0.0, 2.0],
//!     &[0.0, 3.0, 0.0],
//! ]))
//! .unwrap();
//! let mut ws = Workspace::new();
//! let mut y = vec![0.0; 2];
//! // Steady-state loop: no allocation after the first iteration.
//! for _ in 0..100 {
//!     m.right_multiply_into(&[1.0, 2.0, 3.0], &mut y, &mut ws).unwrap();
//! }
//! assert_eq!(y, vec![7.0, 6.0]);
//! ```

/// A free list of reusable `f64` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty workspace; buffers are created on first use.
    pub const fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// Pops a buffer from the free list (or creates one) and resizes it to
    /// exactly `len`.
    ///
    /// **Contents are unspecified**: a newly grown region is zeroed, but a
    /// reused region keeps stale values from its previous use. Every
    /// kernel in the workspace fully initialises its scratch before
    /// reading it (the right kernels overwrite `w`, the left kernels
    /// `fill(0.0)` it), so `take` deliberately skips the redundant
    /// zero-fill — steady-state same-size reuse costs nothing at all.
    ///
    /// Steady state — a loop issuing the same `take`/`put` sequence every
    /// iteration — reuses the same buffers in LIFO order and never
    /// allocates once capacities have stabilised.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the free list for later reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.free.push(buf);
    }

    /// Pre-grows the free list so that any subsequent `take`/`put`
    /// sequence holding at most `count` buffers at once, each of at most
    /// `max_len` elements, performs **no heap allocation** — including
    /// on its very first iteration.
    ///
    /// The serve layer calls this when a model is loaded, so a freshly
    /// restarted server is allocation-free from the first request rather
    /// than from the second (the warm-up a cold `Workspace` otherwise
    /// needs).
    pub fn warm(&mut self, count: usize, max_len: usize) {
        while self.free.len() < count {
            self.free.push(Vec::new());
        }
        for buf in self.free.iter_mut() {
            if buf.capacity() < max_len {
                buf.reserve(max_len - buf.len());
            }
        }
    }

    /// Number of buffers currently parked in the free list.
    pub fn retained_buffers(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (bytes) parked in the free list — the workspace's
    /// contribution to a representation's working-space accounting.
    pub fn retained_bytes(&self) -> usize {
        self.free.iter().map(|b| b.capacity() * 8).sum()
    }

    /// Drops every retained buffer, releasing the memory.
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_exact_length() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(5);
        // Fresh buffers are zeroed (they grew from empty).
        assert_eq!(buf, vec![0.0; 5]);
        buf[0] = 3.5;
        ws.put(buf);
        // Reused buffers keep their length contract; contents are
        // unspecified (kernels fully initialise their scratch).
        let buf = ws.take(8);
        assert_eq!(buf.len(), 8);
        let buf2 = ws.take(3);
        assert_eq!(buf2.len(), 3);
    }

    #[test]
    fn steady_state_reuses_capacity() {
        let mut ws = Workspace::new();
        let buf = ws.take(100);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        ws.put(buf);
        for _ in 0..10 {
            let buf = ws.take(100);
            assert_eq!(buf.as_ptr(), ptr, "same allocation must be reused");
            assert_eq!(buf.capacity(), cap);
            ws.put(buf);
        }
    }

    #[test]
    fn shrinking_then_growing_does_not_lose_capacity() {
        let mut ws = Workspace::new();
        let buf = ws.take(64);
        let cap = buf.capacity();
        ws.put(buf);
        // A smaller matrix truncates without reallocating…
        let buf = ws.take(8);
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.capacity(), cap);
        ws.put(buf);
        // …and going back to the larger shape reuses the old capacity.
        let buf = ws.take(64);
        assert_eq!(buf.len(), 64);
        assert_eq!(buf.capacity(), cap);
        ws.put(buf);
    }

    #[test]
    fn warm_makes_first_take_sequence_allocation_free() {
        let mut ws = Workspace::new();
        ws.warm(3, 256);
        assert_eq!(ws.retained_buffers(), 3);
        assert!(ws.retained_bytes() >= 3 * 256 * 8);
        // Any take/put pattern within the warmed budget reuses the same
        // allocations (pointer-stable), even on the first iteration.
        let a = ws.take(256);
        let b = ws.take(100);
        let c = ws.take(1);
        let ptrs = [a.as_ptr(), b.as_ptr(), c.as_ptr()];
        let caps = [a.capacity(), b.capacity(), c.capacity()];
        ws.put(c);
        ws.put(b);
        ws.put(a);
        for _ in 0..4 {
            let a = ws.take(199);
            let b = ws.take(256);
            let c = ws.take(7);
            assert!(ptrs.contains(&a.as_ptr()));
            assert!(ptrs.contains(&b.as_ptr()));
            assert!(ptrs.contains(&c.as_ptr()));
            assert!(caps.contains(&a.capacity()));
            ws.put(a);
            ws.put(b);
            ws.put(c);
        }
        // Warming an already-warm workspace is idempotent.
        ws.warm(3, 128);
        assert_eq!(ws.retained_buffers(), 3);
    }

    #[test]
    fn accounting_and_clear() {
        let mut ws = Workspace::new();
        let a = ws.take(10);
        let b = ws.take(20);
        ws.put(a);
        ws.put(b);
        assert_eq!(ws.retained_buffers(), 2);
        assert!(ws.retained_bytes() >= 30 * 8);
        ws.clear();
        assert_eq!(ws.retained_buffers(), 0);
        assert_eq!(ws.retained_bytes(), 0);
    }
}
