//! Classical Compressed Sparse Row (CSR) representation (§2).
//!
//! Included both as a conversion waypoint and as the reference point the
//! paper uses when observing that CSR (12 bytes per non-zero) can exceed
//! the dense size for near-dense matrices such as Susy.

use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use gcm_encodings::HeapSize;

/// A CSR matrix: `values`/`col_idx` per non-zero, `row_ptr` of length
/// `rows + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
    col_idx: Vec<u32>,
    row_ptr: Vec<usize>,
}

impl CsrMatrix {
    /// Converts a dense matrix.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    values.push(v);
                    col_idx.push(c as u32);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            values,
            col_idx,
            row_ptr,
        }
    }

    /// Builds from (row, col, value) triplets; duplicate cells are rejected.
    ///
    /// # Errors
    /// Fails if a triplet is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, MatrixError> {
        let mut sorted: Vec<&(usize, usize, f64)> = triplets.iter().collect();
        sorted.sort_by_key(|t| (t.0, t.1));
        let mut values = Vec::with_capacity(triplets.len());
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut row_ptr = vec![0usize; rows + 1];
        let mut prev: Option<(usize, usize)> = None;
        for &&(r, c, v) in &sorted {
            if r >= rows || c >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
            if prev == Some((r, c)) {
                return Err(MatrixError::Parse(format!("duplicate cell ({r},{c})")));
            }
            prev = Some((r, c));
            if v == 0.0 {
                continue;
            }
            values.push(v);
            col_idx.push(c as u32);
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(Self {
            rows,
            cols,
            values,
            col_idx,
            row_ptr,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeroes.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(columns, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Size of the classical CSR encoding: 8 bytes per value, 4 per column
    /// index, 8 per row pointer.
    pub fn csr_bytes(&self) -> usize {
        self.values.len() * 8 + self.col_idx.len() * 4 + self.row_ptr.len() * 8
    }

    /// Right multiplication `y = M·x`.
    ///
    /// # Errors
    /// Fails on dimension mismatch.
    pub fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                what: "x length",
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
        Ok(())
    }

    /// Left multiplication `xᵗ = yᵗ·M`.
    ///
    /// # Errors
    /// Fails on dimension mismatch.
    pub fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                what: "x length",
            });
        }
        x.fill(0.0);
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                x[c as usize] += yr * v;
            }
        }
        Ok(())
    }

    /// Converts back to dense (testing convenience).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.set(r, c as usize, v);
            }
        }
        m
    }
}

impl HeapSize for CsrMatrix {
    fn heap_bytes(&self) -> usize {
        self.values.heap_bytes() + self.col_idx.heap_bytes() + self.row_ptr.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.2, 3.4, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 1.7],
            &[0.0, 0.0, 0.0, 0.0, 0.0],
            &[3.4, 0.0, 5.6, 0.0, 2.3],
        ])
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 11);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn empty_row_handled() {
        let csr = CsrMatrix::from_dense(&sample());
        let (cols, vals) = csr.row(2);
        assert!(cols.is_empty() && vals.is_empty());
    }

    #[test]
    fn multiplication_matches_dense() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        let x = [0.5, -1.0, 2.0, 0.0, 3.0];
        let mut y_d = vec![0.0; 4];
        let mut y_s = vec![0.0; 4];
        d.right_multiply(&x, &mut y_d).unwrap();
        csr.right_multiply(&x, &mut y_s).unwrap();
        assert_eq!(y_d, y_s);

        let y = [1.0, -2.0, 0.5, 0.0];
        let mut x_d = vec![0.0; 5];
        let mut x_s = vec![0.0; 5];
        d.left_multiply(&y, &mut x_d).unwrap();
        csr.left_multiply(&y, &mut x_s).unwrap();
        assert_eq!(x_d, x_s);
    }

    #[test]
    fn from_triplets_sorted_and_checked() {
        let csr = CsrMatrix::from_triplets(3, 3, &[(2, 1, 5.0), (0, 0, 1.0), (0, 2, 2.0)]).unwrap();
        assert_eq!(csr.to_dense().get(2, 1), 5.0);
        assert_eq!(csr.to_dense().get(0, 2), 2.0);
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]).is_err());
    }

    #[test]
    fn triplets_drop_explicit_zeros() {
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn csr_bytes_exceeds_dense_for_dense_input() {
        // The paper's observation: CSR on a ~99% dense matrix is larger
        // than the dense form.
        let mut d = DenseMatrix::zeros(50, 50);
        for r in 0..50 {
            for c in 0..50 {
                if (r + c) % 100 != 0 {
                    d.set(r, c, (r * 50 + c) as f64 + 0.5);
                }
            }
        }
        let csr = CsrMatrix::from_dense(&d);
        assert!(csr.csr_bytes() > d.uncompressed_bytes());
    }
}
