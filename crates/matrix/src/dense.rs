//! Row-major dense matrices: the uncompressed baseline.
//!
//! Every size in the paper's tables is reported as a percentage of
//! `rows × cols × 8` bytes — the size of this representation.

use crate::error::MatrixError;
use gcm_encodings::HeapSize;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// Fails if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
                what: "data length",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n = rows.len();
        let m = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n * m);
        for r in rows {
            assert_eq!(r.len(), m, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: n,
            cols: m,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw row-major buffer (used by the batched
    /// kernels, which write whole `rows × k` panels in place).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The raw buffer as little-endian bytes (what gzip/xz compress in
    /// Table 1).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 8);
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Size of the uncompressed representation in bytes: `rows × cols × 8`.
    pub fn uncompressed_bytes(&self) -> usize {
        self.rows * self.cols * 8
    }

    /// Reference right multiplication `y = M·x`.
    ///
    /// # Errors
    /// Fails on dimension mismatch.
    pub fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                what: "x length",
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        Ok(())
    }

    /// Reference left multiplication `xᵗ = yᵗ·M`.
    ///
    /// # Errors
    /// Fails on dimension mismatch.
    pub fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                what: "x length",
            });
        }
        x.fill(0.0);
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (xc, &m) in x.iter_mut().zip(row) {
                *xc += yr * m;
            }
        }
        Ok(())
    }

    /// Applies a column order: new column `j` is old column `order[j]`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..cols`.
    pub fn with_column_order(&self, order: &[usize]) -> Self {
        assert_eq!(order.len(), self.cols, "order length");
        let mut seen = vec![false; self.cols];
        for &c in order {
            assert!(!seen[c], "order is not a permutation");
            seen[c] = true;
        }
        let mut out = Self::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (new_c, &old_c) in order.iter().enumerate() {
                out.set(r, new_c, self.get(r, old_c));
            }
        }
        out
    }
}

impl HeapSize for DenseMatrix {
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        // The matrix of Figure 1 of the paper.
        DenseMatrix::from_rows(&[
            &[1.2, 3.4, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 1.7],
            &[1.2, 3.4, 2.3, 4.5, 0.0],
            &[3.4, 0.0, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 0.0],
            &[1.2, 3.4, 2.3, 4.5, 3.4],
        ])
    }

    #[test]
    fn dims_and_nnz() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (6, 5));
        assert_eq!(m.nnz(), 23);
        assert_eq!(m.uncompressed_bytes(), 6 * 5 * 8);
    }

    #[test]
    fn right_multiply_reference() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![0.0; 6];
        m.right_multiply(&x, &mut y).unwrap();
        assert!((y[0] - (1.2 + 6.8 + 16.8 + 11.5)).abs() < 1e-12);
        assert!((y[1] - (2.3 + 6.9 + 18.0 + 8.5)).abs() < 1e-12);
    }

    #[test]
    fn left_multiply_reference() {
        let m = sample();
        let y = [1.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let mut x = vec![0.0; 5];
        m.left_multiply(&y, &mut x).unwrap();
        assert!((x[0] - (1.2 + 1.2)).abs() < 1e-12);
        assert!((x[4] - (2.3 + 3.4)).abs() < 1e-12);
    }

    #[test]
    fn multiply_dimension_checks() {
        let m = sample();
        let mut y = vec![0.0; 6];
        assert!(m.right_multiply(&[0.0; 4], &mut y).is_err());
        let mut x = vec![0.0; 5];
        assert!(m.left_multiply(&[0.0; 5], &mut x).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn column_reorder_is_permutation() {
        let m = sample();
        let order = [4, 3, 2, 1, 0];
        let p = m.with_column_order(&order);
        for r in 0..m.rows() {
            for (c, &old_c) in order.iter().enumerate() {
                assert_eq!(p.get(r, c), m.get(r, old_c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn column_reorder_rejects_duplicates() {
        sample().with_column_order(&[0, 0, 1, 2, 3]);
    }

    #[test]
    fn le_bytes_length() {
        let m = sample();
        assert_eq!(m.to_le_bytes().len(), 6 * 5 * 8);
    }
}
