//! Dictionary of distinct non-zero matrix values (the array `V` of §2).

use gcm_encodings::fxhash::FxHashMap;
use gcm_encodings::HeapSize;

/// Maps distinct non-zero `f64` values to dense indices and back.
///
/// Indices are assigned in first-seen order; the paper notes (§2) that any
/// ordering of `V` works. Values are keyed by their bit pattern, so `-0.0`
/// would be distinct from `0.0` — irrelevant in practice because exact
/// zeroes are never inserted.
#[derive(Debug, Clone, Default)]
pub struct ValueDict {
    values: Vec<f64>,
    index: FxHashMap<u64, u32>,
}

impl ValueDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the index of `v`, inserting it if new.
    ///
    /// # Panics
    /// Panics if `v == 0.0` (zeroes are implicit in sparse formats) or if
    /// `v` is NaN (which has no well-defined equality).
    #[inline]
    pub fn intern(&mut self, v: f64) -> u32 {
        assert!(v != 0.0, "zero values are implicit");
        assert!(!v.is_nan(), "NaN values are not supported");
        let bits = v.to_bits();
        if let Some(&i) = self.index.get(&bits) {
            return i;
        }
        let i = u32::try_from(self.values.len()).expect("more than 2^32 distinct values");
        self.values.push(v);
        self.index.insert(bits, i);
        i
    }

    /// Looks up the index of `v` without inserting.
    pub fn get(&self, v: f64) -> Option<u32> {
        self.index.get(&v.to_bits()).copied()
    }

    /// The value stored at `idx`.
    #[inline]
    pub fn value(&self, idx: u32) -> f64 {
        self.values[idx as usize]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The dictionary as a value slice (index order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the dictionary, keeping only the value array (the lookup
    /// index is construction-time scaffolding and should not count against
    /// the compressed footprint).
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl HeapSize for ValueDict {
    fn heap_bytes(&self) -> usize {
        // The hash index is transient; `V` itself is values only.
        self.values.heap_bytes() + self.index.capacity() * (8 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = ValueDict::new();
        let a = d.intern(1.5);
        let b = d.intern(2.5);
        let a2 = d.intern(1.5);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(a), 1.5);
        assert_eq!(d.value(b), 2.5);
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = ValueDict::new();
        d.intern(3.0);
        assert_eq!(d.get(3.0), Some(0));
        assert_eq!(d.get(4.0), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn zero_rejected() {
        ValueDict::new().intern(0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        ValueDict::new().intern(f64::NAN);
    }

    #[test]
    fn negative_values_distinct() {
        let mut d = ValueDict::new();
        let a = d.intern(1.0);
        let b = d.intern(-1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn first_seen_ordering() {
        let mut d = ValueDict::new();
        for (i, v) in [9.0, 7.0, 8.0].iter().enumerate() {
            assert_eq!(d.intern(*v), i as u32);
        }
        assert_eq!(d.values(), &[9.0, 7.0, 8.0]);
    }
}
