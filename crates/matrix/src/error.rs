//! Error type shared by the matrix formats.

use std::fmt;

/// Errors raised by matrix construction, conversion, and IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Vector or matrix dimensions do not agree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
        /// Human-readable description of the dimension.
        what: &'static str,
    },
    /// The CSRV symbol alphabet `1 + |V|·m` does not fit in a `u32`.
    SymbolOverflow {
        /// Number of distinct non-zero values.
        distinct_values: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A triplet addressed a cell outside the matrix.
    IndexOutOfBounds {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
        /// Matrix rows.
        rows: usize,
        /// Matrix columns.
        cols: usize,
    },
    /// Malformed textual input.
    Parse(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { expected, actual, what } => {
                write!(f, "dimension mismatch: {what} expected {expected}, got {actual}")
            }
            MatrixError::SymbolOverflow { distinct_values, cols } => write!(
                f,
                "CSRV symbol alphabet overflow: {distinct_values} distinct values x {cols} columns exceeds u32"
            ),
            MatrixError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "index ({row},{col}) out of bounds for {rows}x{cols} matrix")
            }
            MatrixError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::DimensionMismatch {
            expected: 3,
            actual: 5,
            what: "x length",
        };
        assert!(e.to_string().contains("expected 3"));
        let e = MatrixError::SymbolOverflow {
            distinct_values: 1 << 30,
            cols: 1 << 10,
        };
        assert!(e.to_string().contains("overflow"));
    }
}
