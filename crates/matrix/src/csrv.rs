//! The Compressed Sparse Row/Value (CSRV) representation (§2, §4).
//!
//! `(S, V)`: `V` lists the distinct non-zero values; `S` is the row-major
//! stream of `⟨value-id, column⟩` pairs, closed by a `$` separator after
//! each row (so `|S| = t + n` for `t` non-zeroes and `n` rows). Following
//! §4, `S` is materialised as 32-bit symbols:
//!
//! * `$` is the integer `0`,
//! * the pair `⟨ℓ, j⟩` is the integer `1 + ℓ·m + j` (`m` = columns).
//!
//! This exact `u32` alphabet is what the RePair compressor consumes, and
//! both multiplication kernels of §2 run off a single scan of `S`.

use std::sync::Arc;

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::dict::ValueDict;
use crate::error::MatrixError;
use gcm_encodings::HeapSize;

/// The row separator symbol `$`.
pub const SEPARATOR: u32 = 0;

/// Encodes/decodes `⟨value-id, column⟩` pairs into the `u32` symbol space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolCodec {
    cols: u32,
}

impl SymbolCodec {
    /// A codec for matrices with `cols` columns.
    ///
    /// # Panics
    /// Panics if `cols == 0`.
    pub fn new(cols: usize) -> Self {
        assert!(cols > 0, "matrix must have at least one column");
        Self {
            cols: u32::try_from(cols).expect("too many columns"),
        }
    }

    /// Encodes pair `⟨value_idx, col⟩` as `1 + value_idx·m + col`.
    ///
    /// # Errors
    /// Fails if the symbol would overflow `u32`.
    #[inline]
    pub fn encode(&self, value_idx: u32, col: u32) -> Result<u32, MatrixError> {
        debug_assert!(col < self.cols);
        let s = 1u64 + value_idx as u64 * self.cols as u64 + col as u64;
        u32::try_from(s).map_err(|_| MatrixError::SymbolOverflow {
            distinct_values: value_idx as usize + 1,
            cols: self.cols as usize,
        })
    }

    /// Decodes a non-separator symbol back to `(value_idx, col)`.
    #[inline]
    pub fn decode(&self, sym: u32) -> (u32, u32) {
        debug_assert_ne!(sym, SEPARATOR, "cannot decode the separator");
        let p = sym - 1;
        (p / self.cols, p % self.cols)
    }

    /// Number of columns the codec was built for.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Exclusive upper bound of the terminal alphabet: every symbol of `S`
    /// is `< terminal_limit`. Nonterminal ids live above this bound.
    #[inline]
    pub fn terminal_limit(&self, distinct_values: usize) -> u32 {
        1 + distinct_values as u32 * self.cols
    }
}

/// A matrix in CSRV form.
///
/// The value dictionary is behind an [`Arc`] so row blocks (§4.1) can share
/// a single copy, exactly as in the paper ("the value array V is unique and
/// shared by all matrix blocks").
#[derive(Debug, Clone)]
pub struct CsrvMatrix {
    rows: usize,
    cols: usize,
    values: Arc<Vec<f64>>,
    symbols: Vec<u32>,
    nnz: usize,
}

impl CsrvMatrix {
    /// Builds CSRV from a dense matrix.
    ///
    /// # Errors
    /// Fails if `|V|·m` overflows the 32-bit symbol space.
    pub fn from_dense(m: &DenseMatrix) -> Result<Self, MatrixError> {
        let mut dict = ValueDict::new();
        let mut symbols = Vec::new();
        let codec = SymbolCodec::new(m.cols().max(1));
        let mut nnz = 0usize;
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    let l = dict.intern(v);
                    symbols.push(codec.encode(l, c as u32)?);
                    nnz += 1;
                }
            }
            symbols.push(SEPARATOR);
        }
        Ok(Self {
            rows: m.rows(),
            cols: m.cols(),
            values: Arc::new(dict.into_values()),
            symbols,
            nnz,
        })
    }

    /// Builds CSRV from CSR.
    ///
    /// # Errors
    /// Fails if `|V|·m` overflows the 32-bit symbol space.
    pub fn from_csr(m: &CsrMatrix) -> Result<Self, MatrixError> {
        let mut dict = ValueDict::new();
        let mut symbols = Vec::with_capacity(m.nnz() + m.rows());
        let codec = SymbolCodec::new(m.cols().max(1));
        for r in 0..m.rows() {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let l = dict.intern(v);
                symbols.push(codec.encode(l, c)?);
            }
            symbols.push(SEPARATOR);
        }
        Ok(Self {
            rows: m.rows(),
            cols: m.cols(),
            values: Arc::new(dict.into_values()),
            symbols,
            nnz: m.nnz(),
        })
    }

    /// Reassembles a CSRV matrix from parts (used by the block splitter and
    /// by generators that produce the symbol stream directly).
    ///
    /// # Panics
    /// Panics (in debug) if the separator count does not match `rows`.
    pub fn from_parts(rows: usize, cols: usize, values: Arc<Vec<f64>>, symbols: Vec<u32>) -> Self {
        debug_assert_eq!(
            symbols.iter().filter(|&&s| s == SEPARATOR).count(),
            rows,
            "separator count must equal row count"
        );
        let nnz = symbols.len() - rows;
        Self {
            rows,
            cols,
            values,
            symbols,
            nnz,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zero entries (`t`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The shared value dictionary `V`.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A clone of the shared dictionary handle.
    pub fn values_arc(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.values)
    }

    /// The symbol stream `S` (`|S| = t + n`).
    #[inline]
    pub fn symbols(&self) -> &[u32] {
        &self.symbols
    }

    /// The pair codec for this matrix.
    #[inline]
    pub fn codec(&self) -> SymbolCodec {
        SymbolCodec::new(self.cols.max(1))
    }

    /// Exclusive upper bound of the terminal alphabet.
    pub fn terminal_limit(&self) -> u32 {
        self.codec().terminal_limit(self.values.len())
    }

    /// The paper's csrv size: `4·|S| + 8·|V|` bytes.
    pub fn csrv_bytes(&self) -> usize {
        self.symbols.len() * 4 + self.values.len() * 8
    }

    /// Iterates over rows as symbol slices (separator excluded).
    pub fn row_slices(&self) -> RowSlices<'_> {
        RowSlices {
            symbols: &self.symbols,
            pos: 0,
        }
    }

    /// Right multiplication `y = M·x` by a single scan of `S` (§2).
    ///
    /// # Errors
    /// Fails on dimension mismatch.
    pub fn right_multiply(&self, x: &[f64], y: &mut [f64]) -> Result<(), MatrixError> {
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                what: "x length",
            });
        }
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        let m = self.cols as u32;
        let values = &self.values[..];
        let mut r = 0usize;
        let mut acc = 0.0f64;
        for &s in &self.symbols {
            if s == SEPARATOR {
                y[r] = acc;
                acc = 0.0;
                r += 1;
            } else {
                let p = s - 1;
                let (l, j) = (p / m, p % m);
                acc += values[l as usize] * x[j as usize];
            }
        }
        Ok(())
    }

    /// Left multiplication `xᵗ = yᵗ·M` by a single scan of `S` (§2).
    ///
    /// # Errors
    /// Fails on dimension mismatch.
    pub fn left_multiply(&self, y: &[f64], x: &mut [f64]) -> Result<(), MatrixError> {
        if y.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y.len(),
                what: "y length",
            });
        }
        if x.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                what: "x length",
            });
        }
        x.fill(0.0);
        let m = self.cols as u32;
        let values = &self.values[..];
        let mut r = 0usize;
        for &s in &self.symbols {
            if s == SEPARATOR {
                r += 1;
            } else {
                let p = s - 1;
                let (l, j) = (p / m, p % m);
                x[j as usize] += y[r] * values[l as usize];
            }
        }
        Ok(())
    }

    /// Batched right multiplication `Y = M·X` for `k` right-hand sides in
    /// one scan of `S`.
    ///
    /// `x_panel` is the row-major `cols × k` panel (row `j` holds the `k`
    /// values of input coordinate `j`); `y_panel` is the row-major
    /// `rows × k` output panel. One traversal of the symbol stream serves
    /// the whole batch, which is what makes batching profitable.
    ///
    /// # Errors
    /// Fails if the panel lengths do not match `cols·k` / `rows·k`.
    pub fn right_multiply_panel(
        &self,
        x_panel: &[f64],
        y_panel: &mut [f64],
        k: usize,
    ) -> Result<(), MatrixError> {
        if x_panel.len() != self.cols * k {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols * k,
                actual: x_panel.len(),
                what: "x panel length",
            });
        }
        if y_panel.len() != self.rows * k {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows * k,
                actual: y_panel.len(),
                what: "y panel length",
            });
        }
        y_panel.fill(0.0);
        if k == 0 {
            return Ok(());
        }
        let m = self.cols as u32;
        let values = &self.values[..];
        let mut r = 0usize;
        for &s in &self.symbols {
            if s == SEPARATOR {
                r += 1;
            } else {
                let p = s - 1;
                let (l, j) = ((p / m) as usize, (p % m) as usize);
                let v = values[l];
                let src = &x_panel[j * k..(j + 1) * k];
                let dst = &mut y_panel[r * k..(r + 1) * k];
                for (d, &xv) in dst.iter_mut().zip(src) {
                    *d += v * xv;
                }
            }
        }
        Ok(())
    }

    /// Batched left multiplication `X = Mᵗ·Y` for `k` left-hand sides in
    /// one scan of `S` (panels as in
    /// [`right_multiply_panel`](Self::right_multiply_panel), with
    /// `y_panel` the `rows × k` input and `x_panel` the `cols × k`
    /// output).
    ///
    /// # Errors
    /// Fails if the panel lengths do not match `rows·k` / `cols·k`.
    pub fn left_multiply_panel(
        &self,
        y_panel: &[f64],
        x_panel: &mut [f64],
        k: usize,
    ) -> Result<(), MatrixError> {
        if y_panel.len() != self.rows * k {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows * k,
                actual: y_panel.len(),
                what: "y panel length",
            });
        }
        if x_panel.len() != self.cols * k {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols * k,
                actual: x_panel.len(),
                what: "x panel length",
            });
        }
        x_panel.fill(0.0);
        if k == 0 {
            return Ok(());
        }
        let m = self.cols as u32;
        let values = &self.values[..];
        let mut r = 0usize;
        for &s in &self.symbols {
            if s == SEPARATOR {
                r += 1;
            } else {
                let p = s - 1;
                let (l, j) = ((p / m) as usize, (p % m) as usize);
                let v = values[l];
                let src = &y_panel[r * k..(r + 1) * k];
                let dst = &mut x_panel[j * k..(j + 1) * k];
                for (d, &yv) in dst.iter_mut().zip(src) {
                    *d += v * yv;
                }
            }
        }
        Ok(())
    }

    /// Reorders the pairs of every row so columns appear in the order given
    /// by `order` (new position `k` holds old column `order[k]`).
    ///
    /// Per the paper (§3.2, footnote 2), pairs keep their *original* column
    /// index, so the multiplication algorithms are unaffected; only the
    /// adjacency structure seen by the grammar compressor changes.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..cols`.
    pub fn with_column_order(&self, order: &[usize]) -> Self {
        assert_eq!(order.len(), self.cols, "order length");
        let mut rank = vec![usize::MAX; self.cols];
        for (pos, &c) in order.iter().enumerate() {
            assert!(
                c < self.cols && rank[c] == usize::MAX,
                "order is not a permutation"
            );
            rank[c] = pos;
        }
        let m = self.cols as u32;
        let mut symbols = Vec::with_capacity(self.symbols.len());
        let mut row_buf: Vec<(usize, u32)> = Vec::new();
        for &s in &self.symbols {
            if s == SEPARATOR {
                row_buf.sort_by_key(|&(rk, _)| rk);
                symbols.extend(row_buf.iter().map(|&(_, sym)| sym));
                row_buf.clear();
                symbols.push(SEPARATOR);
            } else {
                let j = (s - 1) % m;
                row_buf.push((rank[j as usize], s));
            }
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            values: Arc::clone(&self.values),
            symbols,
            nnz: self.nnz,
        }
    }

    /// Converts back to dense (testing convenience).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        let codec = self.codec();
        let mut r = 0usize;
        for &s in &self.symbols {
            if s == SEPARATOR {
                r += 1;
            } else {
                let (l, j) = codec.decode(s);
                out.set(r, j as usize, self.values[l as usize]);
            }
        }
        out
    }
}

impl HeapSize for CsrvMatrix {
    fn heap_bytes(&self) -> usize {
        self.symbols.heap_bytes() + self.values.heap_bytes()
    }
}

/// Iterator over row slices of `S` (separator excluded), returned by
/// [`CsrvMatrix::row_slices`].
#[derive(Debug, Clone)]
pub struct RowSlices<'a> {
    symbols: &'a [u32],
    pos: usize,
}

impl<'a> Iterator for RowSlices<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.pos >= self.symbols.len() {
            return None;
        }
        let start = self.pos;
        let mut end = self.pos;
        while self.symbols[end] != SEPARATOR {
            end += 1;
        }
        self.pos = end + 1;
        Some(&self.symbols[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The matrix of Figure 1.
    fn fig1() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.2, 3.4, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 1.7],
            &[1.2, 3.4, 2.3, 4.5, 0.0],
            &[3.4, 0.0, 5.6, 0.0, 2.3],
            &[2.3, 0.0, 2.3, 4.5, 0.0],
            &[1.2, 3.4, 2.3, 4.5, 3.4],
        ])
    }

    #[test]
    fn codec_roundtrip() {
        let codec = SymbolCodec::new(5);
        for l in 0..10u32 {
            for j in 0..5u32 {
                let s = codec.encode(l, j).unwrap();
                assert_ne!(s, SEPARATOR);
                assert_eq!(codec.decode(s), (l, j));
            }
        }
    }

    #[test]
    fn codec_overflow_detected() {
        let codec = SymbolCodec::new(1 << 20);
        assert!(codec.encode(1 << 13, 0).is_err());
    }

    #[test]
    fn fig1_stream_shape() {
        let m = fig1();
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        // t = 23 non-zeroes + n = 6 separators.
        assert_eq!(csrv.symbols().len(), 23 + 6);
        assert_eq!(csrv.nnz(), 23);
        // V has 6 distinct non-zeroes: 1.2 3.4 5.6 2.3 4.5 1.7.
        assert_eq!(csrv.values().len(), 6);
        // Same value in different columns gets different symbols; same
        // value in the same column always the same symbol (paper, Fig. 1).
        let codec = csrv.codec();
        let rows: Vec<&[u32]> = csrv.row_slices().collect();
        assert_eq!(rows.len(), 6);
        // 2.3 appears in column 0 of rows 1 and 4: same symbol.
        let s_r1c0 = rows[1][0];
        let s_r4c0 = rows[4][0];
        assert_eq!(s_r1c0, s_r4c0);
        // 2.3 in column 2 of row 1 is a different symbol.
        let s_r1c2 = rows[1][1];
        assert_ne!(s_r1c0, s_r1c2);
        assert_eq!(codec.decode(s_r1c0).0, codec.decode(s_r1c2).0);
    }

    #[test]
    fn dense_roundtrip() {
        let m = fig1();
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        assert_eq!(csrv.to_dense(), m);
    }

    #[test]
    fn csr_and_dense_paths_agree() {
        let m = fig1();
        let via_csr = CsrvMatrix::from_csr(&CsrMatrix::from_dense(&m)).unwrap();
        let direct = CsrvMatrix::from_dense(&m).unwrap();
        assert_eq!(via_csr.symbols(), direct.symbols());
        assert_eq!(via_csr.values(), direct.values());
    }

    #[test]
    fn right_multiply_matches_dense() {
        let m = fig1();
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let x = [1.0, -0.5, 2.0, 0.25, 3.0];
        let mut y_d = vec![0.0; 6];
        let mut y_c = vec![0.0; 6];
        m.right_multiply(&x, &mut y_d).unwrap();
        csrv.right_multiply(&x, &mut y_c).unwrap();
        for (a, b) in y_d.iter().zip(&y_c) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn left_multiply_matches_dense() {
        let m = fig1();
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let y = [1.0, 2.0, -1.0, 0.0, 0.5, 1.5];
        let mut x_d = vec![0.0; 5];
        let mut x_c = vec![0.0; 5];
        m.left_multiply(&y, &mut x_d).unwrap();
        csrv.left_multiply(&y, &mut x_c).unwrap();
        for (a, b) in x_d.iter().zip(&x_c) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rows_are_just_separators() {
        let m = DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 0.0]]);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        assert_eq!(csrv.symbols().len(), 1 + 3);
        let rows: Vec<&[u32]> = csrv.row_slices().collect();
        assert!(rows[0].is_empty());
        assert_eq!(rows[1].len(), 1);
        assert!(rows[2].is_empty());
        assert_eq!(csrv.to_dense(), m);
    }

    #[test]
    fn all_zero_matrix() {
        let m = DenseMatrix::zeros(4, 3);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        assert_eq!(csrv.nnz(), 0);
        assert!(csrv.values().is_empty());
        let mut y = vec![1.0; 4];
        csrv.right_multiply(&[1.0, 1.0, 1.0], &mut y).unwrap();
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn column_reorder_preserves_multiplication() {
        let m = fig1();
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let reordered = csrv.with_column_order(&[4, 2, 0, 1, 3]);
        // Same symbols, possibly different order within rows.
        assert_eq!(reordered.symbols().len(), csrv.symbols().len());
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y_a = vec![0.0; 6];
        let mut y_b = vec![0.0; 6];
        csrv.right_multiply(&x, &mut y_a).unwrap();
        reordered.right_multiply(&x, &mut y_b).unwrap();
        assert_eq!(y_a, y_b);
        assert_eq!(reordered.to_dense(), m);
    }

    #[test]
    fn column_reorder_changes_pair_order() {
        let m = fig1();
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let reordered = csrv.with_column_order(&[4, 3, 2, 1, 0]);
        let first_row: Vec<u32> = reordered.row_slices().next().unwrap().to_vec();
        let codec = csrv.codec();
        let cols: Vec<u32> = first_row.iter().map(|&s| codec.decode(s).1).collect();
        assert_eq!(cols, vec![4, 2, 1, 0]); // descending original columns
    }

    #[test]
    fn csrv_bytes_formula() {
        let csrv = CsrvMatrix::from_dense(&fig1()).unwrap();
        assert_eq!(csrv.csrv_bytes(), 29 * 4 + 6 * 8);
    }

    #[test]
    fn multiply_dimension_checks() {
        let csrv = CsrvMatrix::from_dense(&fig1()).unwrap();
        let mut y = vec![0.0; 6];
        assert!(csrv.right_multiply(&[0.0; 3], &mut y).is_err());
        let mut x = vec![0.0; 5];
        assert!(csrv.left_multiply(&[0.0; 2], &mut x).is_err());
    }
}
