//! Multi-threaded CSRV multiplication (the paper's `csrv 16 threads`
//! column in Table 2): plain row-block parallelism over the uncompressed
//! CSRV representation.
//!
//! Promoted out of the benchmark harness so library users get the
//! parallel uncompressed baseline. Multiplications run on the persistent
//! global pool (no per-call thread spawn) and draw their per-block
//! partial vectors from the caller's [`Workspace`], so a steady-state
//! loop reuses both threads and buffers across calls.

use crate::csrv::CsrvMatrix;
use crate::dense::DenseMatrix;
use crate::error::MatrixError;
use crate::matvec::{check_left_batch, check_panels, check_right_batch, MatVec};
use crate::workspace::Workspace;
use crate::RowBlocks;

/// A CSRV matrix partitioned into row blocks, multiplied with the
/// persistent pool (one task per block).
#[derive(Debug, Clone)]
pub struct ParallelCsrv {
    blocks: Vec<CsrvMatrix>,
    row_offsets: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl ParallelCsrv {
    /// Splits `matrix` into `b` row blocks.
    pub fn split(matrix: &CsrvMatrix, b: usize) -> Self {
        let parts = RowBlocks::split(matrix, b);
        let row_offsets = (0..parts.len()).map(|i| parts.row_offset(i)).collect();
        Self {
            blocks: parts.blocks().to_vec(),
            row_offsets,
            rows: matrix.rows(),
            cols: matrix.cols(),
        }
    }

    /// The row blocks.
    pub fn blocks(&self) -> &[CsrvMatrix] {
        &self.blocks
    }

    /// Number of row blocks (= pool tasks per multiplication).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Reassembles the underlying whole CSRV matrix by concatenating the
    /// block symbol streams (the blocks share one value dictionary).
    /// Serialisation support: the model store persists the whole matrix
    /// plus the block count, and rebuilds with [`split`](Self::split).
    pub fn to_csrv(&self) -> CsrvMatrix {
        let values = self
            .blocks
            .first()
            .map_or_else(|| std::sync::Arc::new(Vec::new()), |b| b.values_arc());
        let mut symbols = Vec::with_capacity(self.blocks.iter().map(|b| b.symbols().len()).sum());
        for b in &self.blocks {
            symbols.extend_from_slice(b.symbols());
        }
        CsrvMatrix::from_parts(self.rows, self.cols, values, symbols)
    }

    /// Total bytes of the representation (dictionary counted once).
    pub fn stored_bytes(&self) -> usize {
        let values = self.blocks.first().map_or(0, |b| b.values().len() * 8);
        self.blocks
            .iter()
            .map(|b| b.symbols().len() * 4)
            .sum::<usize>()
            + values
    }

    /// Working space of one multiplication with batch width `k`: a
    /// partial `cols × k` output panel per concurrently-running block
    /// (the left multiplication's reduction inputs; the right
    /// multiplication writes disjoint slices and needs none).
    pub fn working_bytes_for_batch(&self, k: usize) -> usize {
        self.blocks.len() * self.cols * 8 * k.max(1)
    }

    /// Working space of the parallel left multiplication (`k = 1`): one
    /// partial `x` per block.
    pub fn working_bytes(&self) -> usize {
        self.working_bytes_for_batch(1)
    }

    /// Shared implementation of the (batched) right product: hands each
    /// block its disjoint chunk of the `rows × k` output panel.
    fn right_panel_into(&self, x_panel: &[f64], y_panel: &mut [f64], k: usize) {
        let mut tasks: Vec<(&CsrvMatrix, &mut [f64])> = Vec::with_capacity(self.blocks.len());
        let mut rest = y_panel;
        for block in &self.blocks {
            let (head, tail) = rest.split_at_mut(block.rows() * k);
            tasks.push((block, head));
            rest = tail;
        }
        rayon::scope(|scope| {
            for (block, slice) in tasks {
                scope.spawn(move |_| {
                    block
                        .right_multiply_panel(x_panel, slice, k)
                        .expect("block dimensions are consistent by construction");
                });
            }
        });
    }

    /// Shared implementation of the (batched) left product: each block
    /// fills a partial `cols × k` panel from the workspace, then the
    /// partials are reduced into `x_panel`.
    fn left_panel_into(&self, y_panel: &[f64], x_panel: &mut [f64], k: usize, ws: &mut Workspace) {
        let mut partials: Vec<Vec<f64>> =
            self.blocks.iter().map(|_| ws.take(self.cols * k)).collect();
        rayon::scope(|scope| {
            for ((i, block), part) in self.blocks.iter().enumerate().zip(partials.iter_mut()) {
                let off = self.row_offsets[i] * k;
                let y_slice = &y_panel[off..off + block.rows() * k];
                scope.spawn(move |_| {
                    block
                        .left_multiply_panel(y_slice, part, k)
                        .expect("block dimensions are consistent by construction");
                });
            }
        });
        x_panel.fill(0.0);
        for part in partials {
            for (acc, &p) in x_panel.iter_mut().zip(&part) {
                *acc += p;
            }
            ws.put(part);
        }
    }

    /// Batched right product over explicit row-major `k`-wide panel
    /// slices (`x_panel` is `cols × k`, `y_panel` is `rows × k`): the
    /// serve-layer entry point, which hands shards raw sub-panels of a
    /// larger output without wrapping them in a `DenseMatrix`.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn right_multiply_panel_into(
        &self,
        k: usize,
        x_panel: &[f64],
        y_panel: &mut [f64],
    ) -> Result<(), MatrixError> {
        check_panels(self.rows, self.cols, k, x_panel.len(), y_panel.len())?;
        if k > 0 {
            self.right_panel_into(x_panel, y_panel, k);
        }
        Ok(())
    }

    /// Batched left product over explicit row-major panel slices
    /// (`y_panel` is `rows × k`, `x_panel` is `cols × k`), drawing the
    /// per-block partial panels from `ws`.
    ///
    /// # Errors
    /// Fails if either panel length is inconsistent with `k`.
    pub fn left_multiply_panel_into(
        &self,
        k: usize,
        y_panel: &[f64],
        x_panel: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_panels(self.rows, self.cols, k, x_panel.len(), y_panel.len())?;
        if k > 0 {
            self.left_panel_into(y_panel, x_panel, k, ws);
        }
        Ok(())
    }

    fn check_vectors(&self, x_len: usize, y_len: usize) -> Result<(), MatrixError> {
        if x_len != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: x_len,
                what: "x length",
            });
        }
        if y_len != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: self.rows,
                actual: y_len,
                what: "y length",
            });
        }
        Ok(())
    }
}

impl MatVec for ParallelCsrv {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn right_multiply_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.check_vectors(x.len(), y.len())?;
        self.right_panel_into(x, y, 1);
        Ok(())
    }

    fn left_multiply_into(
        &self,
        y: &[f64],
        x: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        self.check_vectors(x.len(), y.len())?;
        self.left_panel_into(y, x, 1, ws);
        Ok(())
    }

    fn right_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        _ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_right_batch(self.rows, self.cols, b, out)?;
        self.right_panel_into(b.as_slice(), out.as_mut_slice(), b.cols());
        Ok(())
    }

    fn left_multiply_matrix_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<(), MatrixError> {
        check_left_batch(self.rows, self.cols, b, out)?;
        if b.cols() == 0 {
            return Ok(());
        }
        self.left_panel_into(b.as_slice(), out.as_mut_slice(), b.cols(), ws);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DenseMatrix, CsrvMatrix) {
        let mut dense = DenseMatrix::zeros(57, 7);
        for r in 0..57 {
            for c in 0..7 {
                if (r + c) % 3 != 0 {
                    dense.set(r, c, ((r * c) % 5 + 1) as f64);
                }
            }
        }
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        (dense, csrv)
    }

    #[test]
    fn parallel_csrv_matches_sequential() {
        let (_, csrv) = sample();
        let par = ParallelCsrv::split(&csrv, 4);
        let x: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut y_ref = vec![0.0; 57];
        let mut y = vec![0.0; 57];
        csrv.right_multiply(&x, &mut y_ref).unwrap();
        par.right_multiply(&x, &mut y).unwrap();
        assert_eq!(y_ref, y);

        let yv: Vec<f64> = (0..57).map(|i| (i % 4) as f64).collect();
        let mut x_ref = vec![0.0; 7];
        let mut xo = vec![0.0; 7];
        csrv.left_multiply(&yv, &mut x_ref).unwrap();
        par.left_multiply(&yv, &mut xo).unwrap();
        for (a, b) in x_ref.iter().zip(&xo) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_matches_column_loop() {
        let (dense, csrv) = sample();
        let par = ParallelCsrv::split(&csrv, 5);
        let k = 4;
        let mut b = DenseMatrix::zeros(7, k);
        for i in 0..7 {
            for j in 0..k {
                b.set(i, j, (i * k + j) as f64 * 0.25 - 2.0);
            }
        }
        let want = dense.right_multiply_matrix(&b).unwrap();
        let got = par.right_multiply_matrix(&b).unwrap();
        for i in 0..57 {
            for j in 0..k {
                assert!((got.get(i, j) - want.get(i, j)).abs() < 1e-9);
            }
        }

        let mut by = DenseMatrix::zeros(57, k);
        for i in 0..57 {
            for j in 0..k {
                by.set(i, j, ((i + j) % 5) as f64 - 2.0);
            }
        }
        let want = dense.left_multiply_matrix(&by).unwrap();
        let got = par.left_multiply_matrix(&by).unwrap();
        for i in 0..7 {
            for j in 0..k {
                assert!((got.get(i, j) - want.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn working_bytes_scales_with_batch() {
        let (_, csrv) = sample();
        let par = ParallelCsrv::split(&csrv, 4);
        assert_eq!(par.working_bytes(), par.working_bytes_for_batch(1));
        assert_eq!(par.working_bytes_for_batch(8), 8 * par.working_bytes());
    }

    #[test]
    fn dimension_checks() {
        let (_, csrv) = sample();
        let par = ParallelCsrv::split(&csrv, 4);
        let mut y = vec![0.0; 57];
        assert!(par.right_multiply(&[0.0; 3], &mut y).is_err());
        let mut x = vec![0.0; 7];
        assert!(par.left_multiply(&[0.0; 3], &mut x).is_err());
        // Panel entry points validate too.
        let mut yp = vec![0.0; 57 * 2];
        assert!(par
            .right_multiply_panel_into(2, &[0.0; 7], &mut yp)
            .is_err());
        let mut ws = Workspace::new();
        let mut xp = vec![0.0; 7 * 2];
        assert!(par
            .left_multiply_panel_into(2, &[0.0; 57], &mut xp, &mut ws)
            .is_err());
    }

    #[test]
    fn to_csrv_reassembles_the_original() {
        let (dense, csrv) = sample();
        for b in [1usize, 3, 5, 57, 100] {
            let par = ParallelCsrv::split(&csrv, b);
            assert_eq!(par.num_blocks(), b.min(57));
            let back = par.to_csrv();
            assert_eq!(back.rows(), csrv.rows());
            assert_eq!(back.cols(), csrv.cols());
            assert_eq!(back.symbols(), csrv.symbols());
            assert_eq!(back.values(), csrv.values());
            assert_eq!(back.to_dense(), dense);
        }
    }

    #[test]
    fn panel_entry_points_match_dense() {
        let (dense, csrv) = sample();
        let par = ParallelCsrv::split(&csrv, 3);
        let k = 3;
        let b: Vec<f64> = (0..7 * k).map(|i| (i % 11) as f64 * 0.5 - 2.0).collect();
        let mut y = vec![0.0; 57 * k];
        par.right_multiply_panel_into(k, &b, &mut y).unwrap();
        let bm = DenseMatrix::from_vec(7, k, b).unwrap();
        let want = dense.right_multiply_matrix(&bm).unwrap();
        for (a, w) in y.iter().zip(want.as_slice()) {
            assert!((a - w).abs() < 1e-9);
        }

        let by: Vec<f64> = (0..57 * k).map(|i| ((i + 2) % 5) as f64 - 2.0).collect();
        let mut x = vec![0.0; 7 * k];
        let mut ws = Workspace::new();
        par.left_multiply_panel_into(k, &by, &mut x, &mut ws)
            .unwrap();
        let bym = DenseMatrix::from_vec(57, k, by).unwrap();
        let want = dense.left_multiply_matrix(&bym).unwrap();
        for (a, w) in x.iter().zip(want.as_slice()) {
            assert!((a - w).abs() < 1e-9);
        }
    }
}
