//! Row-block partitioning for multi-threaded operation (§4.1).
//!
//! A `r × c` matrix is split into `b` blocks of `⌈r/b⌉` consecutive rows
//! (the last block may be shorter). Each block is an independent
//! [`CsrvMatrix`] sharing the single value dictionary `V`, so each can be
//! grammar-compressed and multiplied independently.

use crate::csrv::{CsrvMatrix, SEPARATOR};

/// A partition of a CSRV matrix into consecutive row blocks.
#[derive(Debug, Clone)]
pub struct RowBlocks {
    blocks: Vec<CsrvMatrix>,
    /// Starting row of each block in the original matrix.
    row_offsets: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl RowBlocks {
    /// Splits `matrix` into `b` row blocks (`b >= 1`).
    ///
    /// # Panics
    /// Panics if `b == 0`.
    pub fn split(matrix: &CsrvMatrix, b: usize) -> Self {
        assert!(b > 0, "at least one block required");
        let rows = matrix.rows();
        let cols = matrix.cols();
        let per_block = rows.div_ceil(b).max(1);
        let values = matrix.values_arc();
        let symbols = matrix.symbols();

        let mut blocks = Vec::new();
        let mut row_offsets = Vec::new();
        let mut row = 0usize;
        let mut pos = 0usize;
        while row < rows {
            let block_rows = per_block.min(rows - row);
            let start = pos;
            let mut seps = 0usize;
            while seps < block_rows {
                if symbols[pos] == SEPARATOR {
                    seps += 1;
                }
                pos += 1;
            }
            blocks.push(CsrvMatrix::from_parts(
                block_rows,
                cols,
                std::sync::Arc::clone(&values),
                symbols[start..pos].to_vec(),
            ));
            row_offsets.push(row);
            row += block_rows;
        }
        if blocks.is_empty() {
            // Degenerate zero-row matrix: keep a single empty block so
            // callers can treat the partition uniformly.
            blocks.push(CsrvMatrix::from_parts(0, cols, values, Vec::new()));
            row_offsets.push(0);
        }
        Self {
            blocks,
            row_offsets,
            rows,
            cols,
        }
    }

    /// The blocks, in row order.
    pub fn blocks(&self) -> &[CsrvMatrix] {
        &self.blocks
    }

    /// Starting row of block `i`.
    pub fn row_offset(&self, i: usize) -> usize {
        self.row_offsets[i]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks (never true after `split`).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Iterate `(row_offset, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CsrvMatrix)> {
        self.row_offsets.iter().copied().zip(self.blocks.iter())
    }

    /// Consumes the partition, yielding the blocks in row order (the
    /// build pipeline hands each shard its block without cloning).
    pub fn into_blocks(self) -> Vec<CsrvMatrix> {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn sample(rows: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows, 4);
        for r in 0..rows {
            for c in 0..4 {
                if (r + c) % 3 != 0 {
                    m.set(r, c, ((r * 4 + c) % 7) as f64 + 0.5);
                }
            }
        }
        m
    }

    #[test]
    fn split_covers_all_rows() {
        let m = sample(10);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        for b in 1..=12 {
            let blocks = RowBlocks::split(&csrv, b);
            let total: usize = blocks.blocks().iter().map(|bl| bl.rows()).sum();
            assert_eq!(total, 10, "b = {b}");
            let total_nnz: usize = blocks.blocks().iter().map(|bl| bl.nnz()).sum();
            assert_eq!(total_nnz, csrv.nnz());
        }
    }

    #[test]
    fn blocks_share_value_dictionary() {
        let csrv = CsrvMatrix::from_dense(&sample(8)).unwrap();
        let blocks = RowBlocks::split(&csrv, 3);
        for bl in blocks.blocks() {
            assert!(std::ptr::eq(bl.values().as_ptr(), csrv.values().as_ptr()));
        }
    }

    #[test]
    fn blockwise_multiply_equals_whole() {
        let m = sample(17);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let x: Vec<f64> = (0..4).map(|i| i as f64 - 1.5).collect();
        let mut y_whole = vec![0.0; 17];
        csrv.right_multiply(&x, &mut y_whole).unwrap();

        let blocks = RowBlocks::split(&csrv, 4);
        let mut y_blocked = vec![0.0; 17];
        for (off, bl) in blocks.iter() {
            let mut part = vec![0.0; bl.rows()];
            bl.right_multiply(&x, &mut part).unwrap();
            y_blocked[off..off + bl.rows()].copy_from_slice(&part);
        }
        assert_eq!(y_whole, y_blocked);

        // Left multiplication: partial x vectors summed.
        let y: Vec<f64> = (0..17).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut x_whole = vec![0.0; 4];
        csrv.left_multiply(&y, &mut x_whole).unwrap();
        let mut x_blocked = vec![0.0; 4];
        for (off, bl) in blocks.iter() {
            let mut part = vec![0.0; 4];
            bl.left_multiply(&y[off..off + bl.rows()], &mut part)
                .unwrap();
            for (a, p) in x_blocked.iter_mut().zip(&part) {
                *a += p;
            }
        }
        for (a, b) in x_whole.iter().zip(&x_blocked) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn more_blocks_than_rows() {
        let csrv = CsrvMatrix::from_dense(&sample(3)).unwrap();
        let blocks = RowBlocks::split(&csrv, 16);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.blocks().iter().all(|b| b.rows() == 1));
    }

    #[test]
    fn single_block_is_identity() {
        let csrv = CsrvMatrix::from_dense(&sample(5)).unwrap();
        let blocks = RowBlocks::split(&csrv, 1);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.blocks()[0].symbols(), csrv.symbols());
    }

    #[test]
    fn empty_matrix_single_empty_block() {
        let m = DenseMatrix::zeros(0, 4);
        let csrv = CsrvMatrix::from_dense(&m).unwrap();
        let blocks = RowBlocks::split(&csrv, 4);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.blocks()[0].rows(), 0);
    }
}
