//! Matrix representations for grammar-compressed linear algebra.
//!
//! Implements §2 of the paper:
//!
//! * [`DenseMatrix`] — the uncompressed row-major baseline (8-byte doubles),
//!   whose size `rows × cols × 8` is the 100% reference in every table;
//! * [`CsrMatrix`] — classical compressed sparse row;
//! * [`CsrvMatrix`] — the paper's **Compressed Sparse Row/Value** format
//!   `(S, V)`: `V` holds the distinct non-zero values, `S` is the row-major
//!   stream of `⟨value-id, column⟩` pairs with a `$` separator closing each
//!   row. `S` is materialised as `u32` symbols (`$` = 0, pair = `1 + ℓ·m + j`,
//!   §4) — exactly the alphabet later fed to the RePair compressor;
//! * [`RowBlocks`] — the row-block partitioning used by the multi-threaded
//!   algorithms (§4.1), with all blocks sharing one value dictionary;
//! * [`ParallelCsrv`] — row-block parallel CSRV multiplication on the
//!   persistent thread pool (the paper's `csrv 16 threads` baseline).
//!
//! The [`MatVec`] trait is the repo-wide execution layer: its `*_into`
//! methods draw every scratch buffer from a caller-owned [`Workspace`]
//! (zero steady-state allocation) and its `*_multiply_matrix*` methods
//! compute batched multi-vector products `Y = M·X` / `X = Mᵗ·B`.
//! Parallel backends multiply on the persistent scoped pool of the
//! vendored `rayon` stand-in instead of spawning threads per call.

pub mod block;
pub mod csr;
pub mod csrv;
pub mod dense;
pub mod dict;
pub mod error;
pub mod io;
pub mod matvec;
pub mod parcsrv;
pub mod workspace;

pub use block::RowBlocks;
pub use csr::CsrMatrix;
pub use csrv::{CsrvMatrix, SymbolCodec, SEPARATOR};
pub use dense::DenseMatrix;
pub use dict::ValueDict;
pub use error::MatrixError;
pub use matvec::MatVec;
pub use parcsrv::ParallelCsrv;
pub use workspace::Workspace;
