//! Property-based tests of the RePair grammar invariants:
//!
//! * compression is lossless (`expand` reproduces the input exactly)
//!   under every configuration (rule caps, min pair counts, protected
//!   separators);
//! * every rule index is in bounds and references only earlier symbols,
//!   and protected separators never enter a rule;
//! * the `stats` accounting is exact: `grammar_size`, `expanded_len`,
//!   `max_symbol`, and the compression factor all match what the grammar
//!   actually contains — and the **byte accounting** matches the actual
//!   serialised container size (`stored_bytes` is exact for `re_32` and
//!   the GCMMAT1 container adds only bounded framing);
//! * the MR-RePair stage (`compress_mr`) obeys the same contract: the
//!   variable-arity grammar expands back to the input exactly under
//!   every configuration, every rule has arity ≥ 2 and references only
//!   earlier symbols, and the `re_32` byte accounting of an MR-built
//!   [`gcm_core::CompressedMatrix`] — binary pairs + `RuleExt` tails —
//!   is exact down to the varint tail-length bytes.

use proptest::prelude::*;

use gcm_repair::stats::{empirical_entropy, grammar_stats};
use gcm_repair::{RePair, RePairConfig, Slp};

/// Symbol streams in CSRV shape: terminals `1..alpha` with separator `0`
/// sprinkled in (weight 1 in 4).
fn csrv_like_stream() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        prop_oneof![
            1 => Just(0u32),
            3 => 1u32..14,
        ],
        0..400,
    )
}

fn configs() -> impl Strategy<Value = RePairConfig> {
    (0usize..40, 2u32..5).prop_map(|(max_rules, min_count)| RePairConfig {
        max_rules: if max_rules == 0 {
            None
        } else {
            Some(max_rules)
        },
        min_count,
    })
}

fn check_structure(slp: &Slp, protected: Option<u32>) -> Result<(), TestCaseError> {
    prop_assert!(slp.check_invariants().is_ok());
    let first_nt = slp.first_nonterminal();
    for (k, &(a, b)) in slp.rules().iter().enumerate() {
        let own = first_nt as u64 + k as u64;
        prop_assert!((a as u64) < own, "rule {k} lhs out of bounds");
        prop_assert!((b as u64) < own, "rule {k} rhs out of bounds");
    }
    if let Some(sep) = protected {
        prop_assert!(slp.rules_avoid_terminal(sep));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn expansion_is_the_identity_under_any_config(
        symbols in csrv_like_stream(),
        config in configs(),
    ) {
        let slp = RePair::with_config(config).compress(&symbols, 100, Some(0));
        prop_assert_eq!(slp.expand(), symbols.clone());
        check_structure(&slp, Some(0))?;
        if let Some(cap) = config.max_rules {
            prop_assert!(slp.num_rules() <= cap, "rule cap violated");
        }
        // expanded_len agrees with the materialised expansion.
        prop_assert_eq!(slp.expanded_len(), symbols.len());
    }

    #[test]
    fn unprotected_streams_roundtrip_too(
        symbols in proptest::collection::vec(0u32..25, 0..300),
    ) {
        let slp = RePair::new().compress(&symbols, 50, None);
        prop_assert_eq!(slp.expand(), symbols);
        check_structure(&slp, None)?;
    }

    #[test]
    fn stats_accounting_is_exact(symbols in csrv_like_stream()) {
        let slp = RePair::new().compress(&symbols, 100, Some(0));
        let st = grammar_stats(&slp);
        prop_assert_eq!(st.rules, slp.num_rules());
        prop_assert_eq!(st.sequence_len, slp.sequence().len());
        prop_assert_eq!(st.grammar_size, 2 * slp.num_rules() + slp.sequence().len());
        prop_assert_eq!(st.expanded_len, symbols.len());
        prop_assert_eq!(st.max_symbol, slp.max_symbol());
        if st.grammar_size > 0 {
            let expect = st.expanded_len as f64 / st.grammar_size as f64;
            prop_assert!((st.factor - expect).abs() < 1e-12);
        }
        // Entropy sanity: H_1 <= H_0, and both are finite.
        let h0 = empirical_entropy(&symbols, 0);
        let h1 = empirical_entropy(&symbols, 1);
        prop_assert!(h0.is_finite() && h1.is_finite());
        prop_assert!(h1 <= h0 + 1e-9);
    }

    /// The byte accounting must match what actually lands on disk: for
    /// `re_32`, `stored_bytes` is exactly `4·(2|R| + |C|) + 8·|V|`, and
    /// the GCMMAT1 container equals it plus only its small framing
    /// (magic, tag, dimension varints, length prefixes).
    #[test]
    fn stored_bytes_match_actual_serialised_size(
        (rows, cols) in (1usize..12, 1usize..8),
    ) {
        use gcm_core::{serial, CompressedMatrix, Encoding};
        use gcm_matrix::{CsrvMatrix, DenseMatrix};
        let mut dense = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * cols + c) % 3 != 0 {
                    dense.set(r, c, (((r + c) % 4) + 1) as f64);
                }
            }
        }
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        for enc in Encoding::ALL {
            let cm = CompressedMatrix::compress(&csrv, enc);
            let st = grammar_stats(
                &RePair::new().compress(csrv.symbols(), csrv.terminal_limit(), Some(0)),
            );
            if enc == Encoding::Re32 {
                // re_32 byte accounting must be exact.
                prop_assert_eq!(cm.stored_bytes(), 4 * st.grammar_size + 8 * cm.values().len());
            }
            let bytes = serial::to_bytes(&cm);
            prop_assert!(
                bytes.len() >= cm.stored_bytes(),
                "{}: container smaller than its accounted payload",
                enc.name()
            );
            prop_assert!(
                bytes.len() <= cm.stored_bytes() + 96,
                "{}: container framing exceeded 96 bytes ({} vs {})",
                enc.name(),
                bytes.len(),
                cm.stored_bytes()
            );
        }
    }

    #[test]
    fn mr_expansion_is_the_identity_under_any_config(
        symbols in csrv_like_stream(),
        config in configs(),
    ) {
        let mr = RePair::with_config(config).compress_mr(&symbols, 100, Some(0));
        prop_assert_eq!(mr.expand(), symbols.clone());
        prop_assert!(mr.check_invariants().is_ok(), "{:?}", mr.check_invariants());
        prop_assert!(mr.rules_avoid_terminal(0));
        prop_assert_eq!(mr.expanded_len(), symbols.len());
        if let Some(cap) = config.max_rules {
            prop_assert!(mr.num_rules() <= cap, "rule cap violated");
        }
        for k in 0..mr.num_rules() {
            prop_assert!(mr.rule(k).len() >= 2, "rule {k} has arity < 2");
        }
    }

    #[test]
    fn mr_unprotected_streams_roundtrip_too(
        symbols in proptest::collection::vec(0u32..25, 0..300),
    ) {
        let mr = RePair::new().compress_mr(&symbols, 50, None);
        prop_assert_eq!(mr.expand(), symbols);
        prop_assert!(mr.check_invariants().is_ok());
    }

    /// MR byte accounting down to the last varint: a `re_32` matrix
    /// built from an MR grammar stores the binary pairs and sequence as
    /// raw u32, values as f64, and the tails in a `RuleExt` whose size
    /// is recomputed here **independently** from the `MrSlp` arities.
    #[test]
    fn mr_stored_bytes_match_actual_serialised_size(
        (rows, cols) in (1usize..12, 1usize..8),
    ) {
        use gcm_core::{serial, CompressedMatrix, Encoding};
        use gcm_matrix::{CsrvMatrix, DenseMatrix};
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        let mut dense = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * cols + c) % 3 != 0 {
                    dense.set(r, c, (((r + c) % 4) + 1) as f64);
                }
            }
        }
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let mr = RePair::new().compress_mr(csrv.symbols(), csrv.terminal_limit(), Some(0));
        let q = mr.num_rules();
        let wide: Vec<usize> = (0..q).filter(|&k| mr.rule(k).len() > 2).collect();
        let tail_total: usize = wide.iter().map(|&k| mr.rule(k).len() - 2).sum();
        let tail_len_bytes: usize = wide
            .iter()
            .map(|&k| varint_len((mr.rule(k).len() - 2) as u64))
            .sum();
        for enc in Encoding::ALL {
            let cm = CompressedMatrix::from_mr_slp(&csrv, &mr, enc);
            prop_assert_eq!(cm.num_rules(), q);
            // Plan lowering turns each arity-p rule into p-1 chained
            // binary rules: q + total tail symbols, exactly.
            prop_assert_eq!(cm.lowered_rules(), q + tail_total);
            if enc == Encoding::Re32 {
                let ext_bytes = if wide.is_empty() {
                    0
                } else {
                    wide.len() * 4 + tail_len_bytes + tail_total * 4
                };
                prop_assert_eq!(
                    cm.stored_bytes(),
                    4 * (2 * q + mr.sequence().len()) + 8 * cm.values().len() + ext_bytes
                );
            }
            let bytes = serial::to_bytes(&cm);
            prop_assert!(
                bytes.len() >= cm.stored_bytes(),
                "{}: container smaller than its accounted payload",
                enc.name()
            );
            prop_assert!(
                bytes.len() <= cm.stored_bytes() + 96,
                "{}: container framing exceeded 96 bytes ({} vs {})",
                enc.name(),
                bytes.len(),
                cm.stored_bytes()
            );
        }
    }
}
