//! Straight-line programs: the output of grammar compression.

use gcm_encodings::HeapSize;

/// A straight-line program over a `u32` terminal alphabet.
///
/// * Terminals are the symbols `< first_nt`.
/// * Rule `k` defines nonterminal `first_nt + k` and rewrites to the two
///   symbols `rules[k]`; each may be a terminal or an *earlier* nonterminal
///   (so a single forward pass can evaluate all rules, Thm 3.4).
/// * `sequence` is the final string `C`. With RePair it may freely mix
///   terminals and nonterminals (§4: "RePair's final string is usually
///   longer and may even include terminals").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slp {
    first_nt: u32,
    rules: Vec<(u32, u32)>,
    sequence: Vec<u32>,
}

impl Slp {
    /// Assembles an SLP from parts.
    ///
    /// # Panics
    /// Panics if any rule references a symbol at or above its own id
    /// (which would break the forward-evaluation order), or if ids overflow.
    pub fn new(first_nt: u32, rules: Vec<(u32, u32)>, sequence: Vec<u32>) -> Self {
        let limit = first_nt as u64 + rules.len() as u64;
        assert!(limit <= u32::MAX as u64, "nonterminal ids overflow u32");
        for (k, &(a, b)) in rules.iter().enumerate() {
            let own = first_nt + k as u32;
            assert!(a < own && b < own, "rule {k} references a later symbol");
        }
        for &s in &sequence {
            assert!(
                (s as u64) < limit,
                "sequence references undefined symbol {s}"
            );
        }
        Self {
            first_nt,
            rules,
            sequence,
        }
    }

    /// First nonterminal id (= exclusive upper bound of the terminals).
    #[inline]
    pub fn first_nonterminal(&self) -> u32 {
        self.first_nt
    }

    /// The rule set `R`.
    #[inline]
    pub fn rules(&self) -> &[(u32, u32)] {
        &self.rules
    }

    /// The final string `C`.
    #[inline]
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Number of rules `|R|`.
    #[inline]
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Whether `s` is a terminal under this grammar.
    #[inline]
    pub fn is_terminal(&self, s: u32) -> bool {
        s < self.first_nt
    }

    /// Largest symbol id in use (`N_max` in the paper's `re_iv` encoding).
    pub fn max_symbol(&self) -> u32 {
        let from_rules = self.first_nt + self.rules.len() as u32;
        if self.rules.is_empty() {
            self.sequence.iter().copied().max().unwrap_or(0)
        } else {
            from_rules - 1
        }
    }

    /// The paper's grammar size measure: total length of rule right-hand
    /// sides plus the final string.
    pub fn grammar_size(&self) -> usize {
        2 * self.rules.len() + self.sequence.len()
    }

    /// Appends the expansion of `symbol` (terminal string) to `out`.
    ///
    /// Iterative with an explicit stack, so deep grammars cannot overflow
    /// the call stack.
    pub fn expand_symbol_into(&self, symbol: u32, out: &mut Vec<u32>) {
        let mut stack = vec![symbol];
        while let Some(s) = stack.pop() {
            if s < self.first_nt {
                out.push(s);
            } else {
                let (a, b) = self.rules[(s - self.first_nt) as usize];
                stack.push(b);
                stack.push(a);
            }
        }
    }

    /// Expansion of a single symbol as a fresh vector.
    pub fn expand_symbol(&self, symbol: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.expand_symbol_into(symbol, &mut out);
        out
    }

    /// Full expansion of the final string — the original input sequence.
    pub fn expand(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.expanded_len());
        for &s in &self.sequence {
            self.expand_symbol_into(s, &mut out);
        }
        out
    }

    /// Length of every nonterminal's expansion, computed in one forward
    /// pass (the same dynamic-programming order as Thm 3.4).
    pub fn expansion_lengths(&self) -> Vec<u64> {
        let mut lens = Vec::with_capacity(self.rules.len());
        for &(a, b) in &self.rules {
            let la = if a < self.first_nt {
                1
            } else {
                lens[(a - self.first_nt) as usize]
            };
            let lb = if b < self.first_nt {
                1
            } else {
                lens[(b - self.first_nt) as usize]
            };
            lens.push(la + lb);
        }
        lens
    }

    /// Length of the full expansion without materialising it.
    pub fn expanded_len(&self) -> usize {
        let lens = self.expansion_lengths();
        self.sequence
            .iter()
            .map(|&s| {
                if s < self.first_nt {
                    1u64
                } else {
                    lens[(s - self.first_nt) as usize]
                }
            })
            .sum::<u64>() as usize
    }

    /// Checks structural invariants, returning a human-readable violation
    /// if any (used by tests and debug assertions).
    pub fn check_invariants(&self) -> Result<(), String> {
        let limit = self.first_nt as u64 + self.rules.len() as u64;
        for (k, &(a, b)) in self.rules.iter().enumerate() {
            let own = self.first_nt as u64 + k as u64;
            if a as u64 >= own || b as u64 >= own {
                return Err(format!("rule {k} references symbol >= its own id"));
            }
        }
        for &s in &self.sequence {
            if s as u64 >= limit {
                return Err(format!("sequence symbol {s} out of range"));
            }
        }
        Ok(())
    }

    /// Checks that no rule (transitively) contains `forbidden` — used to
    /// verify the `$`-protection invariant of §3.
    pub fn rules_avoid_terminal(&self, forbidden: u32) -> bool {
        self.rules
            .iter()
            .all(|&(a, b)| a != forbidden && b != forbidden)
    }
}

impl HeapSize for Slp {
    fn heap_bytes(&self) -> usize {
        self.rules.heap_bytes() + self.sequence.heap_bytes()
    }
}

/// A straight-line program with **variable-arity** rules — the output of
/// MR-RePair (Furuya et al., 2019), which replaces maximal repeats
/// instead of single pairs.
///
/// * Terminals are the symbols `< first_nt`.
/// * Rule `k` defines nonterminal `first_nt + k` and rewrites to the
///   symbol run `rule_syms[rule_ptr[k]..rule_ptr[k+1]]` (length ≥ 2);
///   each symbol is a terminal or an *earlier* nonterminal, so one
///   forward pass evaluates all rules exactly as for [`Slp`].
/// * `sequence` is the final string `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrSlp {
    first_nt: u32,
    rule_ptr: Vec<u32>,
    rule_syms: Vec<u32>,
    sequence: Vec<u32>,
}

impl MrSlp {
    /// Assembles a variable-arity SLP from CSR parts.
    ///
    /// # Panics
    /// Panics if `rule_ptr` is not a monotone CSR index starting at 0 and
    /// ending at `rule_syms.len()`, if any rule is shorter than 2
    /// symbols, if any rule references a symbol at or above its own id,
    /// or if ids overflow `u32`.
    pub fn new(first_nt: u32, rule_ptr: Vec<u32>, rule_syms: Vec<u32>, sequence: Vec<u32>) -> Self {
        assert!(!rule_ptr.is_empty(), "rule_ptr needs a leading 0");
        assert_eq!(rule_ptr[0], 0, "rule_ptr must start at 0");
        assert_eq!(
            *rule_ptr.last().unwrap() as usize,
            rule_syms.len(),
            "rule_ptr must end at rule_syms.len()"
        );
        let num_rules = rule_ptr.len() - 1;
        let limit = first_nt as u64 + num_rules as u64;
        assert!(limit <= u32::MAX as u64, "nonterminal ids overflow u32");
        for k in 0..num_rules {
            let (lo, hi) = (rule_ptr[k] as usize, rule_ptr[k + 1] as usize);
            assert!(hi >= lo + 2, "rule {k} has fewer than 2 symbols");
            let own = first_nt + k as u32;
            for &s in &rule_syms[lo..hi] {
                assert!(s < own, "rule {k} references a later symbol");
            }
        }
        for &s in &sequence {
            assert!(
                (s as u64) < limit,
                "sequence references undefined symbol {s}"
            );
        }
        Self {
            first_nt,
            rule_ptr,
            rule_syms,
            sequence,
        }
    }

    /// First nonterminal id (= exclusive upper bound of the terminals).
    #[inline]
    pub fn first_nonterminal(&self) -> u32 {
        self.first_nt
    }

    /// Number of rules `|R|`.
    #[inline]
    pub fn num_rules(&self) -> usize {
        self.rule_ptr.len() - 1
    }

    /// The right-hand side of rule `k` (length ≥ 2).
    #[inline]
    pub fn rule(&self, k: usize) -> &[u32] {
        &self.rule_syms[self.rule_ptr[k] as usize..self.rule_ptr[k + 1] as usize]
    }

    /// The CSR rule pointer (`num_rules + 1` entries).
    #[inline]
    pub fn rule_ptr(&self) -> &[u32] {
        &self.rule_ptr
    }

    /// The concatenated rule right-hand sides.
    #[inline]
    pub fn rule_syms(&self) -> &[u32] {
        &self.rule_syms
    }

    /// The final string `C`.
    #[inline]
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Largest symbol id in use.
    pub fn max_symbol(&self) -> u32 {
        if self.num_rules() == 0 {
            self.sequence.iter().copied().max().unwrap_or(0)
        } else {
            self.first_nt + self.num_rules() as u32 - 1
        }
    }

    /// The paper's grammar size measure: total length of rule right-hand
    /// sides plus the final string.
    pub fn grammar_size(&self) -> usize {
        self.rule_syms.len() + self.sequence.len()
    }

    /// Appends the expansion of `symbol` to `out` (iterative, stack-safe).
    pub fn expand_symbol_into(&self, symbol: u32, out: &mut Vec<u32>) {
        let mut stack = vec![symbol];
        while let Some(s) = stack.pop() {
            if s < self.first_nt {
                out.push(s);
            } else {
                let rhs = self.rule((s - self.first_nt) as usize);
                stack.extend(rhs.iter().rev());
            }
        }
    }

    /// Full expansion of the final string — the original input sequence.
    pub fn expand(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.expanded_len());
        for &s in &self.sequence {
            self.expand_symbol_into(s, &mut out);
        }
        out
    }

    /// Length of every nonterminal's expansion (forward DP).
    pub fn expansion_lengths(&self) -> Vec<u64> {
        let mut lens = Vec::with_capacity(self.num_rules());
        for k in 0..self.num_rules() {
            let total: u64 = self
                .rule(k)
                .iter()
                .map(|&s| {
                    if s < self.first_nt {
                        1
                    } else {
                        lens[(s - self.first_nt) as usize]
                    }
                })
                .sum();
            lens.push(total);
        }
        lens
    }

    /// Length of the full expansion without materialising it.
    pub fn expanded_len(&self) -> usize {
        let lens = self.expansion_lengths();
        self.sequence
            .iter()
            .map(|&s| {
                if s < self.first_nt {
                    1u64
                } else {
                    lens[(s - self.first_nt) as usize]
                }
            })
            .sum::<u64>() as usize
    }

    /// Checks structural invariants, returning a violation if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        let limit = self.first_nt as u64 + self.num_rules() as u64;
        for k in 0..self.num_rules() {
            if self.rule(k).len() < 2 {
                return Err(format!("rule {k} shorter than 2 symbols"));
            }
            let own = self.first_nt as u64 + k as u64;
            for &s in self.rule(k) {
                if s as u64 >= own {
                    return Err(format!("rule {k} references symbol >= its own id"));
                }
            }
        }
        for &s in &self.sequence {
            if s as u64 >= limit {
                return Err(format!("sequence symbol {s} out of range"));
            }
        }
        Ok(())
    }

    /// Checks that no rule contains `forbidden` (§3's `$` protection).
    pub fn rules_avoid_terminal(&self, forbidden: u32) -> bool {
        self.rule_syms.iter().all(|&s| s != forbidden)
    }
}

impl HeapSize for MrSlp {
    fn heap_bytes(&self) -> usize {
        self.rule_ptr.heap_bytes() + self.rule_syms.heap_bytes() + self.sequence.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The grammar of Figure 2 of the paper (0 = `$`; terminals are mapped
    /// to small ids for readability).
    ///
    /// Terminal key: `<3,3>`=1 `<5,4>`=2 `<1,1>`=3 `<4,2>`=4 `<3,1>`=5
    /// `<6,3>`=6 `<3,5>`=7 `<2,5>`=8 `<4,1>`=9 `<4,5>`=10.
    fn fig2() -> Slp {
        let first_nt = 11;
        // N1..N9 -> ids 11..19
        let rules = vec![
            (1, 2),   // N1 -> <3,3> <5,4>
            (3, 4),   // N2 -> <1,1> <4,2>
            (5, 11),  // N3 -> <3,1> N1
            (6, 7),   // N4 -> <6,3> <3,5>
            (12, 14), // N5 -> N2 N4
            (13, 8),  // N6 -> N3 <2,5>
            (12, 11), // N7 -> N2 N1
            (9, 14),  // N8 -> <4,1> N4
            (17, 10), // N9 -> N7 <4,5>
        ];
        let sequence = vec![15, 0, 16, 0, 17, 0, 18, 0, 13, 0, 19, 0];
        Slp::new(first_nt, rules, sequence)
    }

    #[test]
    fn fig2_expansion_matches_fig1() {
        let slp = fig2();
        // Expected S from Figure 1, in the same terminal key.
        let expected = vec![
            3, 4, 6, 7, 0, // row 1: <1,1><4,2><6,3><3,5> $
            5, 1, 2, 8, 0, // row 2: <3,1><3,3><5,4><2,5> $
            3, 4, 1, 2, 0, // row 3: <1,1><4,2><3,3><5,4> $
            9, 6, 7, 0, // row 4: <4,1><6,3><3,5> $
            5, 1, 2, 0, // row 5: <3,1><3,3><5,4> $
            3, 4, 1, 2, 10, 0, // row 6: <1,1><4,2><3,3><5,4><4,5> $
        ];
        assert_eq!(slp.expand(), expected);
        assert_eq!(slp.expanded_len(), expected.len());
    }

    #[test]
    fn fig2_stats() {
        let slp = fig2();
        assert_eq!(slp.num_rules(), 9);
        assert_eq!(slp.grammar_size(), 2 * 9 + 12);
        assert_eq!(slp.max_symbol(), 19);
        assert!(slp.rules_avoid_terminal(0));
        assert!(slp.check_invariants().is_ok());
    }

    #[test]
    fn expansion_lengths_forward_pass() {
        let slp = fig2();
        let lens = slp.expansion_lengths();
        assert_eq!(lens[0], 2); // N1
        assert_eq!(lens[4], 4); // N5 = N2 N4
        assert_eq!(lens[8], 5); // N9 = N7 <4,5>
    }

    #[test]
    fn expand_single_terminal() {
        let slp = Slp::new(5, vec![], vec![3, 1, 0]);
        assert_eq!(slp.expand(), vec![3, 1, 0]);
        assert_eq!(slp.expand_symbol(4), vec![4]);
    }

    #[test]
    #[should_panic(expected = "references a later symbol")]
    fn forward_reference_rejected() {
        // Rule 0 (id 10) references id 11 (rule 1): invalid.
        Slp::new(10, vec![(11, 0), (1, 2)], vec![10]);
    }

    #[test]
    #[should_panic(expected = "undefined symbol")]
    fn sequence_out_of_range_rejected() {
        Slp::new(4, vec![(0, 1)], vec![9]);
    }

    #[test]
    fn mr_slp_expands_variable_arity_rules() {
        // N0 = 1 2 3 4, N1 = N0 5 N0 : expansion nests wide rules.
        let mr = MrSlp::new(
            10,
            vec![0, 4, 7],
            vec![1, 2, 3, 4, 10, 5, 10],
            vec![11, 0, 11, 0],
        );
        assert_eq!(mr.num_rules(), 2);
        assert_eq!(mr.rule(0), &[1, 2, 3, 4]);
        assert_eq!(mr.rule(1), &[10, 5, 10]);
        assert_eq!(mr.grammar_size(), 7 + 4);
        assert_eq!(mr.max_symbol(), 11);
        let row = [1, 2, 3, 4, 5, 1, 2, 3, 4];
        let mut expected = Vec::new();
        expected.extend_from_slice(&row);
        expected.push(0);
        expected.extend_from_slice(&row);
        expected.push(0);
        assert_eq!(mr.expand(), expected);
        assert_eq!(mr.expanded_len(), expected.len());
        assert_eq!(mr.expansion_lengths(), vec![4, 9]);
        assert!(mr.check_invariants().is_ok());
        assert!(mr.rules_avoid_terminal(0));
    }

    #[test]
    #[should_panic(expected = "fewer than 2 symbols")]
    fn mr_slp_rejects_unary_rules() {
        MrSlp::new(4, vec![0, 1], vec![1], vec![4]);
    }

    #[test]
    #[should_panic(expected = "references a later symbol")]
    fn mr_slp_rejects_forward_references() {
        MrSlp::new(4, vec![0, 2, 4], vec![1, 5, 1, 2], vec![4]);
    }

    #[test]
    fn deep_grammar_expands_iteratively() {
        // A left-leaning chain 20k deep: recursive expansion would blow the
        // stack.
        let first_nt = 2;
        let mut rules = vec![(0u32, 1u32)];
        for k in 1..20_000u32 {
            rules.push((first_nt + k - 1, 1));
        }
        let seq = vec![first_nt + 19_999];
        let slp = Slp::new(first_nt, rules, seq);
        let expansion = slp.expand();
        assert_eq!(expansion.len(), 20_001);
        assert_eq!(expansion[0], 0);
        assert!(expansion[1..].iter().all(|&s| s == 1));
    }
}
