//! The RePair compressor (Larsson & Moffat, 2000), adapted per §3 so that a
//! protected separator symbol never enters a rule.
//!
//! Implementation notes (the classic linear-time machinery):
//!
//! * the working sequence keeps holes where right-hand symbols were
//!   consumed; maximal runs of holes store their two boundary positions in
//!   a `jump` array, so neighbour lookup is O(1);
//! * every *counted* occurrence of a pair is threaded into a doubly-linked
//!   list (`onext`/`oprev` indexed by the position of the pair's left
//!   symbol), with the list head and an exact count in a hash map;
//! * pair priorities live in a lazy-deletion max-heap: entries are pushed
//!   on every count increase and validated against the map when popped;
//! * self-overlapping runs (`AAAA`) are counted left-to-right without
//!   overlap, and every replacement re-validates the underlying symbols, so
//!   stale occurrences are skipped rather than corrupting the output. In
//!   rare self-overlap corner cases a rule may end up used once — harmless
//!   for correctness, negligible for compression.

use std::sync::atomic::{AtomicUsize, Ordering};

use gcm_encodings::fxhash::FxHashMap;

use crate::slp::{MrSlp, Slp};

/// Process-wide count of grammar constructions (RePair or MR-RePair).
///
/// The incremental-rebuild path promises to re-run exactly the changed
/// shards' grammar stages; like `gcm_core::plan_compiles()`, this counter
/// lets tests assert that promise instead of trusting it.
static GRAMMAR_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Number of grammar compressions performed by this process so far.
pub fn grammar_builds() -> usize {
    GRAMMAR_BUILDS.load(Ordering::Relaxed)
}

/// Marks a hole in the working sequence.
const EMPTY: u32 = u32::MAX;
/// Null link in the occurrence lists.
const NONE: u32 = u32::MAX;

/// Configuration for [`RePair`].
#[derive(Debug, Clone, Copy)]
pub struct RePairConfig {
    /// Stop after this many rules (`None` = until no pair repeats).
    pub max_rules: Option<usize>,
    /// Only replace pairs occurring at least this often (min 2).
    pub min_count: u32,
}

impl Default for RePairConfig {
    fn default() -> Self {
        Self {
            max_rules: None,
            min_count: 2,
        }
    }
}

/// The RePair grammar compressor.
#[derive(Debug, Clone, Default)]
pub struct RePair {
    config: RePairConfig,
}

/// Reusable working storage for [`RePair::compress_with_scratch`].
///
/// One compression allocates five length-`n` arrays plus a pair map and a
/// priority heap; a build pipeline compressing many shards back to back
/// (or many blocks inside one shard) would pay that allocation churn per
/// block and thrash the allocator from every pool worker at once. A
/// scratch arena keeps the buffers alive between compressions: the first
/// call grows them, later calls reuse the capacity. A `Default`-fresh
/// scratch is always valid, so the arena is purely an optimisation.
#[derive(Debug, Default)]
pub struct RePairScratch {
    sym: Vec<u32>,
    jump: Vec<u32>,
    onext: Vec<u32>,
    oprev: Vec<u32>,
    in_list: Vec<bool>,
    pairs: FxHashMap<u64, PairRec>,
    heap: std::collections::BinaryHeap<(u32, u64)>,
}

impl RePairScratch {
    /// An empty scratch arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently retained by the arena's buffers (diagnostic;
    /// lets tests assert that repeated compressions stop growing it).
    pub fn retained_bytes(&self) -> usize {
        self.sym.capacity() * 4
            + self.jump.capacity() * 4
            + self.onext.capacity() * 4
            + self.oprev.capacity() * 4
            + self.in_list.capacity()
            + self.pairs.capacity() * (8 + std::mem::size_of::<PairRec>())
            + self.heap.capacity() * std::mem::size_of::<(u32, u64)>()
    }
}

#[derive(Debug, Clone, Copy)]
struct PairRec {
    count: u32,
    head: u32,
}

impl Default for PairRec {
    fn default() -> Self {
        // An empty occurrence list: `NONE`, not 0 (0 is a valid position).
        Self {
            count: 0,
            head: NONE,
        }
    }
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

struct State {
    sym: Vec<u32>,
    /// Boundary pointers of hole runs (valid only at run boundaries).
    jump: Vec<u32>,
    onext: Vec<u32>,
    oprev: Vec<u32>,
    in_list: Vec<bool>,
    pairs: FxHashMap<u64, PairRec>,
    heap: std::collections::BinaryHeap<(u32, u64)>,
    protected: Option<u32>,
}

impl State {
    /// Builds the working state from `scratch`'s buffers (taking them out
    /// of the arena; [`State::finish`] hands them back). Buffer *contents*
    /// are fully reinitialised here, so reuse never leaks state between
    /// compressions.
    fn new_in(input: &[u32], protected: Option<u32>, scratch: &mut RePairScratch) -> Self {
        let n = input.len();
        let mut sym = std::mem::take(&mut scratch.sym);
        sym.clear();
        sym.extend_from_slice(input);
        let mut jump = std::mem::take(&mut scratch.jump);
        jump.clear();
        jump.resize(n, 0);
        let mut onext = std::mem::take(&mut scratch.onext);
        onext.clear();
        onext.resize(n, NONE);
        let mut oprev = std::mem::take(&mut scratch.oprev);
        oprev.clear();
        oprev.resize(n, NONE);
        let mut in_list = std::mem::take(&mut scratch.in_list);
        in_list.clear();
        in_list.resize(n, false);
        let mut pairs = std::mem::take(&mut scratch.pairs);
        pairs.clear();
        let mut heap = std::mem::take(&mut scratch.heap);
        heap.clear();
        Self {
            sym,
            jump,
            onext,
            oprev,
            in_list,
            pairs,
            heap,
            protected,
        }
    }

    #[inline]
    fn is_protected(&self, s: u32) -> bool {
        Some(s) == self.protected
    }

    /// Next filled position after `i`, exploiting gap boundary pointers.
    #[inline]
    fn next_filled(&self, i: usize) -> Option<usize> {
        let j = i + 1;
        if j >= self.sym.len() {
            return None;
        }
        if self.sym[j] != EMPTY {
            return Some(j);
        }
        // `j` is the left boundary of its hole run (position `i` is filled).
        let end = self.jump[j] as usize;
        let k = end + 1;
        (k < self.sym.len()).then_some(k)
    }

    /// Previous filled position before `i`.
    #[inline]
    fn prev_filled(&self, i: usize) -> Option<usize> {
        if i == 0 {
            return None;
        }
        let j = i - 1;
        if self.sym[j] != EMPTY {
            return Some(j);
        }
        let start = self.jump[j] as usize;
        (start > 0).then(|| start - 1)
    }

    /// Turns position `j` into a hole, merging with adjacent hole runs.
    #[inline]
    fn clear_position(&mut self, j: usize) {
        debug_assert_ne!(self.sym[j], EMPTY);
        self.sym[j] = EMPTY;
        self.in_list[j] = false;
        let mut start = j;
        let mut end = j;
        if j > 0 && self.sym[j - 1] == EMPTY {
            start = self.jump[j - 1] as usize;
        }
        if j + 1 < self.sym.len() && self.sym[j + 1] == EMPTY {
            end = self.jump[j + 1] as usize;
        }
        self.jump[start] = end as u32;
        self.jump[end] = start as u32;
    }

    /// Links position `pos` as a counted occurrence of pair `(a, b)`.
    fn add_occurrence(&mut self, pos: usize, a: u32, b: u32) {
        debug_assert!(!self.is_protected(a) && !self.is_protected(b));
        let key = pack(a, b);
        let rec = self.pairs.entry(key).or_default();
        self.onext[pos] = rec.head;
        self.oprev[pos] = NONE;
        if rec.head != NONE {
            self.oprev[rec.head as usize] = pos as u32;
        }
        rec.head = pos as u32;
        rec.count += 1;
        self.in_list[pos] = true;
        if rec.count >= 2 {
            self.heap.push((rec.count, key));
        }
    }

    /// Unlinks the counted occurrence at `pos`, filed under pair `(a, b)`.
    ///
    /// Tolerates the pair record having been detached (its map entry
    /// removed) — then only the list links are fixed.
    fn remove_occurrence(&mut self, pos: usize, a: u32, b: u32) {
        debug_assert!(self.in_list[pos]);
        let key = pack(a, b);
        let prev = self.oprev[pos];
        let next = self.onext[pos];
        if prev != NONE {
            self.onext[prev as usize] = next;
        }
        if next != NONE {
            self.oprev[next as usize] = prev;
        }
        if let Some(rec) = self.pairs.get_mut(&key) {
            if rec.head == pos as u32 {
                rec.head = next;
            }
            rec.count = rec.count.saturating_sub(1);
            if rec.count == 0 {
                self.pairs.remove(&key);
            }
        }
        self.in_list[pos] = false;
        self.onext[pos] = NONE;
        self.oprev[pos] = NONE;
    }

    /// Initial non-overlapping pair count (left-to-right).
    fn count_initial_pairs(&mut self) {
        let n = self.sym.len();
        let mut i = 0usize;
        while i + 1 < n {
            let a = self.sym[i];
            let b = self.sym[i + 1];
            if !self.is_protected(a) && !self.is_protected(b) {
                self.add_occurrence(i, a, b);
                // Skip the overlapping middle of a run like AAA.
                if a == b && i + 2 < n && self.sym[i + 2] == a {
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Replaces every valid occurrence of `(a, b)` with `n_sym`.
    ///
    /// Returns the number of replacements performed.
    fn replace_all(&mut self, a: u32, b: u32, n_sym: u32) -> usize {
        self.replace_all_rec(a, b, n_sym, None)
    }

    /// As [`replace_all`](Self::replace_all), optionally recording the
    /// position of every substitution (where `n_sym` now sits) — the
    /// MR-RePair extension loop needs those to probe the symbols
    /// neighbouring the fresh nonterminal.
    fn replace_all_rec(
        &mut self,
        a: u32,
        b: u32,
        n_sym: u32,
        mut record: Option<&mut Vec<usize>>,
    ) -> usize {
        let key = pack(a, b);
        let Some(rec) = self.pairs.remove(&key) else {
            return 0;
        };
        // Snapshot the occurrence list before any mutation: replacements
        // rewrite the link arrays (neighbour removals, re-additions), so a
        // live walk could be cut short or diverted into another pair's list.
        let mut occurrences = Vec::with_capacity(rec.count as usize);
        let mut pos = rec.head;
        while pos != NONE {
            occurrences.push(pos as usize);
            pos = self.onext[pos as usize];
        }
        let mut replaced = 0usize;
        for i in occurrences {
            // Re-validate against the live sequence: earlier replacements in
            // this very walk may have consumed this occurrence.
            if self.sym[i] != a {
                continue;
            }
            let Some(j) = self.next_filled(i) else {
                continue;
            };
            if self.sym[j] != b {
                continue;
            }
            if self.in_list[i] {
                // Unlink from whatever list the position currently sits in
                // (normally the remnants of the detached one;
                // `remove_occurrence` tolerates the missing map entry).
                self.remove_occurrence(i, a, b);
            }

            // Decrement the left-neighbour pair (sym[l], a) at l.
            let left = self.prev_filled(i);
            if let Some(l) = left {
                if self.in_list[l] {
                    let ls = self.sym[l];
                    self.remove_occurrence(l, ls, a);
                }
            }
            // Decrement the right-neighbour pair (b, sym[r]) at j.
            let right = self.next_filled(j);
            if let Some(r) = right {
                if self.in_list[j] {
                    let rs = self.sym[r];
                    self.remove_occurrence(j, b, rs);
                }
            }

            // Perform the substitution.
            self.sym[i] = n_sym;
            self.clear_position(j);
            replaced += 1;
            if let Some(rec) = record.as_deref_mut() {
                rec.push(i);
            }

            // New neighbour pairs around the fresh nonterminal.
            if let Some(l) = left {
                let ls = self.sym[l];
                if !self.is_protected(ls) {
                    self.add_occurrence(l, ls, n_sym);
                }
            }
            if let Some(r) = right {
                let rs = self.sym[r];
                if !self.is_protected(rs) {
                    self.add_occurrence(i, n_sym, rs);
                }
            }
        }
        replaced
    }

    /// Pops the most frequent pair still meeting `min_count`.
    fn pop_best(&mut self, min_count: u32) -> Option<(u32, u32)> {
        while let Some((count, key)) = self.heap.pop() {
            match self.pairs.get(&key) {
                Some(rec) if rec.count == count && count >= min_count => {
                    return Some(((key >> 32) as u32, key as u32));
                }
                Some(rec) if rec.count >= min_count && rec.count < count => {
                    // Stale (higher) entry: requeue with the true count.
                    self.heap.push((rec.count, key));
                }
                _ => {}
            }
        }
        None
    }

    /// Compacts the working sequence (dropping holes) and returns every
    /// buffer to `scratch` for the next compression.
    fn finish(mut self, scratch: &mut RePairScratch) -> Vec<u32> {
        let seq: Vec<u32> = self.sym.iter().copied().filter(|&s| s != EMPTY).collect();
        scratch.sym = std::mem::take(&mut self.sym);
        scratch.jump = std::mem::take(&mut self.jump);
        scratch.onext = std::mem::take(&mut self.onext);
        scratch.oprev = std::mem::take(&mut self.oprev);
        scratch.in_list = std::mem::take(&mut self.in_list);
        scratch.pairs = std::mem::take(&mut self.pairs);
        scratch.heap = std::mem::take(&mut self.heap);
        seq
    }
}

impl RePair {
    /// A compressor with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A compressor with the given configuration.
    pub fn with_config(config: RePairConfig) -> Self {
        Self { config }
    }

    /// Compresses `input`, never forming rules that contain `protected`.
    ///
    /// `first_nt` must be strictly greater than every input symbol; fresh
    /// nonterminals are numbered `first_nt, first_nt + 1, …`.
    ///
    /// # Panics
    /// Panics if an input symbol is `>= first_nt`, if the input contains
    /// the reserved value `u32::MAX`, or if the input length exceeds
    /// `u32::MAX - 1`.
    pub fn compress(&self, input: &[u32], first_nt: u32, protected: Option<u32>) -> Slp {
        self.compress_with_scratch(input, first_nt, protected, &mut RePairScratch::default())
    }

    /// As [`compress`](Self::compress), drawing all working storage from
    /// `scratch` so repeated compressions (per-block builds, the staged
    /// pipeline's pool workers) reuse their buffers instead of
    /// reallocating. Output is identical to [`compress`](Self::compress)
    /// for any scratch state.
    ///
    /// # Panics
    /// As [`compress`](Self::compress).
    pub fn compress_with_scratch(
        &self,
        input: &[u32],
        first_nt: u32,
        protected: Option<u32>,
        scratch: &mut RePairScratch,
    ) -> Slp {
        assert!(input.len() < u32::MAX as usize, "input too long");
        if let Some(&max) = input.iter().max() {
            assert!(max < first_nt, "input symbol {max} >= first_nt {first_nt}");
            assert!(max != EMPTY, "u32::MAX is reserved");
        }
        let min_count = self.config.min_count.max(2);
        let max_rules = self
            .config
            .max_rules
            .unwrap_or(usize::MAX)
            .min((u32::MAX - first_nt) as usize);

        GRAMMAR_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut st = State::new_in(input, protected, scratch);
        st.count_initial_pairs();
        let mut rules: Vec<(u32, u32)> = Vec::new();
        while rules.len() < max_rules {
            let Some((a, b)) = st.pop_best(min_count) else {
                break;
            };
            let n_sym = first_nt + rules.len() as u32;
            let replaced = st.replace_all(a, b, n_sym);
            if replaced == 0 {
                // All occurrences turned out stale; no symbol references
                // n_sym, so simply do not record the rule.
                continue;
            }
            rules.push((a, b));
        }
        let seq = st.finish(scratch);
        Slp::new(first_nt, rules, seq)
    }

    /// MR-RePair compression (Furuya et al.): like
    /// [`compress`](Self::compress) but each fresh nonterminal greedily
    /// consumes the **maximal repeat** around its founding pair, so a
    /// rule's right-hand side may grow beyond two symbols and the grammar
    /// needs fewer rules overall.
    ///
    /// # Panics
    /// As [`compress`](Self::compress).
    pub fn compress_mr(&self, input: &[u32], first_nt: u32, protected: Option<u32>) -> MrSlp {
        self.compress_mr_with_scratch(input, first_nt, protected, &mut RePairScratch::default())
    }

    /// As [`compress_mr`](Self::compress_mr), drawing all working storage
    /// from `scratch` — the same arena
    /// [`compress_with_scratch`](Self::compress_with_scratch) uses, so a
    /// pipeline can interleave both stages over one set of buffers.
    ///
    /// The inner loop is the pair-replacement machinery unchanged; after
    /// a pair `(a, b)` is replaced by `X`, the rule is extended while
    /// *every* occurrence of `X` is followed (or preceded) by one same
    /// symbol `c` — detected exactly via the pair table
    /// (`count(X, c) == |occurrences of X|`) and applied with the same
    /// `replace_all` bookkeeping (`X c → X` keeps the occurrence count
    /// and positions consistent). That is precisely the maximal-repeat
    /// run of the founding pair.
    ///
    /// # Panics
    /// As [`compress`](Self::compress).
    pub fn compress_mr_with_scratch(
        &self,
        input: &[u32],
        first_nt: u32,
        protected: Option<u32>,
        scratch: &mut RePairScratch,
    ) -> MrSlp {
        assert!(input.len() < u32::MAX as usize, "input too long");
        if let Some(&max) = input.iter().max() {
            assert!(max < first_nt, "input symbol {max} >= first_nt {first_nt}");
            assert!(max != EMPTY, "u32::MAX is reserved");
        }
        let min_count = self.config.min_count.max(2);
        let max_rules = self
            .config
            .max_rules
            .unwrap_or(usize::MAX)
            .min((u32::MAX - first_nt) as usize);

        GRAMMAR_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut st = State::new_in(input, protected, scratch);
        st.count_initial_pairs();
        let mut rule_ptr: Vec<u32> = vec![0];
        let mut rule_syms: Vec<u32> = Vec::new();
        let mut positions: Vec<usize> = Vec::new();
        let mut next_positions: Vec<usize> = Vec::new();
        while rule_ptr.len() - 1 < max_rules {
            let Some((a, b)) = st.pop_best(min_count) else {
                break;
            };
            let n_sym = first_nt + (rule_ptr.len() - 1) as u32;
            positions.clear();
            let replaced = st.replace_all_rec(a, b, n_sym, Some(&mut positions));
            if replaced == 0 {
                continue;
            }
            let rhs_start = rule_syms.len();
            rule_syms.push(a);
            rule_syms.push(b);
            // Greedy maximal-repeat extension. Safe only when the
            // extension consumes *every* occurrence of the fresh
            // nonterminal — otherwise occurrences would expand to
            // different strings — so each step requires the exact pair
            // count to equal the occurrence count (`replaced` is the
            // invariant occurrence count: every extension step consumes
            // all occurrences, so it never changes). `c == n_sym` (runs
            // of the nonterminal itself) is skipped: those pairs self-
            // overlap and are better left to a later ordinary rule.
            if replaced >= 2 {
                loop {
                    let p = positions[0];
                    let right = st.next_filled(p).map(|r| st.sym[r]).filter(|&c| {
                        c != n_sym
                            && !st.is_protected(c)
                            && st
                                .pairs
                                .get(&pack(n_sym, c))
                                .is_some_and(|rec| rec.count as usize == replaced)
                    });
                    if let Some(c) = right {
                        next_positions.clear();
                        let k = st.replace_all_rec(n_sym, c, n_sym, Some(&mut next_positions));
                        assert_eq!(k, replaced, "right extension must consume every occurrence");
                        std::mem::swap(&mut positions, &mut next_positions);
                        rule_syms.push(c);
                        continue;
                    }
                    let left = st.prev_filled(p).map(|l| st.sym[l]).filter(|&c| {
                        c != n_sym
                            && !st.is_protected(c)
                            && st
                                .pairs
                                .get(&pack(c, n_sym))
                                .is_some_and(|rec| rec.count as usize == replaced)
                    });
                    if let Some(c) = left {
                        next_positions.clear();
                        let k = st.replace_all_rec(c, n_sym, n_sym, Some(&mut next_positions));
                        assert_eq!(k, replaced, "left extension must consume every occurrence");
                        std::mem::swap(&mut positions, &mut next_positions);
                        rule_syms.insert(rhs_start, c);
                        continue;
                    }
                    break;
                }
            }
            rule_ptr.push(rule_syms.len() as u32);
        }
        let seq = st.finish(scratch);
        MrSlp::new(first_nt, rule_ptr, rule_syms, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u32], first_nt: u32, protected: Option<u32>) -> Slp {
        let slp = RePair::new().compress(input, first_nt, protected);
        assert_eq!(slp.expand(), input, "expansion must equal input");
        assert!(slp.check_invariants().is_ok());
        if let Some(p) = protected {
            assert!(
                slp.rules_avoid_terminal(p),
                "protected symbol leaked into a rule"
            );
        }
        slp
    }

    #[test]
    fn empty_input() {
        let slp = roundtrip(&[], 10, None);
        assert_eq!(slp.num_rules(), 0);
    }

    #[test]
    fn single_symbol() {
        let slp = roundtrip(&[5], 10, None);
        assert_eq!(slp.num_rules(), 0);
    }

    #[test]
    fn no_repeats_no_rules() {
        let slp = roundtrip(&[1, 2, 3, 4, 5], 10, None);
        assert_eq!(slp.num_rules(), 0);
        assert_eq!(slp.sequence(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn simple_repeat() {
        // "abab" -> N0=ab, C = N0 N0
        let slp = roundtrip(&[1, 2, 1, 2], 10, None);
        assert_eq!(slp.num_rules(), 1);
        assert_eq!(slp.rules()[0], (1, 2));
        assert_eq!(slp.sequence(), &[10, 10]);
    }

    #[test]
    fn abracadabra_style() {
        // Classic: repeated phrase gets hierarchical rules.
        let input: Vec<u32> = [1, 2, 3, 1, 4, 1, 5, 1, 4, 1, 2, 3, 1, 4, 1, 5, 1, 4].to_vec();
        let slp = roundtrip(&input, 100, None);
        assert!(slp.num_rules() >= 2);
        assert!(slp.grammar_size() < input.len() + 2);
    }

    #[test]
    fn run_of_equal_symbols() {
        for len in [2usize, 3, 4, 5, 7, 8, 15, 16, 33, 100] {
            let input = vec![7u32; len];
            let slp = roundtrip(&input, 10, None);
            // log-depth hierarchy: grammar much smaller than the run.
            if len >= 8 {
                assert!(
                    slp.grammar_size() <= 4 * (usize::BITS - len.leading_zeros()) as usize,
                    "len {len}: size {}",
                    slp.grammar_size()
                );
            }
        }
    }

    #[test]
    fn alternating_overlap() {
        let input: Vec<u32> = (0..64).map(|i| (i % 2) as u32 + 1).collect();
        roundtrip(&input, 10, None);
    }

    #[test]
    fn protected_symbol_never_in_rules() {
        // Rows of repeated content separated by 0.
        let mut input = Vec::new();
        for _ in 0..50 {
            input.extend_from_slice(&[3, 4, 5, 6]);
            input.push(0);
        }
        let slp = roundtrip(&input, 10, Some(0));
        assert!(slp.num_rules() >= 2);
        // Every nonterminal expansion is separator-free.
        for k in 0..slp.num_rules() {
            let exp = slp.expand_symbol(10 + k as u32);
            assert!(!exp.contains(&0), "rule {k} expands across a separator");
        }
        // Sequence keeps exactly the 50 separators.
        assert_eq!(slp.sequence().iter().filter(|&&s| s == 0).count(), 50);
    }

    #[test]
    fn protected_adjacent_pairs_unaffected() {
        // Pairs straddling the separator must not be formed even when
        // they would be the most frequent.
        let mut input = Vec::new();
        for _ in 0..20 {
            input.push(1);
            input.push(0); // (1,0) and (0,1) are frequent but forbidden
        }
        let slp = roundtrip(&input, 5, Some(0));
        assert_eq!(slp.num_rules(), 0);
    }

    #[test]
    fn repeated_rows_compress_to_single_nonterminals() {
        // 30 identical rows: RePair should reduce each row to one symbol.
        let row = [2u32, 3, 4, 5, 6, 7, 8, 9];
        let mut input = Vec::new();
        for _ in 0..30 {
            input.extend_from_slice(&row);
            input.push(0);
        }
        let slp = roundtrip(&input, 100, Some(0));
        // Final sequence should be close to 30 * (1 symbol + separator).
        assert!(
            slp.sequence().len() <= 30 * 2 + 2,
            "sequence len {}",
            slp.sequence().len()
        );
    }

    #[test]
    fn max_rules_cap_respected() {
        let input: Vec<u32> = (0..1000).map(|i| (i % 4) as u32 + 1).collect();
        let cfg = RePairConfig {
            max_rules: Some(3),
            min_count: 2,
        };
        let slp = RePair::with_config(cfg).compress(&input, 10, None);
        assert!(slp.num_rules() <= 3);
        assert_eq!(slp.expand(), input);
    }

    #[test]
    fn min_count_threshold() {
        // Pair (1,2) occurs twice; with min_count 3 nothing is replaced.
        let input = vec![1, 2, 9, 1, 2];
        let cfg = RePairConfig {
            max_rules: None,
            min_count: 3,
        };
        let slp = RePair::with_config(cfg).compress(&input, 10, None);
        assert_eq!(slp.num_rules(), 0);
        assert_eq!(slp.expand(), input);
    }

    #[test]
    #[should_panic(expected = ">= first_nt")]
    fn input_symbol_above_first_nt_rejected() {
        RePair::new().compress(&[5, 20], 10, None);
    }

    #[test]
    fn pseudorandom_roundtrip_small_alphabet() {
        let mut x = 0x12345678u64;
        let input: Vec<u32> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 8) as u32
            })
            .collect();
        let slp = roundtrip(&input, 100, None);
        assert!(slp.grammar_size() < input.len());
    }

    #[test]
    fn pseudorandom_roundtrip_with_separators() {
        let mut x = 0xDEADBEEFu64;
        let mut input = Vec::new();
        for _ in 0..400 {
            let row_len = (x >> 60) as usize % 6;
            for _ in 0..row_len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                input.push(((x >> 33) % 10 + 1) as u32);
            }
            input.push(0);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        roundtrip(&input, 100, Some(0));
    }

    #[test]
    fn highly_repetitive_reaches_log_size() {
        // (abcdefgh)^128: grammar should be O(log) of the input.
        let mut input = Vec::new();
        for _ in 0..128 {
            input.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        }
        let slp = roundtrip(&input, 100, None);
        assert!(slp.grammar_size() <= 64, "size {}", slp.grammar_size());
    }

    #[test]
    fn adjacent_separators_ok() {
        // Empty rows: consecutive protected symbols.
        let input = vec![0, 0, 1, 2, 0, 1, 2, 0, 0];
        roundtrip(&input, 10, Some(0));
    }

    fn mr_roundtrip(input: &[u32], first_nt: u32, protected: Option<u32>) -> MrSlp {
        let mr = RePair::new().compress_mr(input, first_nt, protected);
        assert_eq!(mr.expand(), input, "MR expansion must equal input");
        assert!(mr.check_invariants().is_ok());
        if let Some(p) = protected {
            assert!(
                mr.rules_avoid_terminal(p),
                "protected symbol leaked into an MR rule"
            );
        }
        mr
    }

    #[test]
    fn mr_simple_repeat_matches_repair() {
        let mr = mr_roundtrip(&[1, 2, 1, 2], 10, None);
        assert_eq!(mr.num_rules(), 1);
        assert_eq!(mr.rule(0), &[1, 2]);
        assert_eq!(mr.sequence(), &[10, 10]);
    }

    #[test]
    fn mr_consumes_maximal_repeats_into_one_rule() {
        // (1 2 3 4)^2: RePair needs a chain of three rules; MR-RePair
        // extends the founding pair to the whole repeat.
        let input = [1u32, 2, 3, 4, 1, 2, 3, 4];
        let mr = mr_roundtrip(&input, 10, None);
        assert_eq!(mr.num_rules(), 1, "rules: {:?}", mr.rule_syms());
        assert_eq!(mr.rule(0), &[1, 2, 3, 4]);
        assert_eq!(mr.sequence(), &[10, 10]);
        let slp = RePair::new().compress(&input, 10, None);
        assert_eq!(slp.num_rules(), 3);
        // Three repeats leave a top-level (X, X) pair that may become one
        // extra binary rule — still strictly fewer rules than RePair.
        let input3 = [1u32, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4];
        let mr3 = mr_roundtrip(&input3, 10, None);
        let slp3 = RePair::new().compress(&input3, 10, None);
        assert!(mr3.num_rules() < slp3.num_rules());
        assert_eq!(mr3.rule(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn mr_never_needs_more_rules_on_repetitive_rows() {
        let row = [2u32, 3, 4, 5, 6, 7, 8, 9];
        let mut input = Vec::new();
        for _ in 0..30 {
            input.extend_from_slice(&row);
            input.push(0);
        }
        let mr = mr_roundtrip(&input, 100, Some(0));
        let slp = RePair::new().compress(&input, 100, Some(0));
        assert!(
            mr.num_rules() < slp.num_rules(),
            "MR {} vs RePair {}",
            mr.num_rules(),
            slp.num_rules()
        );
        // One wide rule covering the whole row, used once per row.
        assert!(mr.sequence().len() <= 30 * 2 + 2);
    }

    #[test]
    fn mr_protected_symbol_never_extends_across_rows() {
        let mut input = Vec::new();
        for _ in 0..40 {
            input.extend_from_slice(&[3, 4, 5, 6]);
            input.push(0);
        }
        let mr = mr_roundtrip(&input, 10, Some(0));
        assert_eq!(mr.sequence().iter().filter(|&&s| s == 0).count(), 40);
    }

    #[test]
    fn mr_runs_of_equal_symbols_roundtrip() {
        for len in [2usize, 3, 5, 8, 16, 33, 100] {
            mr_roundtrip(&vec![7u32; len], 10, None);
        }
    }

    #[test]
    fn mr_pseudorandom_roundtrip_with_separators() {
        let mut x = 0xFEED5EEDu64;
        let mut input = Vec::new();
        for _ in 0..400 {
            let row_len = (x >> 60) as usize % 6;
            for _ in 0..row_len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                input.push(((x >> 33) % 10 + 1) as u32);
            }
            input.push(0);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        mr_roundtrip(&input, 100, Some(0));
    }

    #[test]
    fn mr_respects_max_rules_and_min_count() {
        let input: Vec<u32> = (0..1000).map(|i| (i % 4) as u32 + 1).collect();
        let cfg = RePairConfig {
            max_rules: Some(2),
            min_count: 2,
        };
        let mr = RePair::with_config(cfg).compress_mr(&input, 10, None);
        assert!(mr.num_rules() <= 2);
        assert_eq!(mr.expand(), input);

        let sparse = vec![1, 2, 9, 1, 2];
        let cfg = RePairConfig {
            max_rules: None,
            min_count: 3,
        };
        let mr = RePair::with_config(cfg).compress_mr(&sparse, 10, None);
        assert_eq!(mr.num_rules(), 0);
        assert_eq!(mr.expand(), sparse);
    }

    #[test]
    fn mr_scratch_reuse_matches_fresh_compression() {
        let mut x = 0xABCDEFu64;
        let inputs: Vec<Vec<u32>> = (0..6)
            .map(|round| {
                (0..150 + round * 83)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 33) % 7) as u32
                    })
                    .collect()
            })
            .collect();
        let mut scratch = RePairScratch::new();
        for input in &inputs {
            let with_scratch =
                RePair::new().compress_mr_with_scratch(input, 100, Some(0), &mut scratch);
            let fresh = RePair::new().compress_mr(input, 100, Some(0));
            assert_eq!(with_scratch, fresh);
            assert_eq!(with_scratch.expand(), *input);
        }
        // The same arena still produces unchanged RePair output.
        let slp_scratch =
            RePair::new().compress_with_scratch(&inputs[0], 100, Some(0), &mut scratch);
        let slp_fresh = RePair::new().compress(&inputs[0], 100, Some(0));
        assert_eq!(slp_scratch.rules(), slp_fresh.rules());
        assert_eq!(slp_scratch.sequence(), slp_fresh.sequence());
    }

    #[test]
    fn grammar_builds_counts_every_compression() {
        let before = grammar_builds();
        let _ = RePair::new().compress(&[1, 2, 1, 2], 10, None);
        let _ = RePair::new().compress_mr(&[1, 2, 1, 2], 10, None);
        assert!(grammar_builds() >= before + 2);
    }

    #[test]
    fn scratch_reuse_matches_fresh_compression_and_stops_growing() {
        // Several different inputs through ONE scratch arena: every
        // grammar must equal the fresh-allocation compressor's output,
        // and after the largest input has been seen the arena must stop
        // growing.
        let mut x = 0xC0FFEEu64;
        let inputs: Vec<Vec<u32>> = (0..8)
            .map(|round| {
                (0..200 + round * 57)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 33) % 9) as u32
                    })
                    .collect()
            })
            .collect();
        let mut scratch = RePairScratch::new();
        for input in &inputs {
            let with_scratch =
                RePair::new().compress_with_scratch(input, 100, Some(0), &mut scratch);
            let fresh = RePair::new().compress(input, 100, Some(0));
            assert_eq!(with_scratch.rules(), fresh.rules());
            assert_eq!(with_scratch.sequence(), fresh.sequence());
            assert_eq!(with_scratch.expand(), *input);
        }
        let plateau = scratch.retained_bytes();
        for input in &inputs {
            let _ = RePair::new().compress_with_scratch(input, 100, Some(0), &mut scratch);
        }
        assert_eq!(
            scratch.retained_bytes(),
            plateau,
            "arena must reuse capacity on repeat inputs"
        );
    }
}
