//! RePair grammar compression over `u32` sequences (§3–§4 of the paper).
//!
//! RePair (Larsson & Moffat, 2000) repeatedly replaces the most frequent
//! pair of adjacent symbols `AB` with a fresh nonterminal `N`, appending the
//! rule `N → AB`, until no pair occurs twice. The result is a straight-line
//! program ([`Slp`]): a set of binary rules plus a final string `C` whose
//! expansion reproduces the input exactly.
//!
//! Two properties matter for the paper:
//!
//! * **Protected separators.** The compressor never forms a rule containing
//!   the row separator `$`, so every nonterminal expands to a sequence of
//!   `⟨value, column⟩` pairs from a single row — the invariant both
//!   multiplication kernels rely on (§3).
//! * **Entropy bound.** RePair is an irreducible-grammar compressor, so its
//!   output is bounded by `|S|·H_k(S) + o(|S|·H_k(S))` bits (Ochoa &
//!   Navarro, 2019); [`stats::empirical_entropy`] lets the benches check the
//!   measured sizes against that bound.

pub mod compressor;
pub mod slp;
pub mod stats;

pub use compressor::{grammar_builds, RePair, RePairConfig, RePairScratch};
pub use slp::{MrSlp, Slp};
