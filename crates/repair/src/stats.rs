//! Grammar and sequence statistics: empirical entropy and grammar metrics.
//!
//! The paper's key theoretical claim is that RePair's output is bounded by
//! `|S|·H_k(S) + o(|S|·H_k(S))` bits. These helpers compute `H_0` and `H_k`
//! of a `u32` sequence so the benches can put measured sizes next to the
//! entropy bound (the `ablation` harness).

use gcm_encodings::fxhash::FxHashMap;

use crate::slp::Slp;

/// Order-0 empirical entropy of `seq` in bits per symbol.
pub fn empirical_entropy_order0(seq: &[u32]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
    for &s in seq {
        *counts.entry(s).or_insert(0) += 1;
    }
    let n = seq.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Order-`k` empirical entropy of `seq` in bits per symbol.
///
/// `H_k` conditions each symbol on its `k` preceding symbols:
/// `H_k(S) = (1/n) Σ_w |S_w| H_0(S_w)` over all length-`k` contexts `w`.
/// `H_0 = H_k` for `k = 0`; `H_k` is non-increasing in `k`.
pub fn empirical_entropy(seq: &[u32], k: usize) -> f64 {
    if k == 0 {
        return empirical_entropy_order0(seq);
    }
    if seq.len() <= k {
        return 0.0;
    }
    // Group successor counts per context. Contexts are hashed to u64; for
    // the matrices in the paper (alphabets << 2^32, k <= 4) collisions are
    // practically impossible with a 64-bit mix, and the estimate is only
    // used for reporting.
    let mut contexts: FxHashMap<u64, FxHashMap<u32, u64>> = FxHashMap::default();
    let ctx_hash = |window: &[u32]| -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &s in window {
            h ^= s as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    };
    for i in k..seq.len() {
        let ctx = ctx_hash(&seq[i - k..i]);
        *contexts.entry(ctx).or_default().entry(seq[i]).or_insert(0) += 1;
    }
    let n = (seq.len() - k) as f64;
    let mut total_bits = 0.0;
    for succ in contexts.values() {
        let m: u64 = succ.values().sum();
        let mf = m as f64;
        let h0: f64 = succ
            .values()
            .map(|&c| {
                let p = c as f64 / mf;
                -p * p.log2()
            })
            .sum();
        total_bits += mf * h0;
    }
    total_bits / n
}

/// Summary statistics of a grammar, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrammarStats {
    /// Number of rules `|R|`.
    pub rules: usize,
    /// Length of the final string `|C|`.
    pub sequence_len: usize,
    /// `2|R| + |C|`, the paper's grammar size.
    pub grammar_size: usize,
    /// Length of the expanded (original) sequence.
    pub expanded_len: usize,
    /// Largest symbol id (drives the `re_iv` bit width).
    pub max_symbol: u32,
    /// Compression factor `expanded_len / grammar_size`.
    pub factor: f64,
}

/// Computes [`GrammarStats`] for an SLP.
pub fn grammar_stats(slp: &Slp) -> GrammarStats {
    let expanded_len = slp.expanded_len();
    let grammar_size = slp.grammar_size();
    GrammarStats {
        rules: slp.num_rules(),
        sequence_len: slp.sequence().len(),
        grammar_size,
        expanded_len,
        max_symbol: slp.max_symbol(),
        factor: if grammar_size == 0 {
            1.0
        } else {
            expanded_len as f64 / grammar_size as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::RePair;

    #[test]
    fn h0_uniform_is_log_alphabet() {
        let seq: Vec<u32> = (0..1024).map(|i| i % 16).collect();
        let h = empirical_entropy_order0(&seq);
        assert!((h - 4.0).abs() < 1e-9);
    }

    #[test]
    fn h0_constant_is_zero() {
        let seq = vec![7u32; 100];
        assert_eq!(empirical_entropy_order0(&seq), 0.0);
    }

    #[test]
    fn hk_non_increasing_in_k() {
        let mut x = 1u64;
        let seq: Vec<u32> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 60) % 4) as u32
            })
            .collect();
        let h0 = empirical_entropy(&seq, 0);
        let h1 = empirical_entropy(&seq, 1);
        let h2 = empirical_entropy(&seq, 2);
        assert!(h1 <= h0 + 1e-9);
        assert!(h2 <= h1 + 1e-9);
    }

    #[test]
    fn deterministic_successor_has_zero_h1() {
        // abcabcabc...: given the previous symbol, the next is certain.
        let seq: Vec<u32> = (0..3000).map(|i| i % 3).collect();
        assert!(empirical_entropy(&seq, 1) < 1e-9);
        assert!(empirical_entropy_order0(&seq) > 1.5);
    }

    #[test]
    fn empty_and_short_sequences() {
        assert_eq!(empirical_entropy(&[], 0), 0.0);
        assert_eq!(empirical_entropy(&[1, 2], 5), 0.0);
    }

    #[test]
    fn grammar_stats_consistency() {
        let input: Vec<u32> = (0..256).map(|i| (i % 4) as u32).collect();
        let slp = RePair::new().compress(&input, 100, None);
        let st = grammar_stats(&slp);
        assert_eq!(st.expanded_len, 256);
        assert_eq!(st.grammar_size, 2 * st.rules + st.sequence_len);
        assert!(st.factor > 1.0);
    }

    #[test]
    fn repair_output_tracks_entropy_ordering() {
        // A low-H1 sequence should compress much better than a high-H1 one
        // of the same length and alphabet.
        let periodic: Vec<u32> = (0..4096).map(|i| i % 8).collect();
        let mut x = 99u64;
        let random: Vec<u32> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 59) % 8) as u32
            })
            .collect();
        let g_periodic = RePair::new().compress(&periodic, 100, None).grammar_size();
        let g_random = RePair::new().compress(&random, 100, None).grammar_size();
        assert!(
            g_periodic * 4 < g_random,
            "periodic {g_periodic} vs random {g_random}"
        );
    }
}
