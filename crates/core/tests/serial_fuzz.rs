//! Deterministic corruption fuzzing of the on-disk containers.
//!
//! The serialisation layer promises that malformed input yields `None`,
//! never a panic and never a structurally unsound grammar that could
//! drive a kernel out of bounds. These tests enforce that promise the
//! brute-force way: for containers of every encoding,
//!
//! * truncate at **every** byte boundary, and
//! * flip bits in **every** byte (three patterns per byte),
//!
//! then demand that loading either fails cleanly or produces a matrix
//! whose kernels can run to completion. Any panic — including a slice
//! index panic from an out-of-bounds grammar — fails the test.

use gcm_core::serial;
use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec};

fn sample(rows: usize, cols: usize) -> CsrvMatrix {
    let mut dense = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if (r * 3 + c) % 4 != 0 {
                dense.set(r, c, (((r + 2 * c) % 5) + 1) as f64 * 0.75);
            }
        }
    }
    CsrvMatrix::from_dense(&dense).unwrap()
}

/// Exercises a successfully-loaded matrix: if a mutation slipped past
/// validation, the grammar must still be safe to run.
fn exercise(cm: &CompressedMatrix) {
    let x = vec![1.0; cm.cols()];
    let mut y = vec![0.0; cm.rows()];
    cm.right_multiply(&x, &mut y).unwrap();
    let yv = vec![1.0; cm.rows()];
    let mut xo = vec![0.0; cm.cols()];
    cm.left_multiply(&yv, &mut xo).unwrap();
    let _ = cm.decompress_symbols();
}

#[test]
fn v1_truncation_at_every_boundary_returns_none() {
    let csrv = sample(24, 6);
    for enc in Encoding::ALL {
        let cm = CompressedMatrix::compress(&csrv, enc);
        let bytes = serial::to_bytes(&cm);
        for cut in 0..bytes.len() {
            assert!(
                serial::from_bytes(&bytes[..cut]).is_none(),
                "{}: truncation at {cut}/{} must be rejected",
                enc.name(),
                bytes.len()
            );
        }
        assert!(serial::from_bytes(&bytes).is_some());
    }
}

#[test]
fn v1_byte_flips_never_panic_or_build_unsafe_grammars() {
    let csrv = sample(24, 6);
    for enc in Encoding::ALL {
        let cm = CompressedMatrix::compress(&csrv, enc);
        let bytes = serial::to_bytes(&cm);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                if let Some(back) = serial::from_bytes(&mutated) {
                    // The mutation survived validation (e.g. it only
                    // touched a dictionary value): the matrix must still
                    // be structurally sound end to end.
                    assert_eq!(back.rows(), cm.rows(), "{} byte {i}", enc.name());
                    exercise(&back);
                }
            }
        }
    }
}

#[test]
fn v2_truncation_at_every_boundary_returns_none() {
    let csrv = sample(30, 5);
    let order: Vec<u32> = [3u32, 1, 4, 0, 2].to_vec();
    for enc in Encoding::ALL {
        let bm = BlockedMatrix::compress(&csrv, enc, 3);
        let bytes = serial::bundle_to_bytes(bm.blocks(), Some(&order));
        for cut in 0..bytes.len() {
            assert!(
                serial::bundle_from_bytes(&bytes[..cut]).is_none(),
                "{}: truncation at {cut}/{} must be rejected",
                enc.name(),
                bytes.len()
            );
        }
        assert!(serial::bundle_from_bytes(&bytes).is_some());
    }
}

#[test]
fn v2_byte_flips_never_panic_or_build_unsafe_grammars() {
    let csrv = sample(30, 5);
    let order: Vec<u32> = [3u32, 1, 4, 0, 2].to_vec();
    for enc in Encoding::ALL {
        let bm = BlockedMatrix::compress(&csrv, enc, 3);
        let bytes = serial::bundle_to_bytes(bm.blocks(), Some(&order));
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                if let Some((blocks, back_order)) = serial::bundle_from_bytes(&mutated) {
                    if let Some(o) = &back_order {
                        let mut seen = vec![false; o.len()];
                        for &c in o {
                            assert!(!seen[c as usize], "{} byte {i}: order", enc.name());
                            seen[c as usize] = true;
                        }
                    }
                    for b in &blocks {
                        exercise(b);
                    }
                }
            }
        }
    }
}
