//! Deterministic corruption fuzzing of the on-disk containers.
//!
//! The serialisation layer promises that malformed input yields `None`,
//! never a panic and never a structurally unsound grammar that could
//! drive a kernel out of bounds. These tests enforce that promise the
//! brute-force way: for containers of every encoding,
//!
//! * truncate at **every** byte boundary, and
//! * flip bits in **every** byte (three patterns per byte),
//!
//! then demand that loading either fails cleanly or produces a matrix
//! whose kernels can run to completion. Any panic — including a slice
//! index panic from an out-of-bounds grammar — fails the test.

use gcm_core::serial;
use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_encodings::fse::FseSequence;
use gcm_encodings::varint;
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec};

fn sample(rows: usize, cols: usize) -> CsrvMatrix {
    let mut dense = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if (r * 3 + c) % 4 != 0 {
                dense.set(r, c, (((r + 2 * c) % 5) + 1) as f64 * 0.75);
            }
        }
    }
    CsrvMatrix::from_dense(&dense).unwrap()
}

/// Exercises a successfully-loaded matrix: if a mutation slipped past
/// validation, the grammar must still be safe to run.
fn exercise(cm: &CompressedMatrix) {
    let x = vec![1.0; cm.cols()];
    let mut y = vec![0.0; cm.rows()];
    cm.right_multiply(&x, &mut y).unwrap();
    let yv = vec![1.0; cm.rows()];
    let mut xo = vec![0.0; cm.cols()];
    cm.left_multiply(&yv, &mut xo).unwrap();
    let _ = cm.decompress_symbols();
}

#[test]
fn v1_truncation_at_every_boundary_returns_none() {
    let csrv = sample(24, 6);
    for enc in Encoding::ALL {
        let cm = CompressedMatrix::compress(&csrv, enc);
        let bytes = serial::to_bytes(&cm);
        for cut in 0..bytes.len() {
            assert!(
                serial::from_bytes(&bytes[..cut]).is_none(),
                "{}: truncation at {cut}/{} must be rejected",
                enc.name(),
                bytes.len()
            );
        }
        assert!(serial::from_bytes(&bytes).is_some());
    }
}

#[test]
fn v1_byte_flips_never_panic_or_build_unsafe_grammars() {
    let csrv = sample(24, 6);
    for enc in Encoding::ALL {
        let cm = CompressedMatrix::compress(&csrv, enc);
        let bytes = serial::to_bytes(&cm);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                if let Some(back) = serial::from_bytes(&mutated) {
                    // The mutation survived validation (e.g. it only
                    // touched a dictionary value): the matrix must still
                    // be structurally sound end to end.
                    assert_eq!(back.rows(), cm.rows(), "{} byte {i}", enc.name());
                    exercise(&back);
                }
            }
        }
    }
}

/// Serialises a hand-built `re_fse` stream: the exact layout of
/// [`FseSequence::to_bytes`], with every field attacker-chosen.
fn forge_fse(direct_bits: u8, table_log: u8, len: u64, freqs: &[u32], stream: &[u8]) -> Vec<u8> {
    let mut out = vec![direct_bits, table_log];
    varint::write_u64(&mut out, len);
    varint::write_u32(&mut out, freqs.len() as u32);
    for &f in freqs {
        varint::write_u32(&mut out, f);
    }
    varint::write_u64(&mut out, stream.len() as u64);
    out.extend_from_slice(stream);
    out
}

#[test]
fn re_fse_stream_truncation_at_every_boundary_is_rejected_or_safe() {
    let symbols: Vec<u32> = (0..600u32).map(|i| (i * 7) % 40).collect();
    let seq = FseSequence::encode(&symbols);
    let bytes = seq.to_bytes();
    for cut in 0..bytes.len() {
        let mut pos = 0usize;
        if let Some(s) = FseSequence::from_bytes(&bytes[..cut], &mut pos) {
            // A prefix that still parses (e.g. the cut landed exactly
            // after a declared payload) must decode to its claimed
            // length without panicking.
            assert_eq!(s.to_vec().len(), s.len(), "cut {cut}");
        }
    }
    let mut pos = 0usize;
    let back = FseSequence::from_bytes(&bytes, &mut pos).expect("intact stream loads");
    assert_eq!(pos, bytes.len());
    assert_eq!(back.to_vec(), symbols);
}

#[test]
fn forged_re_fse_streams_are_rejected_or_decode_safely() {
    let symbols: Vec<u32> = (0..300u32).map(|i| i % 17).collect();
    let good = FseSequence::encode(&symbols);
    let bytes = good.to_bytes();
    let parse = |data: &[u8]| {
        let mut pos = 0usize;
        FseSequence::from_bytes(data, &mut pos)
    };

    // Out-of-range params bytes must be rejected outright.
    for forged_log in [0u8, 1, 2, 31, 255] {
        let mut m = bytes.clone();
        m[1] = forged_log;
        assert!(
            parse(&m).is_none(),
            "table_log {forged_log} must be rejected"
        );
    }
    for forged_direct in [31u8, 64, 255] {
        let mut m = bytes.clone();
        m[0] = forged_direct;
        assert!(
            parse(&m).is_none(),
            "direct_bits {forged_direct} must be rejected"
        );
    }

    // A frequency table that does not sum to the table size cannot
    // build a decode table.
    assert!(parse(&forge_fse(8, 9, 10, &[1, 2, 3], &[0u8; 16])).is_none());
    // More buckets than the parameters admit.
    let too_many = vec![1u32; 4096];
    assert!(parse(&forge_fse(8, 9, 10, &too_many, &[0u8; 16])).is_none());
    // Declared stream payload larger than the bytes present.
    let mut inflated = vec![8u8, 9];
    varint::write_u64(&mut inflated, 4); // len
    varint::write_u32(&mut inflated, 1); // one bucket…
    varint::write_u32(&mut inflated, 512); // …holding the whole table
    varint::write_u64(&mut inflated, 1 << 40); // stream bytes that are not there
    assert!(parse(&inflated).is_none(), "inflated stream length");

    // A forged symbol count over a structurally valid table must decode
    // to exactly the claimed length — no panic, no over-read — so the
    // grammar validators behind it see the real (bogus) sequence.
    let forged_count = forge_fse(8, 9, 50_000, &[512], &[0u8; 4]);
    if let Some(s) = parse(&forged_count) {
        assert_eq!(s.to_vec().len(), 50_000);
    }
}

#[test]
fn forged_re_fse_serial_containers_never_panic() {
    // Splice forged FSE tails onto a genuine `re_fse` matrix container:
    // the serial layer must reject the forgery or hand back a matrix
    // whose kernels are safe to run.
    let csrv = sample(24, 6);
    let cm = CompressedMatrix::compress(&csrv, Encoding::ReFse);
    let bytes = serial::to_bytes(&cm);
    let gcm_core::encoding::SeqStore::Fse(fse) = cm.seq_store() else {
        panic!("re_fse matrix stores an FSE sequence");
    };
    let tail = fse.to_bytes();
    assert!(bytes.ends_with(&tail), "container ends with the FSE stream");
    let head = &bytes[..bytes.len() - tail.len()];
    let forgeries = [
        forge_fse(8, 9, 0, &[], &[]),               // empty sequence
        forge_fse(8, 9, 24, &[512], &[0u8; 4]),     // all-separator rows
        forge_fse(8, 9, 10_000, &[512], &[0u8; 4]), // inflated symbol count
        forge_fse(0, 9, cm.sequence_len() as u64, &[512], &[0u8; 8]), // zeroed params
    ];
    for (i, tail) in forgeries.iter().enumerate() {
        let mut forged = head.to_vec();
        forged.extend_from_slice(tail);
        if let Some(back) = serial::from_bytes(&forged) {
            exercise(&back);
            let _ = i;
        }
    }
}

#[test]
fn v2_truncation_at_every_boundary_returns_none() {
    let csrv = sample(30, 5);
    let order: Vec<u32> = [3u32, 1, 4, 0, 2].to_vec();
    for enc in Encoding::ALL {
        let bm = BlockedMatrix::compress(&csrv, enc, 3);
        let bytes = serial::bundle_to_bytes(bm.blocks(), Some(&order));
        for cut in 0..bytes.len() {
            assert!(
                serial::bundle_from_bytes(&bytes[..cut]).is_none(),
                "{}: truncation at {cut}/{} must be rejected",
                enc.name(),
                bytes.len()
            );
        }
        assert!(serial::bundle_from_bytes(&bytes).is_some());
    }
}

#[test]
fn v2_byte_flips_never_panic_or_build_unsafe_grammars() {
    let csrv = sample(30, 5);
    let order: Vec<u32> = [3u32, 1, 4, 0, 2].to_vec();
    for enc in Encoding::ALL {
        let bm = BlockedMatrix::compress(&csrv, enc, 3);
        let bytes = serial::bundle_to_bytes(bm.blocks(), Some(&order));
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[i] ^= flip;
                if let Some((blocks, back_order)) = serial::bundle_from_bytes(&mutated) {
                    if let Some(o) = &back_order {
                        let mut seen = vec![false; o.len()];
                        for &c in o {
                            assert!(!seen[c as usize], "{} byte {i}: order", enc.name());
                            seen[c as usize] = true;
                        }
                    }
                    for b in &blocks {
                        exercise(b);
                    }
                }
            }
        }
    }
}
