//! Property-based tests of the `re_fse` tANS codec, mirroring
//! `crates/repair/tests/grammar_props.rs` for the new encoding:
//!
//! * encode → decode is the identity for arbitrary symbol streams
//!   (CSRV-shaped and adversarial large-alphabet ones);
//! * serialisation round-trips byte-exactly and advances the cursor to
//!   exactly the bytes written;
//! * the byte accounting is honest: `compressed_bytes` matches what
//!   `to_bytes` actually emits up to the fixed framing (two parameter
//!   bytes plus the stream-length varint);
//! * the full `re_fse` matrix pipeline (compress → serialise →
//!   deserialise → decompress) reproduces the CSRV symbol stream.

use proptest::prelude::*;

use gcm_core::{serial, CompressedMatrix, Encoding};
use gcm_encodings::fse::FseSequence;
use gcm_matrix::{CsrvMatrix, DenseMatrix};

/// Symbol streams in CSRV shape: terminals `1..alpha` with separator `0`
/// sprinkled in (weight 1 in 4).
fn csrv_like_stream() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        prop_oneof![
            1 => Just(0u32),
            3 => 1u32..14,
        ],
        0..400,
    )
}

/// Adversarial streams: huge sparse alphabet, so most symbols escape the
/// direct buckets into the log-bucketed tail with extra bits.
fn wide_alphabet_stream() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        prop_oneof![
            2 => 0u32..50,
            1 => 1u32 << 10..1u32 << 20,
            1 => 1u32 << 20..u32::MAX,
        ],
        0..200,
    )
}

fn check_roundtrip(symbols: &[u32]) -> Result<(), TestCaseError> {
    let seq = FseSequence::encode(symbols);
    prop_assert_eq!(seq.len(), symbols.len());
    prop_assert_eq!(seq.is_empty(), symbols.is_empty());
    prop_assert_eq!(seq.to_vec(), symbols.to_vec());

    let bytes = seq.to_bytes();
    let mut pos = 0usize;
    let back = FseSequence::from_bytes(&bytes, &mut pos).expect("own bytes parse");
    prop_assert_eq!(pos, bytes.len());
    prop_assert_eq!(back.to_vec(), symbols.to_vec());

    // Byte accounting: `to_bytes` = accounted payload + 2 parameter
    // bytes + the stream-length varint (1..=10 bytes).
    let accounted = seq.compressed_bytes();
    prop_assert!(
        bytes.len() >= accounted + 3,
        "framing below minimum: {} vs {accounted}",
        bytes.len()
    );
    prop_assert!(
        bytes.len() <= accounted + 12,
        "framing exceeded 12 bytes: {} vs {accounted}",
        bytes.len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csrv_shaped_streams_roundtrip(symbols in csrv_like_stream()) {
        check_roundtrip(&symbols)?;
    }

    #[test]
    fn wide_alphabet_streams_roundtrip(symbols in wide_alphabet_stream()) {
        check_roundtrip(&symbols)?;
    }

    /// End to end: an `re_fse` matrix serialises, reloads, and expands
    /// to exactly the grammar symbols the `re_32` reference holds — and
    /// its stored-byte accounting stays within the container's framing.
    #[test]
    fn re_fse_matrices_roundtrip_through_the_container(
        (rows, cols, seed) in (1usize..14, 1usize..8, 0u64..u64::MAX),
    ) {
        let mut dense = DenseMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for r in 0..rows {
            for c in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let bits = (state >> 33) as u32;
                if !bits.is_multiple_of(3) {
                    dense.set(r, c, ((bits >> 2) % 4 + 1) as f64 * 0.5);
                }
            }
        }
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let fse = CompressedMatrix::compress(&csrv, Encoding::ReFse);
        let reference = CompressedMatrix::compress(&csrv, Encoding::Re32);
        prop_assert_eq!(fse.decompress_symbols(), reference.decompress_symbols());

        let bytes = serial::to_bytes(&fse);
        let back = serial::from_bytes(&bytes).expect("own container parses");
        prop_assert_eq!(back.encoding(), Encoding::ReFse);
        prop_assert_eq!(back.decompress_symbols(), fse.decompress_symbols());
        prop_assert!(bytes.len() >= fse.stored_bytes());
        prop_assert!(
            bytes.len() <= fse.stored_bytes() + 96,
            "container framing exceeded 96 bytes ({} vs {})",
            bytes.len(),
            fse.stored_bytes()
        );
    }
}
