//! Property-based differential tests of the single-precision plans.
//!
//! [`KernelPlanF32`] promises results **bit-identical to an `f32`
//! evaluation of the compiled descriptor program in the same order**
//! (`crates/core/src/plan.rs` module docs). These tests hold it to that:
//! an independent oracle rebuilds the descriptor program from the public
//! grammar accessors (`rule_store` / `seq_store` / `values`) and
//! evaluates it in plain safe `f32` Rust, and every plan output must
//! match the oracle **to the bit** — for every encoding, every batch
//! width, both products. A second, loose bound pins the f32 results to
//! the `f64` dense oracle within single-precision slack.

use proptest::prelude::*;

use gcm_core::{CompressedMatrix, Encoding};
use gcm_matrix::{CsrvMatrix, DenseMatrix};

/// The descriptor program exactly as `KernelPlan::compile` builds it,
/// reconstructed from the public grammar accessors: two premultiplied
/// operands per rule, per-row operand lists for `C`.
struct Program {
    cols: usize,
    /// `(m_a, i_a, m_b, i_b)` per rule; indices address `[x | w]`.
    rules: Vec<(f32, usize, f32, usize)>,
    /// Per output row: `(mult, idx)` descriptors in `C` order.
    rows: Vec<Vec<(f32, usize)>>,
}

fn program(cm: &CompressedMatrix) -> Program {
    let cols = cm.cols();
    let first_nt = cm.first_nonterminal();
    let values = cm.values();
    let resolve = |s: u32| -> (f32, usize) {
        if s < first_nt {
            let e = (s - 1) as usize;
            (values[e / cols] as f32, e % cols)
        } else {
            (1.0f32, cols + (s - first_nt) as usize)
        }
    };
    let mut rules = Vec::with_capacity(cm.num_rules());
    cm.rule_store().for_each_rule(|_, a, b| {
        let (ma, ia) = resolve(a);
        let (mb, ib) = resolve(b);
        rules.push((ma, ia, mb, ib));
    });
    let mut rows = Vec::with_capacity(cm.rows());
    let mut cur = Vec::new();
    cm.seq_store().for_each(|s| {
        if s == gcm_matrix::SEPARATOR {
            rows.push(std::mem::take(&mut cur));
        } else {
            cur.push(resolve(s));
        }
    });
    assert_eq!(rows.len(), cm.rows(), "separator count");
    Program { cols, rules, rows }
}

impl Program {
    fn width(&self) -> usize {
        self.cols + self.rules.len()
    }

    /// Forward rule pass in plain `f32`, single lane.
    fn slots(&self, x32: &[f32]) -> Vec<f32> {
        let mut slot = vec![0f32; self.width()];
        slot[..self.cols].copy_from_slice(x32);
        for (r, &(ma, ia, mb, ib)) in self.rules.iter().enumerate() {
            slot[self.cols + r] = ma * slot[ia] + mb * slot[ib];
        }
        slot
    }

    /// `y = M·x` evaluated per lane of the panel (the plan's arithmetic
    /// is lane-independent, so one-lane evaluation is exact for any `k`).
    fn right(&self, k: usize, x_panel: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0f64; self.rows.len() * k];
        for j in 0..k {
            let x32: Vec<f32> = (0..self.cols).map(|c| x_panel[c * k + j] as f32).collect();
            let slot = self.slots(&x32);
            for (r, descs) in self.rows.iter().enumerate() {
                let mut acc = 0f32;
                for &(m, i) in descs {
                    acc += m * slot[i];
                }
                y[r * k + j] = f64::from(acc);
            }
        }
        y
    }

    /// `xᵗ = yᵗ·M`, width 1: mirrors `left_single`'s skip conditions
    /// (zero input rows, untouched-or-zero rule slots).
    fn left1(&self, y: &[f64]) -> Vec<f64> {
        let mut slot = vec![0f32; self.width()];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            let yr = yr as f32;
            for &(m, i) in &self.rows[r] {
                slot[i] += m * yr;
            }
        }
        for r in (0..self.rules.len()).rev() {
            let wk = slot[self.cols + r];
            if wk == 0.0 {
                continue;
            }
            let (ma, ia, mb, ib) = self.rules[r];
            slot[ia] += ma * wk;
            slot[ib] += mb * wk;
        }
        slot[..self.cols].iter().map(|&v| f64::from(v)).collect()
    }

    /// Batched left product: mirrors the plan's flag-row bookkeeping
    /// (a rule propagates iff some forward descriptor touched it).
    fn left_panel(&self, k: usize, y_panel: &[f64]) -> Vec<f64> {
        let n = self.width();
        let mut panel = vec![0f32; n * k];
        let mut flags = vec![false; n];
        for (r, ys) in y_panel.chunks_exact(k).enumerate() {
            for &(m, i) in &self.rows[r] {
                flags[i] = true;
                for j in 0..k {
                    panel[i * k + j] += m * (ys[j] as f32);
                }
            }
        }
        for r in (0..self.rules.len()).rev() {
            if !flags[self.cols + r] {
                continue;
            }
            let (ma, ia, mb, ib) = self.rules[r];
            flags[ia] = true;
            flags[ib] = true;
            for j in 0..k {
                let wv = panel[(self.cols + r) * k + j];
                panel[ia * k + j] += ma * wv;
                panel[ib * k + j] += mb * wv;
            }
        }
        panel[..self.cols * k]
            .iter()
            .map(|&v| f64::from(v))
            .collect()
    }
}

/// Small dense matrices with a dictionary-friendly value set (repeated
/// values are what gives RePair pairs to fold into rules).
fn matrices() -> impl Strategy<Value = DenseMatrix> {
    (1usize..18, 1usize..9, 0u64..u64::MAX).prop_map(|(rows, cols, seed)| {
        let mut m = DenseMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for r in 0..rows {
            for c in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bits = (state >> 33) as u32;
                if !bits.is_multiple_of(3) {
                    m.set(r, c, ((bits >> 2) % 5 + 1) as f64 * 0.75);
                }
            }
        }
        m
    })
}

fn panel(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 35) % 17) as f64 - 8.0) * 0.25
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The f32 plan's right product is bit-identical to the safe-Rust
    /// f32 oracle, for every encoding and batch width.
    #[test]
    fn f32_right_product_is_bit_exact_against_the_oracle(
        dense in matrices(),
        seed in 0u64..u64::MAX,
    ) {
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        for enc in Encoding::ALL {
            let cm = CompressedMatrix::compress(&csrv, enc);
            let p = program(&cm);
            let plan = cm.plan_f32();
            for k in [1usize, 2, 3, 8] {
                let x_panel = panel(cm.cols() * k, seed ^ (k as u64));
                let expect = p.right(k, &x_panel);
                let mut y = vec![0.0; cm.rows() * k];
                let mut buf = vec![0.0; plan.scratch_len(k)];
                plan.right_multiply_panel(k, &x_panel, &mut y, &mut buf).unwrap();
                for (i, (a, b)) in y.iter().zip(&expect).enumerate() {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "{} k={} slot {}: plan {} vs oracle {}",
                        enc.name(), k, i, a, b
                    );
                }
            }
        }
    }

    /// The f32 plan's left product is bit-identical to the oracle.
    #[test]
    fn f32_left_product_is_bit_exact_against_the_oracle(
        dense in matrices(),
        seed in 0u64..u64::MAX,
    ) {
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        for enc in Encoding::ALL {
            let cm = CompressedMatrix::compress(&csrv, enc);
            let p = program(&cm);
            let plan = cm.plan_f32();
            let y1 = panel(cm.rows(), seed);
            let expect1 = p.left1(&y1);
            let mut x1 = vec![0.0; cm.cols()];
            let mut buf = vec![0.0; plan.scratch_len(1)];
            plan.left_multiply(&y1, &mut x1, &mut buf).unwrap();
            for (i, (a, b)) in x1.iter().zip(&expect1).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "{} k=1 slot {}: plan {} vs oracle {}", enc.name(), i, a, b
                );
            }
            for k in [2usize, 5] {
                let y_panel = panel(cm.rows() * k, seed ^ (k as u64) << 8);
                let expect = p.left_panel(k, &y_panel);
                let mut x = vec![0.0; cm.cols() * k];
                let mut buf = vec![0.0; plan.scratch_len(k)];
                plan.left_multiply_panel(k, &y_panel, &mut x, &mut buf).unwrap();
                for (i, (a, b)) in x.iter().zip(&expect).enumerate() {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "{} k={} slot {}: plan {} vs oracle {}",
                        enc.name(), k, i, a, b
                    );
                }
            }
        }
    }

    /// Loose anchor: the f32 results track the f64 dense product within
    /// single-precision slack (the values above keep |y| small, so an
    /// absolute bound suffices).
    #[test]
    fn f32_products_track_the_dense_oracle(
        dense in matrices(),
        seed in 0u64..u64::MAX,
    ) {
        let csrv = CsrvMatrix::from_dense(&dense).unwrap();
        let cm = CompressedMatrix::compress(&csrv, Encoding::ReFse);
        let plan = cm.plan_f32();
        let x = panel(cm.cols(), seed);
        let mut y_ref = vec![0.0; cm.rows()];
        dense.right_multiply(&x, &mut y_ref).unwrap();
        let mut y = vec![0.0; cm.rows()];
        let mut buf = vec![0.0; plan.scratch_len(1)];
        plan.right_multiply(&x, &mut y, &mut buf).unwrap();
        for (a, b) in y.iter().zip(&y_ref) {
            prop_assert!((a - b).abs() < 1e-3, "right {a} vs {b}");
        }
        let yv = panel(cm.rows(), seed ^ 0x5a5a);
        let mut x_ref = vec![0.0; cm.cols()];
        dense.left_multiply(&yv, &mut x_ref).unwrap();
        let mut xo = vec![0.0; cm.cols()];
        plan.left_multiply(&yv, &mut xo, &mut buf).unwrap();
        for (a, b) in xo.iter().zip(&x_ref) {
            prop_assert!((a - b).abs() < 1e-3, "left {a} vs {b}");
        }
    }
}
