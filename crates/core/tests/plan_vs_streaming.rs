//! Differential suite: the compiled-plan kernels must be **bit-exact**
//! against the streaming reference kernels — same products, same
//! floating-point operation order — for every encoding, batch width,
//! and multiplication direction, over randomised shapes and densities.
//!
//! Also pins the two strength-reduction satellites:
//! * [`FastDiv`] against the plain `div`/`mod` over random numerators
//!   and divisors (the streaming kernels' terminal split relies on it);
//! * the plan's workspace contract — after one warmed call, planned
//!   multiplies draw all scratch from the [`Workspace`] without growing
//!   it.

use proptest::prelude::*;

use gcm_core::{CompressedMatrix, Encoding, FastDiv, KernelPlan};
use gcm_matrix::{CsrvMatrix, DenseMatrix, Workspace};

/// Deterministic pseudo-random dense matrix: `density` out of 8 cells
/// filled, values drawn from a small dictionary so RePair finds real
/// repetition (and the value alphabet stays bounded).
fn build_dense(rows: usize, cols: usize, density: u64, seed: u64) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for r in 0..rows {
        for c in 0..cols {
            let v = next();
            if v % 8 < density {
                m.set(r, c, ((v >> 32) % 6 + 1) as f64 * 0.375 - 1.0);
            }
        }
    }
    m
}

/// Input panel with a few exact zeros mixed in (exercising the left
/// kernels' zero-skip paths).
fn input_panel(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E3779B97F4A7C15);
            if v.is_multiple_of(5) {
                0.0
            } else {
                ((v >> 33) % 13) as f64 * 0.25 - 1.5
            }
        })
        .collect()
}

/// Runs every (encoding × width × direction) combination for one matrix
/// and asserts planned == streaming exactly.
fn check_matrix(rows: usize, cols: usize, density: u64, seed: u64) -> Result<(), TestCaseError> {
    let dense = build_dense(rows, cols, density, seed);
    let csrv = CsrvMatrix::from_dense(&dense).expect("bounded value alphabet");
    for enc in Encoding::ALL {
        let cm = CompressedMatrix::compress(&csrv, enc);
        let plan = cm.plan();
        prop_assert_eq!(plan.rows(), rows);
        prop_assert_eq!(plan.cols(), cols);
        let q = cm.num_rules();
        for k in [1usize, 3, 8] {
            let mut buf = vec![0.0; plan.scratch_len(k)];

            // Right: streaming batch kernel vs planned batch kernel.
            let x_panel = input_panel(cols * k, seed ^ k as u64);
            let mut y_stream = vec![0.0; rows * k];
            let mut w_panel = vec![0.0; q * k];
            cm.right_multiply_panel_with(k, &x_panel, &mut y_stream, &mut w_panel)
                .expect("consistent dims");
            let mut y_plan = vec![0.0; rows * k];
            plan.right_multiply_panel(k, &x_panel, &mut y_plan, &mut buf)
                .expect("consistent dims");
            prop_assert!(y_stream == y_plan, "{} right k={k} diverged", enc.name());

            // Left: streaming batch kernel vs planned batch kernel.
            let y_panel = input_panel(rows * k, seed.rotate_left(11) ^ k as u64);
            let mut x_stream = vec![0.0; cols * k];
            let mut w_flags = vec![0.0; q];
            cm.left_multiply_panel_with(k, &y_panel, &mut x_stream, &mut w_panel, &mut w_flags)
                .expect("consistent dims");
            let mut x_plan = vec![0.0; cols * k];
            plan.left_multiply_panel(k, &y_panel, &mut x_plan, &mut buf)
                .expect("consistent dims");
            prop_assert!(x_stream == x_plan, "{} left k={k} diverged", enc.name());

            if k == 1 {
                // The dedicated single-vector streaming kernels are a
                // separate code path from the batch kernels; pin the
                // planned kernels against them too.
                let mut y_single = vec![0.0; rows];
                let mut w = vec![0.0; q];
                cm.right_multiply_with(&x_panel, &mut y_single, &mut w)
                    .expect("consistent dims");
                prop_assert!(y_single == y_plan, "{} right single diverged", enc.name());
                let mut x_single = vec![0.0; cols];
                cm.left_multiply_with(&y_panel, &mut x_single, &mut w)
                    .expect("consistent dims");
                prop_assert!(x_single == x_plan, "{} left single diverged", enc.name());
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes and densities, all encodings, k ∈ {1, 3, 8},
    /// both directions: planned and streaming kernels agree bit-exactly.
    #[test]
    fn planned_equals_streaming(
        rows in 1usize..48,
        cols in 1usize..14,
        density in 0u64..9,
        seed in any::<u64>(),
    ) {
        check_matrix(rows, cols, density, seed)?;
    }

    /// `FastDiv::div_rem` is the plain `div`/`mod` for every numerator
    /// and divisor (the streaming kernels' strength-reduced terminal
    /// split must never drift from `(p / cols, p % cols)`).
    #[test]
    fn fastdiv_matches_plain_div_mod(p in any::<u32>(), d in 1u32..u32::MAX) {
        prop_assert_eq!(FastDiv::new(d).div_rem(p), (p / d, p % d));
    }
}

/// Shapes that historically break CSR-style indexing: empty matrices,
/// single row/column, all-dense, rows compressed to a single symbol.
#[test]
fn planned_equals_streaming_on_edge_shapes() {
    for (rows, cols, density) in [
        (1usize, 1usize, 8u64),
        (1, 13, 8),
        (40, 1, 8),
        (7, 7, 0), // empty: C is all separators
        (6, 5, 8), // fully dense
        (64, 3, 4),
    ] {
        check_matrix(rows, cols, density, 0xDEAD_BEEF).unwrap();
    }
}

/// The plan's workspace contract: after a warmed first call, planned
/// multiplies never grow the workspace — all scratch is drawn from (and
/// returned to) the warmed buffers, for every width up to the prewarmed
/// `k` and both directions.
#[test]
fn plan_buffers_never_grow_a_warmed_workspace() {
    let dense = build_dense(60, 11, 6, 42);
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    for enc in Encoding::ALL {
        let cm = CompressedMatrix::compress(&csrv, enc);
        let plan: KernelPlan = cm.plan();
        let k = 4usize;
        let mut ws = Workspace::new();
        // The serve layer's budget: one buffer of scratch_len(k).
        ws.warm(1, plan.scratch_len(k));
        let before = ws.retained_bytes();
        let x_panel = input_panel(11 * k, 7);
        let y_input = input_panel(60 * k, 9);
        let mut y = vec![0.0; 60 * k];
        let mut x = vec![0.0; 11 * k];
        for width in [1usize, 2, k] {
            for _ in 0..4 {
                let mut buf = ws.take(plan.scratch_len(width));
                plan.right_multiply_panel(
                    width,
                    &x_panel[..11 * width],
                    &mut y[..60 * width],
                    &mut buf,
                )
                .unwrap();
                plan.left_multiply_panel(
                    width,
                    &y_input[..60 * width],
                    &mut x[..11 * width],
                    &mut buf,
                )
                .unwrap();
                ws.put(buf);
            }
        }
        assert_eq!(
            ws.retained_bytes(),
            before,
            "{}: planned scratch outgrew the warmed budget",
            enc.name()
        );
        assert_eq!(ws.retained_buffers(), 1);
    }
}
