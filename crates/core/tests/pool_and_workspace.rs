//! Execution-layer integration tests: the persistent pool really
//! persists (no per-call thread spawn), and a [`Workspace`] can be reused
//! across differently-shaped matrices.

use gcm_core::{BlockedMatrix, CompressedMatrix, Encoding};
use gcm_matrix::{CsrvMatrix, DenseMatrix, MatVec, ParallelCsrv, Workspace};

fn sample(rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if (r * 7 + c * 3) % 5 != 0 {
                m.set(r, c, (((r + c) % 6) + 1) as f64 * 0.25);
            }
        }
    }
    m
}

/// Repeated multiplications through `BlockedMatrix` and `ParallelCsrv`
/// must reuse the pool's workers: after a warm-up call has built the
/// global pool, no further OS thread is ever spawned.
#[test]
fn repeated_multiplications_spawn_no_threads() {
    let dense = sample(120, 9);
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    let bm = BlockedMatrix::compress(&csrv, Encoding::Re32, 4);
    let par = ParallelCsrv::split(&csrv, 4);

    let x = vec![1.0; 9];
    let yv = vec![0.5; 120];
    let mut y = vec![0.0; 120];
    let mut xo = vec![0.0; 9];
    let mut ws = Workspace::new();

    // Warm-up: first parallel call lazily builds the global pool.
    bm.right_multiply_into(&x, &mut y, &mut ws).unwrap();
    let spawned = rayon::threads_ever_spawned();
    assert!(spawned >= 1, "warm-up must have built the pool");

    let b = DenseMatrix::zeros(9, 3);
    let mut out = DenseMatrix::zeros(120, 3);
    for _ in 0..50 {
        bm.right_multiply_into(&x, &mut y, &mut ws).unwrap();
        bm.left_multiply_into(&yv, &mut xo, &mut ws).unwrap();
        bm.right_multiply_matrix_into(&b, &mut out, &mut ws)
            .unwrap();
        par.right_multiply_into(&x, &mut y, &mut ws).unwrap();
        par.left_multiply_into(&yv, &mut xo, &mut ws).unwrap();
    }
    assert_eq!(
        rayon::threads_ever_spawned(),
        spawned,
        "multiplications must reuse the persistent pool, not spawn threads"
    );
}

/// One workspace serves matrices of very different shapes: buffers are
/// resized transparently and results stay exact.
#[test]
fn workspace_reuse_across_shapes_resizes_cleanly() {
    let big_dense = sample(200, 16);
    let small_dense = sample(3, 5);
    let big = CompressedMatrix::compress(
        &CsrvMatrix::from_dense(&big_dense).unwrap(),
        Encoding::ReAns,
    );
    let small = CompressedMatrix::compress(
        &CsrvMatrix::from_dense(&small_dense).unwrap(),
        Encoding::Re32,
    );

    let mut ws = Workspace::new();
    let xb = vec![1.0; 16];
    let xs = vec![1.0; 5];
    let mut yb = vec![0.0; 200];
    let mut ys = vec![0.0; 3];
    let mut yb_ref = vec![0.0; 200];
    let mut ys_ref = vec![0.0; 3];
    big_dense.right_multiply(&xb, &mut yb_ref).unwrap();
    small_dense.right_multiply(&xs, &mut ys_ref).unwrap();

    // Interleave shapes: big → small → big → … through one workspace.
    for _ in 0..4 {
        big.right_multiply_into(&xb, &mut yb, &mut ws).unwrap();
        for (a, b) in yb.iter().zip(&yb_ref) {
            assert!((a - b).abs() < 1e-9);
        }
        small.right_multiply_into(&xs, &mut ys, &mut ws).unwrap();
        for (a, b) in ys.iter().zip(&ys_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    // Mismatched *vector* lengths still error cleanly with a workspace.
    assert!(big.right_multiply_into(&xs, &mut yb, &mut ws).is_err());
    assert!(big.right_multiply_into(&xb, &mut ys, &mut ws).is_err());

    // Explicit scratch of the wrong length errors instead of panicking.
    let mut w_bad = vec![0.0; 1];
    if big.num_rules() != 1 {
        assert!(big.right_multiply_with(&xb, &mut yb, &mut w_bad).is_err());
    }
}

/// Batched products through the blocked backend equal the column-at-a-time
/// reference for every encoding (batching ∘ row-block parallelism).
#[test]
fn blocked_batched_matches_column_loop() {
    let dense = sample(103, 11);
    let csrv = CsrvMatrix::from_dense(&dense).unwrap();
    let k = 7;
    let mut b = DenseMatrix::zeros(11, k);
    for i in 0..11 {
        for j in 0..k {
            b.set(i, j, ((i * k + j) % 9) as f64 * 0.5 - 2.0);
        }
    }
    let mut by = DenseMatrix::zeros(103, k);
    for i in 0..103 {
        for j in 0..k {
            by.set(i, j, ((i + 2 * j) % 7) as f64 - 3.0);
        }
    }
    let want_r = dense.right_multiply_matrix(&b).unwrap();
    let want_l = dense.left_multiply_matrix(&by).unwrap();
    for enc in Encoding::ALL {
        for blocks in [1usize, 3, 8] {
            let bm = BlockedMatrix::compress(&csrv, enc, blocks);
            let got_r = bm.right_multiply_matrix(&b).unwrap();
            let got_l = bm.left_multiply_matrix(&by).unwrap();
            for i in 0..103 {
                for j in 0..k {
                    assert!(
                        (got_r.get(i, j) - want_r.get(i, j)).abs() < 1e-9,
                        "{} blocks={blocks} right ({i},{j})",
                        enc.name()
                    );
                }
            }
            for i in 0..11 {
                for j in 0..k {
                    assert!(
                        (got_l.get(i, j) - want_l.get(i, j)).abs() < 1e-9,
                        "{} blocks={blocks} left ({i},{j})",
                        enc.name()
                    );
                }
            }
        }
    }
}
